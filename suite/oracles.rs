//! Invariant oracles for the correctness harness.
//!
//! An *oracle* owns a small transactional data structure together with
//! the invariant that every correct STM execution must preserve, and
//! exposes a `check`/`assert` entry point that turns any violation into
//! a descriptive `Err`. Harness tests (see `tests/harness_chaos.rs`)
//! hammer the structures from many threads — optionally under the
//! `rubic-stm` chaos hook — and then ask the oracle for a verdict.
//!
//! The four oracles cover the classic STM failure modes:
//!
//! | Oracle | Catches |
//! |---|---|
//! | [`ConservedSumBank`] | non-atomic multi-variable updates |
//! | [`MonotoneCounter`] | lost updates (write skew on one cell) |
//! | [`SnapshotChecker`] | torn read-only snapshots (opacity violations) |
//! | [`LockLeakDetector`] | commit/abort paths that leak a write lock |

use rubic::prelude::*;
use rubic::stm::TxValue;

/// A bank of accounts whose **total balance is conserved** by every
/// transfer. Any observable sum other than the initial one means a
/// transfer's two writes were not atomic.
pub struct ConservedSumBank {
    accounts: Vec<TVar<i64>>,
    expected: i64,
}

impl ConservedSumBank {
    /// `n` accounts, each opened with `initial` units.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, initial: i64) -> Self {
        assert!(n > 0, "a bank needs at least one account");
        ConservedSumBank {
            accounts: (0..n).map(|_| TVar::new(initial)).collect(),
            expected: initial * n as i64,
        }
    }

    /// The account cells (for wiring into other oracles, e.g. the
    /// [`LockLeakDetector`]).
    #[must_use]
    pub fn accounts(&self) -> &[TVar<i64>] {
        &self.accounts
    }

    /// The invariant sum every snapshot must show.
    #[must_use]
    pub fn expected_sum(&self) -> i64 {
        self.expected
    }

    /// Atomically moves `amount` from one account to another
    /// (overdrafts allowed — the invariant is the *sum*, not
    /// non-negativity). Indices wrap, so callers can feed raw RNG draws.
    pub fn transfer(&self, stm: &Stm, from: usize, to: usize, amount: i64) {
        let from = &self.accounts[from % self.accounts.len()];
        let to = &self.accounts[to % self.accounts.len()];
        if from.ptr_eq(to) {
            return;
        }
        stm.atomically(|tx| {
            let a = tx.read(from)?;
            let b = tx.read(to)?;
            tx.write(from, a - amount)?;
            tx.write(to, b + amount)
        });
    }

    /// Reads all accounts in one transaction and checks the sum.
    ///
    /// Safe to call concurrently with transfers: the transactional read
    /// set guarantees a consistent snapshot, so a mid-flight transfer
    /// can never excuse a bad sum.
    ///
    /// # Errors
    /// The observed and expected sums, when they differ.
    pub fn check(&self, stm: &Stm) -> Result<i64, String> {
        let sum = stm.atomically(|tx| {
            let mut sum = 0i64;
            for acct in &self.accounts {
                sum += tx.read(acct)?;
            }
            Ok(sum)
        });
        if sum == self.expected {
            Ok(sum)
        } else {
            Err(format!(
                "conserved-sum violation: read {} across {} accounts, expected {}",
                sum,
                self.accounts.len(),
                self.expected
            ))
        }
    }
}

/// A single counter that must **never lose an update**: after `n`
/// successful [`increment`](MonotoneCounter::increment) calls — from any
/// number of threads — the value must be exactly `n`.
#[derive(Default)]
pub struct MonotoneCounter {
    cell: TVar<u64>,
}

impl MonotoneCounter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying cell (for the [`LockLeakDetector`]).
    #[must_use]
    pub fn cell(&self) -> &TVar<u64> {
        &self.cell
    }

    /// Transactionally increments and returns the post-increment value.
    pub fn increment(&self, stm: &Stm) -> u64 {
        stm.atomically(|tx| {
            let v = tx.read(&self.cell)? + 1;
            tx.write(&self.cell, v)?;
            Ok(v)
        })
    }

    /// Checks the counter against the number of increments performed.
    ///
    /// # Errors
    /// The observed and expected counts, when they differ — i.e. some
    /// read-modify-write raced another and lost.
    pub fn check(&self, expected: u64) -> Result<(), String> {
        let got = self.cell.snapshot();
        if got == expected {
            Ok(())
        } else {
            Err(format!(
                "lost-update violation: counter shows {got} after {expected} increments"
            ))
        }
    }
}

/// An array of cells advanced **in lockstep** by writers; any read-only
/// transaction must observe all cells at the same generation. A mixed
/// observation is a torn snapshot — exactly what opacity forbids.
pub struct SnapshotChecker {
    cells: Vec<TVar<u64>>,
}

impl SnapshotChecker {
    /// `n` cells, all at generation zero.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "the checker needs at least one cell");
        SnapshotChecker {
            cells: (0..n).map(|_| TVar::new(0)).collect(),
        }
    }

    /// The cells (for the [`LockLeakDetector`]).
    #[must_use]
    pub fn cells(&self) -> &[TVar<u64>] {
        &self.cells
    }

    /// Advances every cell to the next generation in one transaction.
    /// Returns the generation just published.
    pub fn bump(&self, stm: &Stm) -> u64 {
        stm.atomically(|tx| {
            let next = tx.read(&self.cells[0])? + 1;
            for cell in &self.cells {
                tx.write(cell, next)?;
            }
            Ok(next)
        })
    }

    /// Reads every cell in one read-only transaction and demands a
    /// single generation.
    ///
    /// # Errors
    /// The full set of observed generations, when more than one appears
    /// in the snapshot.
    pub fn check(&self, stm: &Stm) -> Result<u64, String> {
        let seen = stm.atomically(|tx| {
            let mut seen = Vec::with_capacity(self.cells.len());
            for cell in &self.cells {
                seen.push(tx.read(cell)?);
            }
            Ok(seen)
        });
        if seen.iter().all(|&g| g == seen[0]) {
            Ok(seen[0])
        } else {
            Err(format!("torn snapshot: mixed generations {seen:?}"))
        }
    }
}

/// Watches a set of [`TVar`]s and, once the system is **quiescent**
/// (every worker joined, no transaction in flight), asserts that no
/// variable still holds its write lock. A held lock at quiescence means
/// some commit or abort path forgot to release — a bug that otherwise
/// only shows up later as a mysterious permanent conflict.
#[derive(Default)]
pub struct LockLeakDetector {
    probes: Vec<Probe>,
}

/// One watched variable: its diagnostic name, its probe index (assigned
/// in registration order, so `watch_all` slices report the leaking
/// *element* directly), its lock identity, and the liveness closure.
struct Probe {
    name: String,
    index: usize,
    lock_addr: usize,
    locked: Box<dyn Fn() -> bool + Send + Sync>,
}

/// A still-locked variable found at quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakedLock {
    /// The diagnostic name given at registration.
    pub name: String,
    /// The probe index (registration order) — for `watch_all` this is
    /// the index into the watched slice.
    pub index: usize,
    /// The lock's stable address ([`TVar::lock_addr`]). `LockHold`
    /// trace events carry the same address, so a recorded session can
    /// be filtered down to exactly the transactions that held the
    /// leaking lock.
    pub lock_addr: usize,
}

impl LockLeakDetector {
    /// An empty detector; add variables with
    /// [`watch`](LockLeakDetector::watch).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one variable under a diagnostic name.
    pub fn watch<T: TxValue>(&mut self, name: impl Into<String>, var: &TVar<T>) {
        let lock_addr = var.lock_addr();
        let var = var.clone();
        self.probes.push(Probe {
            name: name.into(),
            index: self.probes.len(),
            lock_addr,
            locked: Box::new(move || var.is_locked()),
        });
    }

    /// Registers a slice of variables as `prefix[0]`, `prefix[1]`, ...
    pub fn watch_all<T: TxValue>(&mut self, prefix: &str, vars: &[TVar<T>]) {
        for (i, var) in vars.iter().enumerate() {
            self.watch(format!("{prefix}[{i}]"), var);
        }
    }

    /// Number of watched variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// True when nothing is watched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// The variables currently holding their write lock. Call only at
    /// quiescence; anything returned has leaked.
    #[must_use]
    pub fn leaked(&self) -> Vec<LeakedLock> {
        self.probes
            .iter()
            .filter(|p| (p.locked)())
            .map(|p| LeakedLock {
                name: p.name.clone(),
                index: p.index,
                lock_addr: p.lock_addr,
            })
            .collect()
    }

    /// Call only at quiescence (after joining every thread that ran
    /// transactions).
    ///
    /// # Errors
    /// One line per still-locked variable: name, probe index, and the
    /// lock address to grep for in a recorded trace's `LockHold` events.
    pub fn check(&self) -> Result<(), String> {
        let leaked = self.leaked();
        if leaked.is_empty() {
            Ok(())
        } else {
            let detail: Vec<String> = leaked
                .iter()
                .map(|l| format!("{} (index {}, lock {:#x})", l.name, l.index, l.lock_addr))
                .collect();
            Err(format!(
                "lock leak: {} variable(s) still locked at quiescence: {}",
                leaked.len(),
                detail.join(", ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_conserves_under_serial_transfers() {
        let stm = Stm::default();
        let bank = ConservedSumBank::new(8, 100);
        for i in 0..200usize {
            bank.transfer(&stm, i, i * 7 + 3, (i % 13) as i64);
        }
        assert_eq!(bank.check(&stm).unwrap(), 800);
    }

    #[test]
    fn counter_counts_serially() {
        let stm = Stm::default();
        let c = MonotoneCounter::new();
        for _ in 0..50 {
            c.increment(&stm);
        }
        c.check(50).unwrap();
    }

    #[test]
    fn snapshot_checker_sees_whole_generations() {
        let stm = Stm::default();
        let s = SnapshotChecker::new(4);
        assert_eq!(s.check(&stm).unwrap(), 0);
        assert_eq!(s.bump(&stm), 1);
        assert_eq!(s.bump(&stm), 2);
        assert_eq!(s.check(&stm).unwrap(), 2);
    }

    #[test]
    fn lock_leak_detector_reports_by_name() {
        let a = TVar::new(1);
        let b = TVar::new(2);
        let mut det = LockLeakDetector::new();
        det.watch("a", &a);
        det.watch("b", &b);
        det.check().unwrap();

        // Leak a lock on purpose: an unmanaged transaction writes (and
        // so locks) `b`, then stalls without committing or aborting.
        let mut tx = rubic_stm::Transaction::begin_unmanaged();
        tx.write(&b, 9).unwrap();
        let err = det.check().unwrap_err();
        assert!(err.contains('b') && !err.contains("a,"), "{err}");
        let leaked = det.leaked();
        assert_eq!(leaked.len(), 1);
        assert_eq!(leaked[0].index, 1, "b was registered second");
        assert_eq!(leaked[0].lock_addr, b.lock_addr());
        assert!(err.contains("index 1"), "{err}");
        tx.abort_unmanaged();
        det.check().unwrap();
    }

    #[test]
    fn lock_leak_detector_indexes_slices() {
        let vars: Vec<TVar<u64>> = (0..4).map(TVar::new).collect();
        let mut det = LockLeakDetector::new();
        det.watch_all("cell", &vars);
        assert_eq!(det.len(), 4);

        let mut tx = rubic_stm::Transaction::begin_unmanaged();
        tx.write(&vars[2], 99).unwrap();
        let leaked = det.leaked();
        assert_eq!(leaked.len(), 1);
        assert_eq!(leaked[0].index, 2);
        assert_eq!(leaked[0].name, "cell[2]");
        assert_eq!(leaked[0].lock_addr, vars[2].lock_addr());
        tx.abort_unmanaged();
        assert!(det.leaked().is_empty());
    }
}
