//! `rubic-suite` hosts the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`). The library re-exports the `rubic`
//! facade so examples and tests share one import path, and adds the
//! [`oracles`] module — reusable STM invariant checkers for the
//! correctness/fault-injection harness.
pub use rubic::*;

pub mod oracles;
