//! `rubic-suite` hosts the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`). The library itself only re-exports the
//! `rubic` facade so examples and tests share one import path.
pub use rubic::*;
