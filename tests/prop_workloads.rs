//! Property-based tests over the workload substrates: the Vacation
//! manager's ledger algebra and the Intruder reassembly pipeline, under
//! arbitrary operation sequences.

use proptest::prelude::*;
use rubic::prelude::*;
use rubic::workloads::intruder::{detect, FlowBuffer, Packet, SIGNATURES};
use rubic::workloads::vacation::ResourceKind;

fn any_kind() -> impl Strategy<Value = ResourceKind> {
    prop_oneof![
        Just(ResourceKind::Car),
        Just(ResourceKind::Flight),
        Just(ResourceKind::Room),
    ]
}

#[derive(Debug, Clone)]
enum MgrOp {
    Add(ResourceKind, u64, u32, u64),
    Retire(ResourceKind, u64, u32),
    Reserve(ResourceKind, u64, u64),
    DeleteCustomer(u64),
}

fn mgr_op() -> impl Strategy<Value = MgrOp> {
    prop_oneof![
        (any_kind(), 0u64..8, 1u32..50, 1u64..100)
            .prop_map(|(k, id, units, price)| MgrOp::Add(k, id, units, price)),
        (any_kind(), 0u64..8, 1u32..50).prop_map(|(k, id, units)| MgrOp::Retire(k, id, units)),
        (any_kind(), 0u64..4, 0u64..8).prop_map(|(k, cust, id)| MgrOp::Reserve(k, cust, id)),
        (0u64..4).prop_map(MgrOp::DeleteCustomer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ledger invariant: after ANY sequence of manager operations, the
    /// units marked used across the tables equal the bookings held by
    /// customers — and every op maintains free() >= 0.
    #[test]
    fn vacation_ledger_always_balances(ops in proptest::collection::vec(mgr_op(), 1..120)) {
        let stm = Stm::default();
        let m = Manager::new();
        for op in ops {
            match op {
                MgrOp::Add(k, id, units, price) => {
                    stm.atomically(|tx| m.add_resource(tx, k, id, units, price));
                }
                MgrOp::Retire(k, id, units) => {
                    let _ = stm.atomically(|tx| m.retire_resource(tx, k, id, units));
                }
                MgrOp::Reserve(k, cust, id) => {
                    let _ = stm.atomically(|tx| m.reserve(tx, k, cust, id));
                }
                MgrOp::DeleteCustomer(cust) => {
                    let _ = stm.atomically(|tx| m.delete_customer(tx, cust));
                }
            }
            let used = m.total_reserved_units(&stm);
            let held = m.total_customer_bookings();
            prop_assert_eq!(used, held, "ledger out of balance mid-sequence");
        }
    }

    /// Deleting a customer is always billed exactly the sum of the
    /// prices at reservation time.
    #[test]
    fn vacation_bill_equals_reservation_prices(
        prices in proptest::collection::vec(1u64..500, 1..10),
    ) {
        let stm = Stm::default();
        let m = Manager::new();
        let mut expected = 0u64;
        for (i, &price) in prices.iter().enumerate() {
            let id = i as u64;
            stm.atomically(|tx| m.add_resource(tx, ResourceKind::Car, id, 5, price));
            let ok = stm.atomically(|tx| m.reserve(tx, ResourceKind::Car, 42, id));
            prop_assert!(ok);
            expected += price;
        }
        let bill = stm.atomically(|tx| m.delete_customer(tx, 42));
        prop_assert_eq!(bill, Some(expected));
    }

    /// Reassembling a flow from any fragmentation and arrival order
    /// recovers the original payload exactly; detection matches whether
    /// a signature was embedded.
    #[test]
    fn intruder_reassembly_order_independent(
        payload in proptest::collection::vec(b'a'..=b'z', 8..120),
        cuts in proptest::collection::btree_set(1usize..119, 0..6),
        order_seed in any::<u64>(),
        embed in proptest::option::of(0usize..SIGNATURES.len()),
    ) {
        // Build the payload, optionally embedding a signature.
        let mut payload = payload;
        if let Some(sig_idx) = embed {
            let sig = SIGNATURES[sig_idx].as_bytes();
            if payload.len() >= sig.len() {
                let at = payload.len() / 2 - sig.len() / 2;
                payload[at..at + sig.len()].copy_from_slice(sig);
            }
        }
        // Fragment at the cut points.
        let mut bounds: Vec<usize> = cuts.into_iter().filter(|&c| c < payload.len()).collect();
        bounds.insert(0, 0);
        bounds.push(payload.len());
        bounds.dedup();
        let n = bounds.len() - 1;
        let mut packets: Vec<Packet> = (0..n)
            .map(|i| Packet {
                flow_id: 7,
                fragment_id: i as u32,
                num_fragments: n as u32,
                data: payload[bounds[i]..bounds[i + 1]].to_vec(),
            })
            .collect();
        // Deterministic shuffle.
        let mut x = order_seed | 1;
        for i in (1..packets.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            packets.swap(i, (x as usize) % (i + 1));
        }
        // Feed into a FlowBuffer in the shuffled order.
        let mut buf = FlowBuffer::default();
        for p in &packets {
            buf.num_fragments = p.num_fragments;
            if !buf.received.iter().any(|(id, _)| *id == p.fragment_id) {
                buf.received.push((p.fragment_id, p.data.clone()));
            }
        }
        prop_assert!(buf.complete());
        let assembled = buf.assemble();
        prop_assert_eq!(&assembled, &payload);
        let expect_hit = embed.is_some()
            && payload.len() >= SIGNATURES.iter().map(|s| s.len()).min().unwrap();
        if expect_hit {
            // The signature survives fragmentation + reassembly.
            prop_assert!(detect(&assembled) || !detect(&payload));
        }
        prop_assert_eq!(detect(&assembled), detect(&payload));
    }

    /// PMap entries from a TMap snapshot always equal the sorted insert
    /// history (workloads build on this constantly).
    #[test]
    fn tmap_snapshot_is_sorted_history(keys in proptest::collection::btree_set(0u32..500, 0..80)) {
        let stm = Stm::default();
        let m: TMap<u32, u32> = TMap::new();
        for &k in &keys {
            stm.atomically(|tx| m.insert(tx, k, k * 2));
        }
        let snap = m.snapshot();
        snap.check_invariants().expect("rb invariants");
        let entries = snap.entries();
        let expected: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k * 2)).collect();
        prop_assert_eq!(entries, expected);
    }
}
