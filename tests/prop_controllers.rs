//! Property-based tests for the controllers: safety invariants that
//! must hold for *any* throughput feedback sequence, plus cubic-growth
//! function laws.

use proptest::prelude::*;
use rubic::prelude::*;
use rubic_controllers::cubic_level;

fn any_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Rubic),
        Just(Policy::Ebs),
        Just(Policy::F2c2),
        Just(Policy::Aimd),
        Just(Policy::Cimd),
        Just(Policy::Greedy),
        Just(Policy::EqualShare),
        (1u32..256).prop_map(Policy::Fixed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every policy keeps the level in `[1, pool_size]` for arbitrary
    /// (even adversarial) throughput sequences.
    #[test]
    fn levels_always_in_bounds(
        policy in any_policy(),
        pool in 1u32..256,
        throughputs in proptest::collection::vec(0.0f64..1e9, 1..300),
    ) {
        let cfg = PolicyConfig {
            pool_size: pool,
            hw_contexts: 64,
            ..PolicyConfig::paper(2)
        };
        let mut ctl = policy.build(&cfg);
        let mut level = 1u32;
        for (round, &thr) in throughputs.iter().enumerate() {
            level = ctl.decide(Sample { throughput: thr, level, round: round as u64 });
            prop_assert!(level >= 1, "{}: level 0", ctl.name());
            prop_assert!(level <= pool, "{}: level {} > pool {}", ctl.name(), level, pool);
        }
    }

    /// `reset()` makes a controller behave exactly like a fresh one.
    #[test]
    fn reset_equals_fresh(
        policy in any_policy(),
        warmup in proptest::collection::vec(0.0f64..1e6, 1..100),
        probe in proptest::collection::vec(0.0f64..1e6, 1..50),
    ) {
        let cfg = PolicyConfig::paper(2);
        let mut used = policy.build(&cfg);
        let mut level = 1u32;
        for (round, &thr) in warmup.iter().enumerate() {
            level = used.decide(Sample { throughput: thr, level, round: round as u64 });
        }
        used.reset();

        let mut fresh = policy.build(&cfg);
        let mut l_used = 1u32;
        let mut l_fresh = 1u32;
        for (round, &thr) in probe.iter().enumerate() {
            l_used = used.decide(Sample { throughput: thr, level: l_used, round: round as u64 });
            l_fresh = fresh.decide(Sample { throughput: thr, level: l_fresh, round: round as u64 });
            prop_assert_eq!(l_used, l_fresh, "{} diverged after reset", used.name());
        }
    }

    /// Monotonically improving throughput never makes any adaptive
    /// policy decrease its level.
    #[test]
    fn improving_feedback_never_decreases(
        policy in prop_oneof![
            Just(Policy::Rubic), Just(Policy::Ebs),
            Just(Policy::F2c2), Just(Policy::Aimd), Just(Policy::Cimd),
        ],
        steps in 2u64..100,
    ) {
        let cfg = PolicyConfig::paper(1);
        let mut ctl = policy.build(&cfg);
        let mut level = 1u32;
        let mut prev_level = 1u32;
        for round in 0..steps {
            // Strictly improving throughput.
            let thr = 1000.0 + round as f64;
            level = ctl.decide(Sample { throughput: thr, level, round });
            prop_assert!(
                level >= prev_level,
                "{} decreased {} -> {} on improving feedback",
                ctl.name(), prev_level, level
            );
            prev_level = level;
        }
    }

    /// Cubic function laws: monotone in Δt, plateau exactly at L_max
    /// when Δt = K (TCP convention), and scale-covariant in L_max.
    #[test]
    fn cubic_function_laws(
        l_max in 2.0f64..512.0,
        alpha in 0.05f64..0.95,
        beta in 0.01f64..2.0,
        dt in 0.0f64..64.0,
    ) {
        let f = |t: f64| cubic_level(l_max, t, alpha, beta, CubicKConvention::TcpCubic);
        // Monotone non-decreasing.
        prop_assert!(f(dt + 0.5) >= f(dt) - 1e-9);
        // Starts at alpha * L_max.
        prop_assert!((f(0.0) - alpha * l_max).abs() < 1e-6 * l_max.max(1.0));
        // Plateau: at dt = K the value equals L_max.
        let k = (l_max * (1.0 - alpha) / beta).cbrt();
        prop_assert!((f(k) - l_max).abs() < 1e-6 * l_max);
    }

    /// Policy parse/label round-trips for all evaluated policies.
    #[test]
    fn policy_parse_roundtrip(policy in any_policy()) {
        if let Policy::Fixed(n) = policy {
            prop_assert_eq!(Policy::parse(&format!("fixed:{n}")), Some(policy));
        } else {
            prop_assert_eq!(Policy::parse(policy.label()), Some(policy));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// RUBIC settles near the knee of any well-formed unimodal curve:
    /// generic convergence, not just the 64-thread special case.
    #[test]
    fn rubic_settles_near_any_knee(peak in 6u32..100) {
        let mut ctl = Rubic::new(RubicConfig::default(), 256);
        let peak_f = f64::from(peak);
        let mut level = 1u32;
        let mut trace = Vec::new();
        for round in 0..800u64 {
            let l = f64::from(level);
            let thr = if l <= peak_f { l } else { peak_f - 0.5 * (l - peak_f) };
            level = ctl.decide(Sample { throughput: thr, level, round });
            trace.push(level);
        }
        let tail = &trace[600..];
        let mean: f64 = tail.iter().map(|&l| f64::from(l)).sum::<f64>() / tail.len() as f64;
        prop_assert!(
            (peak_f * 0.7..=peak_f * 1.45).contains(&mean),
            "knee {}: settled at {:.1}",
            peak, mean
        );
    }
}
