//! End-to-end malleable-pool tests: controller + pool + workload,
//! including co-location with staggered arrivals (real threads).

use std::sync::Arc;
use std::time::Duration;

use rubic::prelude::*;

#[derive(Clone)]
struct Spin;
impl Workload for Spin {
    type WorkerState = ();
    fn init_worker(&self, _tid: usize) {}
    fn run_task(&self, (): &mut ()) {
        std::hint::black_box((0..150u64).fold(0u64, |a, b| a.wrapping_add(b * b)));
    }
}

#[test]
fn rubic_tunes_rbtree_end_to_end() {
    let stm = Stm::default();
    let workload = RbTreeWorkload::new(RbTreeConfig::small(), stm.clone());
    let spec = TenantSpec::new("rbt", 4, Policy::Rubic).monitor_period(Duration::from_millis(4));
    let report = run_tenant(Tenant::new(spec, workload), Duration::from_millis(250));
    assert!(report.report.total_tasks > 0);
    assert!(!report.report.trace.is_empty());
    // The pool's task count matches the STM's committed transactions up
    // to the fill transactions and in-flight slack.
    assert!(stm.stats().commits() >= report.report.total_tasks);
    for p in report.report.trace.points() {
        assert!((1..=4).contains(&p.level));
    }
}

#[test]
fn every_policy_drives_the_pool() {
    for policy in [
        Policy::Rubic,
        Policy::Ebs,
        Policy::F2c2,
        Policy::Aimd,
        Policy::Greedy,
        Policy::EqualShare,
        Policy::Fixed(2),
    ] {
        let spec = TenantSpec::new("p", 3, policy).monitor_period(Duration::from_millis(3));
        let report = run_tenant(Tenant::new(spec, Spin), Duration::from_millis(60));
        assert!(
            report.report.total_tasks > 0,
            "{} did no work",
            policy.label()
        );
    }
}

#[test]
fn task_budget_exact_under_adaptive_controller() {
    let pool = MalleablePool::start(
        PoolConfig::new(3)
            .task_budget(5_000)
            .monitor_period(Duration::from_millis(2)),
        Spin,
        Box::new(Rubic::new(RubicConfig::default(), 3)),
    );
    pool.wait_budget_exhausted();
    let report = pool.stop();
    assert_eq!(report.total_tasks, 5_000);
}

#[test]
fn colocation_three_tenants_with_arrivals() {
    let mk = |name: &str, arrival_ms: u64| {
        Tenant::new(
            TenantSpec::new(name, 2, Policy::Rubic)
                .monitor_period(Duration::from_millis(3))
                .arrives_after(Duration::from_millis(arrival_ms)),
            Spin,
        )
    };
    let report = Colocation::new(Duration::from_millis(200))
        .tenant(mk("t0", 0))
        .tenant(mk("t1", 60))
        .tenant(mk("t2", 120))
        .run();
    assert_eq!(report.tenants.len(), 3);
    let lens: Vec<usize> = report
        .tenants
        .iter()
        .map(|t| t.report.trace.len())
        .collect();
    // Later arrivals record strictly fewer monitoring rounds.
    assert!(lens[0] > lens[1] && lens[1] > lens[2], "{lens:?}");
    for t in &report.tenants {
        assert!(t.report.total_tasks > 0, "{} starved", t.name);
    }
}

#[test]
fn sequential_baseline_lower_than_tuned_speedup_bound() {
    // On any machine, speed-up of a 1-thread fixed run vs its own
    // baseline is ~1; sanity for the measurement plumbing.
    let seq = measure_sequential(Spin, Duration::from_millis(80));
    assert!(seq > 0.0);
    let spec = TenantSpec::new("one", 1, Policy::Fixed(1));
    let rep = run_tenant(Tenant::new(spec, Spin), Duration::from_millis(80));
    let s = rep.speedup(seq);
    assert!(
        (0.3..=3.0).contains(&s),
        "1-thread speedup should be near 1, got {s}"
    );
}

#[test]
fn counter_workload_totals_match_pool_tasks() {
    let stm = Stm::default();
    let counter = Arc::new(ConflictCounter::new(stm));
    let pool = MalleablePool::start(
        PoolConfig::new(2)
            .task_budget(2_000)
            .monitor_period(Duration::from_millis(2)),
        Arc::clone(&counter),
        Box::new(Fixed::new(2, 2)),
    );
    pool.wait_budget_exhausted();
    let report = pool.stop();
    assert_eq!(report.total_tasks, 2_000);
    assert_eq!(counter.value(), 2_000, "every task is exactly one commit");
}

#[test]
fn monitor_trace_has_contiguous_rounds() {
    let spec = TenantSpec::new("trace", 2, Policy::Ebs).monitor_period(Duration::from_millis(2));
    let report = run_tenant(Tenant::new(spec, Spin), Duration::from_millis(100));
    let rounds: Vec<u64> = report
        .report
        .trace
        .points()
        .iter()
        .map(|p| p.round)
        .collect();
    for (i, &r) in rounds.iter().enumerate() {
        assert_eq!(r, i as u64, "monitor skipped a round");
    }
}
