//! End-to-end tests of the diagnosis layer: anomaly-triggered
//! post-mortem bundles, culprit attribution against the always-on STM
//! stats, the runtime's level-oscillation watchdog, and attribution
//! determinism under seeded chaos.
//!
//! Compiled only with `--features trace`. Trace sessions are
//! process-global, so every test serialises on one mutex (same
//! discipline as `trace_harness.rs`).
#![cfg(feature = "trace")]

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use rubic::prelude::*;
use rubic::trace::{codes, TraceConfig, TraceSession};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A fresh empty scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rubic-pm-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `postmortem-*` bundle directories inside `dir`, sorted by name.
fn bundles_in(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("postmortem-"))
        })
        .collect();
    out.sort();
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Induced abort storm on a labelled TVar: when the storm anomaly is
/// raised (the same request the runtime's stall watchdog issues), the
/// collector must auto-dump exactly one bundle whose contention table
/// names the deliberately contended variable as top culprit, with
/// per-reason counts consistent with the always-on STM stats.
#[test]
fn abort_storm_auto_dumps_bundle_naming_the_culprit() {
    let _serial = serial();
    let dir = scratch_dir("storm");
    let stm = Stm::default();
    let hot = TVar::labelled(0u64, "storm-target");
    let decoy = TVar::new(0u64);

    let before = stm.stats().snapshot();
    let session = TraceSession::start(TraceConfig {
        postmortem_dir: Some(dir.clone()),
        drain_period: Duration::from_millis(2),
        manifest: vec![("test".into(), "abort-storm-e2e".into())],
        ..TraceConfig::default()
    });

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for i in 0..400u64 {
                    stm.atomically(|tx| tx.modify(&hot, |x| x + 1));
                    if i % 16 == 0 {
                        // Uncontended traffic: must never outrank `hot`.
                        stm.atomically(|tx| {
                            let _ = tx.read(&decoy)?;
                            Ok(())
                        });
                    }
                }
            });
        }
    });

    // Stand in for the stall watchdog with the identical request it
    // issues through `trc::anomaly` after its eprintln diagnostic.
    rubic::trace::request_postmortem(codes::ANOMALY_ABORT_STORM);
    // Duplicate requests of the same kind must coalesce into one dump.
    rubic::trace::request_postmortem(codes::ANOMALY_ABORT_STORM);
    std::thread::sleep(Duration::from_millis(50));
    let report = session.finish();
    let delta = stm.stats().snapshot().delta_since(&before);

    let bundles = bundles_in(&dir);
    assert_eq!(
        bundles.len(),
        1,
        "exactly one auto-dumped bundle: {bundles:?}"
    );
    let bundle = &bundles[0];
    assert!(
        bundle
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("abort-storm"),
        "trigger name in dir: {}",
        bundle.display()
    );

    let manifest = read(&bundle.join("manifest.json"));
    assert!(manifest.contains(rubic::trace::BUNDLE_SCHEMA));
    assert!(manifest.contains("abort-storm"));
    assert!(
        manifest.contains("abort-storm-e2e"),
        "config manifest extras"
    );
    for file in [
        "events.jsonl",
        "decisions.jsonl",
        "histograms.json",
        "contention.json",
        "snapshot.json",
    ] {
        assert!(bundle.join(file).is_file(), "missing {file}");
    }

    if delta.aborts == 0 {
        // Serialised scheduler, no conflicts: attribution is vacuous.
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }

    // The contention table (report and bundle agree — same merged
    // sketch) must rank the storm target first.
    let top = report
        .contention
        .first()
        .expect("aborts happened, so the table cannot be empty");
    assert_eq!(top.addr, hot.lock_addr() as u64, "top culprit identity");
    assert_eq!(top.label.as_deref(), Some("storm-target"));
    let contention_json = read(&bundle.join("contention.json"));
    assert!(contention_json.contains("storm-target"));

    // Per-reason consistency with the always-on STM stats: what the
    // sketch attributes to the culprit can never exceed what the STM
    // counted for the whole run, reason by reason.
    for (code, &attributed) in top.by_reason.iter().enumerate() {
        assert!(
            attributed <= delta.abort_reasons[code],
            "{}: attributed {attributed} > stm {}",
            codes::abort_name(code as u8),
            delta.abort_reasons[code],
        );
    }
    // And the trace's own abort breakdown reconciles exactly when no
    // events were dropped.
    if report.dropped == 0 {
        assert_eq!(report.total_aborts(), delta.aborts);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

mod oscillation {
    use super::*;
    use rubic_controllers::{Controller, Sample};
    use rubic_runtime::{MalleablePool, PoolConfig, Workload};

    /// Alternates between levels 1 and 2 every round — sustained
    /// direction reversal, exactly what the oscillation watchdog flags.
    struct Thrash {
        max: u32,
    }

    impl Controller for Thrash {
        fn decide(&mut self, sample: Sample) -> u32 {
            if sample.level == 1 {
                2
            } else {
                1
            }
        }

        fn reset(&mut self) {}

        fn max_level(&self) -> u32 {
            self.max
        }

        fn name(&self) -> &'static str {
            "Thrash"
        }
    }

    struct Spin;

    impl Workload for Spin {
        type WorkerState = ();

        fn init_worker(&self, _tid: usize) {}

        fn run_task(&self, (): &mut ()) {
            std::hint::black_box((0..64u64).fold(0u64, |a, b| a ^ (b << 1)));
        }
    }

    /// A thrashing controller must trip the level-oscillation watchdog,
    /// which auto-dumps a bundle through the same anomaly path the
    /// abort-storm watchdog uses.
    #[test]
    fn oscillating_controller_trips_watchdog_and_dumps() {
        let _serial = serial();
        let dir = scratch_dir("osc");
        let session = TraceSession::start(TraceConfig {
            postmortem_dir: Some(dir.clone()),
            drain_period: Duration::from_millis(2),
            ..TraceConfig::default()
        });

        let pool = MalleablePool::start(
            PoolConfig::new(2).monitor_period(Duration::from_millis(2)),
            Spin,
            Box::new(Thrash { max: 2 }),
        );
        // Enough rounds for >= 4 consecutive reversals plus collector
        // housekeeping slack.
        std::thread::sleep(Duration::from_millis(120));
        let _run = pool.stop();
        std::thread::sleep(Duration::from_millis(30));
        let report = session.finish();

        let osc = codes::ANOMALY_LEVEL_OSCILLATION as usize;
        assert!(
            report.anomalies[osc] >= 1,
            "oscillation anomaly not recorded: {:?}",
            report.anomalies
        );
        let bundles = bundles_in(&dir);
        assert_eq!(
            bundles.len(),
            1,
            "one auto-dump per trigger kind: {bundles:?}"
        );
        assert!(bundles[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("level-oscillation"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(feature = "chaos")]
mod determinism {
    use super::*;
    use rubic::stm::chaos::{install, SeededChaos};
    use std::sync::Arc;

    /// Strips the volatile fields — addresses (allocation-dependent)
    /// and lock-hold quantiles (wall-clock-dependent) — from a
    /// contention.json so two runs of the same seeded schedule can be
    /// compared literally.
    fn normalise(json: &str) -> String {
        let mut out = json.to_string();
        for key in ["\"addr\":", "\"hold_p50_ns\":", "\"hold_p99_ns\":"] {
            let mut next = String::with_capacity(out.len());
            let mut rest = out.as_str();
            while let Some(pos) = rest.find(key) {
                let (head, tail) = rest.split_at(pos + key.len());
                next.push_str(head);
                next.push('0');
                rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
            }
            next.push_str(rest);
            out = next;
        }
        out
    }

    /// One contention-table row: (label, count, err, by_reason).
    type AttributionRow = (Option<String>, u64, u64, [u64; 6]);

    /// One seeded single-threaded storm; returns the attribution table
    /// rows plus the address-normalised bundle contention.json.
    fn seeded_run(dir: &Path) -> (Vec<AttributionRow>, String) {
        let stm = Stm::default();
        let hot = TVar::labelled(0u64, "det-cell");
        let hook = Arc::new(SeededChaos::with_abort_one_in(0xD15EA5E, 3));
        let session = TraceSession::start(TraceConfig {
            drain_period: Duration::from_millis(2),
            ..TraceConfig::default()
        });
        {
            let _chaos = install(hook);
            for _ in 0..200 {
                stm.atomically(|tx| tx.modify(&hot, |x| x + 1));
            }
        }
        let bundle = session.dump_postmortem(dir, "determinism").unwrap();
        let contention = normalise(&read(&bundle.join("contention.json")));
        let report = session.finish();
        assert_eq!(hot.snapshot(), 200);
        let table = report
            .contention
            .iter()
            .map(|e| (e.label.clone(), e.count, e.err, e.by_reason))
            .collect();
        (table, contention)
    }

    /// The same seeded chaos schedule must attribute identically across
    /// runs: same labels, counts, error bounds, per-reason breakdowns,
    /// and (addresses aside) byte-identical bundle contention tables.
    #[test]
    fn seeded_chaos_attribution_is_deterministic() {
        let _serial = serial();
        let dir_a = scratch_dir("det-a");
        let dir_b = scratch_dir("det-b");
        let (table_a, json_a) = seeded_run(&dir_a);
        let (table_b, json_b) = seeded_run(&dir_b);
        assert!(
            !table_a.is_empty(),
            "one-in-3 kills over 200 txns must abort"
        );
        assert_eq!(table_a, table_b);
        assert_eq!(json_a, json_b);
        assert_eq!(
            table_a[0].0.as_deref(),
            Some("det-cell"),
            "chaos kills at access sites are attributed to the accessed TVar"
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
