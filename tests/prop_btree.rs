//! Property-based and concurrency tests for the per-node transactional
//! B-tree (`rubic::workloads::TBTreeMap`): sequential equivalence
//! against `std::collections::BTreeMap`, agreement with the
//! snapshot-cell backend on identical op streams, linearizability of
//! concurrent histories, and structural invariants (occupancy, key
//! ordering, uniform leaf depth) surviving chaos-injected aborts.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rubic::stm::Stm;
use rubic::workloads::{TBTreeMap, TMap, TOrdMap};

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    UpdateOr(u64, u64),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k % 300, v)),
        any::<u64>().prop_map(|k| MapOp::Remove(k % 300)),
        any::<u64>().prop_map(|k| MapOp::Get(k % 300)),
        (any::<u64>(), any::<u64>()).prop_map(|(k, v)| MapOp::UpdateOr(k % 300, v % 1000)),
    ]
}

/// Applies one op to a `TOrdMap` backend, returning what the op
/// observed (for oracle comparison).
fn apply<M: TOrdMap<u64, u64>>(stm: &Stm, map: &M, op: &MapOp) -> Option<u64> {
    match *op {
        MapOp::Insert(k, v) => stm.atomically(|tx| map.insert(tx, k, v)),
        MapOp::Remove(k) => stm.atomically(|tx| map.remove(tx, &k)),
        MapOp::Get(k) => stm.atomically(|tx| map.get(tx, &k)),
        MapOp::UpdateOr(k, v) => Some(stm.atomically(|tx| map.update_or(tx, k, v, |cur| cur + v))),
    }
}

/// Applies one op to the `BTreeMap` oracle with the same semantics.
fn apply_oracle(model: &mut BTreeMap<u64, u64>, op: &MapOp) -> Option<u64> {
    match *op {
        MapOp::Insert(k, v) => model.insert(k, v),
        MapOp::Remove(k) => model.remove(&k),
        MapOp::Get(k) => model.get(&k).copied(),
        MapOp::UpdateOr(k, v) => {
            let new = model.get(&k).map_or(v, |cur| cur + v);
            model.insert(k, new);
            Some(new)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequentially, the B-tree is observationally a
    /// `std::collections::BTreeMap`, and its structural invariants
    /// (node occupancy, strict key ordering, uniform leaf depth) hold
    /// after every operation — including through the splits and merges
    /// a 300-key churn forces at fanout 16.
    #[test]
    fn tbtree_matches_btreemap(ops in proptest::collection::vec(map_op(), 1..400)) {
        let stm = Stm::default();
        let map: TBTreeMap<u64, u64> = TBTreeMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            let got = apply(&stm, &map, op);
            let expected = apply_oracle(&mut model, op);
            prop_assert_eq!(got, expected);
            match map.check_invariants() {
                Ok(len) => prop_assert_eq!(len, model.len()),
                Err(e) => prop_assert!(false, "invariant violated: {}", e),
            }
        }
        let entries = map.snapshot_entries();
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(entries, expected);
    }

    /// The snapshot-cell map and the per-node B-tree agree op-for-op on
    /// identical streams: same return values, same final contents. This
    /// is the drop-in-backend contract the stmbench `structure` axis
    /// relies on.
    #[test]
    fn backends_agree_on_identical_streams(ops in proptest::collection::vec(map_op(), 1..250)) {
        let stm = Stm::default();
        let snap: TMap<u64, u64> = TOrdMap::empty();
        let btree: TBTreeMap<u64, u64> = TBTreeMap::new();
        for op in &ops {
            let a = apply(&stm, &snap, op);
            let b = apply(&stm, &btree, op);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(snap.snapshot_entries(), btree.snapshot_entries());
    }
}

/// Linearizability of concurrent histories, counter-style: every
/// committed `update_or` increment must be reflected exactly once in
/// the final state, regardless of interleaving, splits, or aborted
/// attempts. Four threads hammer overlapping key ranges; per-key sums
/// must equal the per-key totals each thread committed.
#[test]
fn concurrent_increments_linearize() {
    const THREADS: u64 = 4;
    const OPS: u64 = 300;
    const KEYS: u64 = 64;
    let stm = Stm::default();
    let map: Arc<TBTreeMap<u64, u64>> = Arc::new(TBTreeMap::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let stm = stm.clone();
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                // xorshift stream, distinct per thread.
                let mut x = 0x9E37_79B9u64 ^ (t + 1);
                let mut local = vec![0u64; KEYS as usize];
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEYS;
                    let inc = (x >> 32) % 5 + 1;
                    // `atomically` retries to commit, so each call
                    // lands exactly once.
                    stm.atomically(|tx| map.update_or(tx, key, inc, |cur| cur + inc));
                    local[key as usize] += inc;
                }
                local
            })
        })
        .collect();
    let mut expected = vec![0u64; KEYS as usize];
    for h in handles {
        for (k, sum) in h.join().expect("worker").into_iter().enumerate() {
            expected[k] += sum;
        }
    }
    let entries = map.snapshot_entries();
    map.check_invariants().expect("btree invariants");
    for (k, &sum) in expected.iter().enumerate() {
        let got = entries
            .iter()
            .find(|(key, _)| *key == k as u64)
            .map_or(0, |(_, v)| *v);
        assert_eq!(got, sum, "key {k}: committed increments lost or duplicated");
    }
}

/// Concurrent inserts over disjoint ranges all land and the structure
/// stays a valid B-tree — the per-node footprint must not lose sibling
/// subtrees to racing splits.
#[test]
fn concurrent_disjoint_inserts_all_land() {
    let stm = Stm::default();
    let map: Arc<TBTreeMap<u64, u64>> = Arc::new(TBTreeMap::new());
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let stm = stm.clone();
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                for i in 0..250 {
                    let key = t * 1000 + i;
                    stm.atomically(|tx| map.insert(tx, key, key));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    assert_eq!(map.check_invariants(), Ok(1000));
}

/// Chaos-injected aborts (the STM's deterministic fault hook) must
/// never leave a half-applied split or merge visible: after a
/// multi-threaded churn under injected aborts and commit-point kills,
/// the tree still satisfies every structural invariant and contains
/// exactly the keys whose transactions committed.
///
/// Serialised via a local mutex: the chaos hook is process-global.
#[test]
fn invariants_survive_chaos_aborts() {
    use rubic_stm::chaos::{install, SeededChaos};
    static SERIAL: Mutex<()> = Mutex::new(());
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);

    let stm = Stm::default();
    let map: Arc<TBTreeMap<u64, u64>> = Arc::new(TBTreeMap::new());
    {
        let _chaos = install(Arc::new(SeededChaos::new(0x0B7E_E5EED)));
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                let stm = stm.clone();
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let mut x = 0xDEAD_BEEFu64 ^ (t << 17 | 1);
                    for _ in 0..400 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let key = x % 200;
                        if x & 0b100 == 0 {
                            stm.atomically(|tx| map.insert(tx, key, x));
                        } else {
                            stm.atomically(|tx| map.remove(tx, &key));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
    }
    // Hook dropped: verify structure with clean reads.
    let len = map.check_invariants().expect("invariants under chaos");
    assert_eq!(len, map.snapshot_entries().len());
    let entries = map.snapshot_entries();
    assert!(
        entries.windows(2).all(|w| w[0].0 < w[1].0),
        "entries must be strictly sorted"
    );
}

/// Declared read-only lookups on the B-tree commit abort-free under
/// mvcc snapshot mode even while writers force splits and merges: the
/// snapshot pins every node version on the descent path.
#[cfg(feature = "mvcc")]
#[test]
fn mvcc_read_only_descents_are_abort_free() {
    let stm = Stm::builder().mvcc(true).build();
    let map: Arc<TBTreeMap<u64, u64>> = Arc::new(TBTreeMap::new());
    for k in 0..128 {
        stm.atomically(|tx| map.insert(tx, k, k));
    }
    let before = stm.stats().snapshot();
    let writer = {
        let stm = stm.clone();
        let map = Arc::clone(&map);
        std::thread::spawn(move || {
            for k in 128..600 {
                stm.atomically(|tx| map.insert(tx, k, k));
                stm.atomically(|tx| map.remove(tx, &(k - 100)));
            }
        })
    };
    for round in 0..600u64 {
        let key = round % 128;
        // Keys 0..28 are never removed (writer deletes 28..500).
        let got = stm.read_only(|tx| map.get(tx, &(key % 28)));
        assert_eq!(got, Some(key % 28));
    }
    writer.join().expect("writer");
    let delta = stm.stats().snapshot().delta_since(&before);
    assert!(delta.ro_commits >= 600, "read-only lookups should commit");
    assert_eq!(delta.ro_aborts, 0, "mvcc descents must be abort-free");
}
