//! Property-based tests for the MVCC snapshot mode (`--features mvcc`),
//! mirroring `prop_stm.rs` for the multi-version protocol:
//!
//! * **Mode equivalence** — the same transaction sequence produces the
//!   same states and the same read-only results in single-version and
//!   mvcc mode.
//! * **Serial-prefix snapshots** — a snapshot read observes exactly the
//!   state after some prefix of the committed writes, and successive
//!   snapshots never move backwards.
//! * **Abort-freedom under chaos** — single-location read-only
//!   transactions (the mode's headline contract) never abort even with
//!   the fault-injection hook perturbing and killing writer attempts.
#![cfg(feature = "mvcc")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rubic::prelude::*;
use rubic_stm::chaos::{install, SeededChaos};

#[derive(Debug, Clone)]
enum TxOp {
    Read(usize),
    Write(usize, i64),
    Add(usize, i64),
}

fn tx_op(n_vars: usize) -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (0..n_vars).prop_map(TxOp::Read),
        (0..n_vars, -100i64..100).prop_map(|(i, v)| TxOp::Write(i, v)),
        (0..n_vars, -100i64..100).prop_map(|(i, v)| TxOp::Add(i, v)),
    ]
}

/// Applies one transaction's op list through `stm` against `vars`.
fn run_tx(stm: &Stm, vars: &[TVar<i64>], ops: &[TxOp]) {
    stm.atomically(|tx| {
        for op in ops {
            match *op {
                TxOp::Read(i) => {
                    let _ = tx.read(&vars[i])?;
                }
                TxOp::Write(i, v) => tx.write(&vars[i], v)?,
                TxOp::Add(i, v) => tx.modify(&vars[i], |x| x + v)?,
            }
        }
        Ok(())
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Commit equivalence across modes: the same single-threaded
    /// transaction sequence drives a single-version `Stm` and an mvcc
    /// `Stm` (over separate but identically initialised variables) to
    /// identical states, and the read-only entry point returns the same
    /// answers through both protocols. The mvcc run must be abort-free.
    #[test]
    fn sv_and_mvcc_sequential_equivalence(
        txs in proptest::collection::vec(
            proptest::collection::vec(tx_op(8), 1..12),
            1..30,
        ),
    ) {
        let sv = Stm::default();
        let mv = Stm::builder().mvcc(true).build();
        prop_assert!(!sv.is_mvcc());
        prop_assert!(mv.is_mvcc());
        let sv_vars: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(0)).collect();
        let mv_vars: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(0)).collect();
        let mut model = [0i64; 8];
        for ops in txs {
            run_tx(&sv, &sv_vars, &ops);
            run_tx(&mv, &mv_vars, &ops);
            for op in &ops {
                match *op {
                    TxOp::Read(_) => {}
                    TxOp::Write(i, v) => model[i] = v,
                    TxOp::Add(i, v) => model[i] += v,
                }
            }
            // Same answer through the validated and the snapshot
            // read-only protocols, matching the model.
            let sv_sum = sv.read_only(|tx| {
                let mut s = 0;
                for v in &sv_vars {
                    s += tx.read(v)?;
                }
                Ok(s)
            });
            let mv_sum = mv.read_only(|tx| {
                let mut s = 0;
                for v in &mv_vars {
                    s += tx.read(v)?;
                }
                Ok(s)
            });
            prop_assert_eq!(sv_sum, mv_sum);
            prop_assert_eq!(mv_sum, model.iter().sum::<i64>());
            for (i, (svv, mvv)) in sv_vars.iter().zip(&mv_vars).enumerate() {
                prop_assert_eq!(svv.snapshot(), model[i]);
                prop_assert_eq!(mvv.snapshot(), model[i]);
            }
        }
        prop_assert_eq!(mv.stats().aborts(), 0, "single thread must never abort");
        prop_assert_eq!(mv.stats().ro_aborts(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot reads observe a serial prefix: a writer stamps every
    /// cell with the same generation per transaction, so any mixture of
    /// generations inside one snapshot would expose a non-serial state.
    /// Successive snapshots on one reader must also never move
    /// backwards (later pins read at later timestamps).
    #[test]
    fn mvcc_snapshots_observe_a_serial_prefix(
        generations in 8u64..96,
        reads_per_reader in 16usize..128,
    ) {
        let stm = Stm::builder().mvcc(true).build();
        let vars: Arc<Vec<TVar<u64>>> = Arc::new((0..6).map(|_| TVar::new(0)).collect());
        let done = Arc::new(AtomicBool::new(false));

        let writer = {
            let stm = stm.clone();
            let vars = Arc::clone(&vars);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for g in 1..=generations {
                    stm.atomically(|tx| {
                        for v in vars.iter() {
                            tx.write(v, g)?;
                        }
                        Ok(())
                    });
                }
                done.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let stm = stm.clone();
                let vars = Arc::clone(&vars);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut n = 0usize;
                    while n < reads_per_reader || !done.load(Ordering::Acquire) {
                        let gens = stm.read_only(|tx| {
                            let mut out = [0u64; 6];
                            for (slot, v) in out.iter_mut().zip(vars.iter()) {
                                *slot = tx.read(v)?;
                            }
                            Ok(out)
                        });
                        assert!(
                            gens.iter().all(|&g| g == gens[0]),
                            "snapshot mixed generations: {gens:?}"
                        );
                        assert!(
                            gens[0] >= last,
                            "snapshot went backwards: {} < {last}",
                            gens[0]
                        );
                        last = gens[0];
                        n += 1;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        prop_assert_eq!(vars[0].snapshot(), generations);
    }

    /// The headline contract under fault injection: single-location
    /// read-only transactions never abort in mvcc mode, even while the
    /// chaos hook perturbs every protocol point and kills one in four
    /// writer attempts. (Multi-location snapshots may transiently fall
    /// behind a bounded chain; single reads always extend instead.)
    #[test]
    fn mvcc_read_only_is_abort_free_under_chaos(
        seed in any::<u64>(),
        writes in 32u64..256,
        reads in 64usize..512,
    ) {
        let stm = Stm::builder().mvcc(true).build();
        let hot = Arc::new(TVar::new(0u64));
        let _chaos = install(Arc::new(SeededChaos::with_abort_one_in(seed, 4)));

        let writer = {
            let stm = stm.clone();
            let hot = Arc::clone(&hot);
            std::thread::spawn(move || {
                for _ in 0..writes {
                    stm.atomically(|tx| tx.modify(&hot, |x| x + 1));
                }
            })
        };
        let mut last = 0u64;
        for _ in 0..reads {
            let seen = stm.read_only(|tx| tx.read(&hot));
            assert!(seen >= last, "snapshot went backwards");
            last = seen;
        }
        writer.join().unwrap();

        prop_assert_eq!(stm.read_only(|tx| tx.read(&hot)), writes);
        prop_assert_eq!(stm.stats().ro_aborts(), 0, "read-only must be abort-free");
        prop_assert_eq!(stm.stats().ro_commits() as usize, reads + 1);
        // The chaos kills landed somewhere: writer attempts died and
        // retried, which is exactly what snapshots must be immune to.
        prop_assert!(stm.stats().aborts() > 0 || writes == 0);
    }
}
