//! Property-based tests for the STM: sequential equivalence against a
//! plain model, atomicity of arbitrary multi-variable updates, and
//! snapshot-consistency invariants.

use std::sync::Arc;

use proptest::prelude::*;
use rubic::prelude::*;

#[derive(Debug, Clone)]
enum TxOp {
    Read(usize),
    Write(usize, i64),
    Add(usize, i64),
}

fn tx_op(n_vars: usize) -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (0..n_vars).prop_map(TxOp::Read),
        (0..n_vars, -100i64..100).prop_map(|(i, v)| TxOp::Write(i, v)),
        (0..n_vars, -100i64..100).prop_map(|(i, v)| TxOp::Add(i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single-threaded sequence of transactions over TVars behaves
    /// exactly like the same operations on a plain array.
    #[test]
    fn sequential_equivalence(
        txs in proptest::collection::vec(
            proptest::collection::vec(tx_op(8), 1..12),
            1..40,
        ),
    ) {
        let stm = Stm::default();
        let vars: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(0)).collect();
        let mut model = [0i64; 8];
        for ops in txs {
            // Run the whole op list as ONE transaction against the STM
            // and as direct updates against the model.
            stm.atomically(|tx| {
                for op in &ops {
                    match *op {
                        TxOp::Read(i) => {
                            let _ = tx.read(&vars[i])?;
                        }
                        TxOp::Write(i, v) => tx.write(&vars[i], v)?,
                        TxOp::Add(i, v) => tx.modify(&vars[i], |x| x + v)?,
                    }
                }
                Ok(())
            });
            for op in &ops {
                match *op {
                    TxOp::Read(_) => {}
                    TxOp::Write(i, v) => model[i] = v,
                    TxOp::Add(i, v) => model[i] += v,
                }
            }
            for (var, expected) in vars.iter().zip(&model) {
                prop_assert_eq!(var.snapshot(), *expected);
            }
        }
        prop_assert_eq!(stm.stats().aborts(), 0, "single thread must never abort");
    }

    /// Atomicity under concurrency: every transaction applies a
    /// zero-sum delta vector, so the total is invariant no matter how
    /// the schedules interleave.
    #[test]
    fn zero_sum_updates_preserve_total(
        deltas in proptest::collection::vec((-50i64..50, 0usize..6, 0usize..6), 10..60),
    ) {
        let stm = Stm::default();
        let vars: Arc<Vec<TVar<i64>>> = Arc::new((0..6).map(|_| TVar::new(1000)).collect());
        let chunks: Vec<Vec<(i64, usize, usize)>> =
            deltas.chunks(10).map(<[(i64, usize, usize)]>::to_vec).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let stm = stm.clone();
                let vars = Arc::clone(&vars);
                std::thread::spawn(move || {
                    for (amount, from, to) in chunk {
                        stm.atomically(|tx| {
                            tx.modify(&vars[from], |x| x - amount)?;
                            tx.modify(&vars[to], |x| x + amount)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = vars.iter().map(TVar::snapshot).sum();
        prop_assert_eq!(total, 6000);
    }

    /// Write-then-read inside one transaction always observes the
    /// pending value, for arbitrary interleavings of ops.
    #[test]
    fn read_your_writes_always(ops in proptest::collection::vec((0usize..4, any::<i64>()), 1..30)) {
        let stm = Stm::default();
        let vars: Vec<TVar<i64>> = (0..4).map(|_| TVar::new(-1)).collect();
        stm.atomically(|tx| {
            let mut pending: [Option<i64>; 4] = [None; 4];
            for &(i, v) in &ops {
                tx.write(&vars[i], v)?;
                pending[i] = Some(v);
                for (j, p) in pending.iter().enumerate() {
                    let seen = tx.read(&vars[j])?;
                    let expected = p.unwrap_or(-1);
                    if seen != expected {
                        return Err(StmError::Conflict); // fail loudly via assert below
                    }
                }
            }
            Ok(())
        });
        // Reaching here means the closure committed on its first try
        // (no other threads), so all read-your-writes checks passed.
        prop_assert_eq!(stm.stats().commits(), 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TMap transactions compose with raw TVar operations atomically:
    /// an index cell always matches the map's size.
    #[test]
    fn tmap_and_tvar_compose(keys in proptest::collection::vec(0u64..64, 1..60)) {
        let stm = Stm::default();
        let map: Arc<TMap<u64, u64>> = Arc::new(TMap::new());
        let size_cell = Arc::new(TVar::new(0usize));
        let handles: Vec<_> = keys
            .chunks(15)
            .map(|chunk| {
                let stm = stm.clone();
                let map = Arc::clone(&map);
                let size_cell = Arc::clone(&size_cell);
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for k in chunk {
                        stm.atomically(|tx| {
                            let fresh = map.insert(tx, k, k)?.is_none();
                            if fresh {
                                tx.modify(&size_cell, |s| s + 1)?;
                            }
                            Ok(())
                        });
                        // Invariant visible to concurrent readers.
                        let (len, cell) = stm.atomically(|tx| {
                            Ok((map.len(tx)?, tx.read(&size_cell)?))
                        });
                        assert_eq!(len, cell, "size cell diverged from map");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(map.snapshot().len(), size_cell.snapshot());
    }
}
