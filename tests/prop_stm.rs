//! Property-based tests for the STM: sequential equivalence against a
//! plain model, atomicity of arbitrary multi-variable updates, and
//! snapshot-consistency invariants.

use std::sync::Arc;

use proptest::prelude::*;
use rubic::prelude::*;

#[derive(Debug, Clone)]
enum TxOp {
    Read(usize),
    Write(usize, i64),
    Add(usize, i64),
}

fn tx_op(n_vars: usize) -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (0..n_vars).prop_map(TxOp::Read),
        (0..n_vars, -100i64..100).prop_map(|(i, v)| TxOp::Write(i, v)),
        (0..n_vars, -100i64..100).prop_map(|(i, v)| TxOp::Add(i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single-threaded sequence of transactions over TVars behaves
    /// exactly like the same operations on a plain array.
    #[test]
    fn sequential_equivalence(
        txs in proptest::collection::vec(
            proptest::collection::vec(tx_op(8), 1..12),
            1..40,
        ),
    ) {
        let stm = Stm::default();
        let vars: Vec<TVar<i64>> = (0..8).map(|_| TVar::new(0)).collect();
        let mut model = [0i64; 8];
        for ops in txs {
            // Run the whole op list as ONE transaction against the STM
            // and as direct updates against the model.
            stm.atomically(|tx| {
                for op in &ops {
                    match *op {
                        TxOp::Read(i) => {
                            let _ = tx.read(&vars[i])?;
                        }
                        TxOp::Write(i, v) => tx.write(&vars[i], v)?,
                        TxOp::Add(i, v) => tx.modify(&vars[i], |x| x + v)?,
                    }
                }
                Ok(())
            });
            for op in &ops {
                match *op {
                    TxOp::Read(_) => {}
                    TxOp::Write(i, v) => model[i] = v,
                    TxOp::Add(i, v) => model[i] += v,
                }
            }
            for (var, expected) in vars.iter().zip(&model) {
                prop_assert_eq!(var.snapshot(), *expected);
            }
        }
        prop_assert_eq!(stm.stats().aborts(), 0, "single thread must never abort");
    }

    /// Atomicity under concurrency: every transaction applies a
    /// zero-sum delta vector, so the total is invariant no matter how
    /// the schedules interleave.
    #[test]
    fn zero_sum_updates_preserve_total(
        deltas in proptest::collection::vec((-50i64..50, 0usize..6, 0usize..6), 10..60),
    ) {
        let stm = Stm::default();
        let vars: Arc<Vec<TVar<i64>>> = Arc::new((0..6).map(|_| TVar::new(1000)).collect());
        let chunks: Vec<Vec<(i64, usize, usize)>> =
            deltas.chunks(10).map(<[(i64, usize, usize)]>::to_vec).collect();
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let stm = stm.clone();
                let vars = Arc::clone(&vars);
                std::thread::spawn(move || {
                    for (amount, from, to) in chunk {
                        stm.atomically(|tx| {
                            tx.modify(&vars[from], |x| x - amount)?;
                            tx.modify(&vars[to], |x| x + amount)?;
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = vars.iter().map(TVar::snapshot).sum();
        prop_assert_eq!(total, 6000);
    }

    /// Write-then-read inside one transaction always observes the
    /// pending value, for arbitrary interleavings of ops.
    #[test]
    fn read_your_writes_always(ops in proptest::collection::vec((0usize..4, any::<i64>()), 1..30)) {
        let stm = Stm::default();
        let vars: Vec<TVar<i64>> = (0..4).map(|_| TVar::new(-1)).collect();
        stm.atomically(|tx| {
            let mut pending: [Option<i64>; 4] = [None; 4];
            for &(i, v) in &ops {
                tx.write(&vars[i], v)?;
                pending[i] = Some(v);
                for (j, p) in pending.iter().enumerate() {
                    let seen = tx.read(&vars[j])?;
                    let expected = p.unwrap_or(-1);
                    if seen != expected {
                        return Err(StmError::Conflict); // fail loudly via assert below
                    }
                }
            }
            Ok(())
        });
        // Reaching here means the closure committed on its first try
        // (no other threads), so all read-your-writes checks passed.
        prop_assert_eq!(stm.stats().commits(), 1);
    }
}

// ---------------------------------------------------------------------
// Hot-path fast-path properties: the access-set index switches from a
// linear-scanned small set to a hashed (spilled) representation past 16
// distinct locations, and aborted attempts recycle their allocations.
// These properties pin the engine's observable behaviour across both
// representations and across retries. The transactions are driven by
// hand (`begin_unmanaged`, test-only `chaos` feature) so a single case
// can commit one footprint and abort another deterministically.
// ---------------------------------------------------------------------

use rubic_stm::Transaction;

/// Applies `ops` to a fresh transaction over `vars`, checking
/// read-your-writes and duplicate-read agreement at every step, and
/// returns the model state the commit should publish.
fn apply_ops(
    tx: &mut Transaction,
    vars: &[TVar<i64>],
    ops: &[(usize, Option<i64>)],
) -> Vec<Option<i64>> {
    let mut pending: Vec<Option<i64>> = vec![None; vars.len()];
    for &(i, write) in ops {
        let i = i % vars.len();
        match write {
            Some(v) => {
                tx.write(&vars[i], v).unwrap();
                pending[i] = Some(v);
            }
            None => {
                let seen = tx.read(&vars[i]).unwrap();
                let expected = pending[i].unwrap_or(i as i64);
                assert_eq!(seen, expected, "read-your-writes / stable read violated");
                // Duplicate read must agree with the first one.
                assert_eq!(tx.read(&vars[i]).unwrap(), expected);
            }
        }
    }
    pending
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Commit and abort behave identically whether the access-set index
    /// is in its small-set (linear scan) or spilled (hashed)
    /// representation: commit publishes exactly the model state, abort
    /// publishes nothing and leaks no lock.
    #[test]
    fn commit_abort_equivalence_across_index_representations(
        n_vars in 2usize..48,
        ops in proptest::collection::vec(
            (0usize..48, proptest::option::of(-1000i64..1000)),
            1..96,
        ),
        commit in any::<bool>(),
    ) {
        let vars: Vec<TVar<i64>> = (0..n_vars).map(|i| TVar::new(i as i64)).collect();
        let mut tx = Transaction::begin_unmanaged();
        let pending = apply_ops(&mut tx, &vars, &ops);
        if commit {
            tx.commit_unmanaged().unwrap();
            for (i, var) in vars.iter().enumerate() {
                prop_assert_eq!(var.snapshot(), pending[i].unwrap_or(i as i64));
            }
        } else {
            tx.abort_unmanaged();
            for (i, var) in vars.iter().enumerate() {
                prop_assert_eq!(var.snapshot(), i as i64, "abort must not publish");
            }
        }
        // Either way every lock must be free again: a fresh writer can
        // take any variable without conflict.
        let mut probe = Transaction::begin_unmanaged();
        for var in &vars {
            probe.write(var, -7).unwrap();
        }
        probe.abort_unmanaged();
    }

    /// A retry that replays the same footprint allocates nothing: the
    /// abort parks every slot and handle on the spare lists, and the
    /// replay drains them back without growing any capacity.
    #[test]
    fn retry_replay_allocates_nothing(
        n_vars in 1usize..40,
        ops in proptest::collection::vec(
            (0usize..40, proptest::option::of(-1000i64..1000)),
            1..80,
        ),
    ) {
        let vars: Vec<TVar<i64>> = (0..n_vars).map(|i| TVar::new(i as i64)).collect();
        let mut tx = Transaction::begin_unmanaged();
        apply_ops(&mut tx, &vars, &ops);
        let live_reads = tx.read_set_len();
        let live_writes = tx.write_set_len();
        tx.abort_unmanaged();
        let parked = tx.footprint();
        prop_assert_eq!(parked.spare_read_handles, live_reads);
        prop_assert_eq!(parked.spare_write_slots, live_writes);

        tx.restart_unmanaged();
        apply_ops(&mut tx, &vars, &ops);
        let replayed = tx.footprint();
        prop_assert_eq!(replayed.spare_read_handles, 0, "handles must be reused");
        prop_assert_eq!(replayed.spare_write_slots, 0, "slots must be reused");
        prop_assert_eq!(replayed.reads_capacity, parked.reads_capacity);
        prop_assert_eq!(replayed.writes_capacity, parked.writes_capacity);
        prop_assert_eq!(replayed.read_index_capacity, parked.read_index_capacity);
        prop_assert_eq!(replayed.write_index_capacity, parked.write_index_capacity);
        tx.commit_unmanaged().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TMap transactions compose with raw TVar operations atomically:
    /// an index cell always matches the map's size.
    #[test]
    fn tmap_and_tvar_compose(keys in proptest::collection::vec(0u64..64, 1..60)) {
        let stm = Stm::default();
        let map: Arc<TMap<u64, u64>> = Arc::new(TMap::new());
        let size_cell = Arc::new(TVar::new(0usize));
        let handles: Vec<_> = keys
            .chunks(15)
            .map(|chunk| {
                let stm = stm.clone();
                let map = Arc::clone(&map);
                let size_cell = Arc::clone(&size_cell);
                let chunk = chunk.to_vec();
                std::thread::spawn(move || {
                    for k in chunk {
                        stm.atomically(|tx| {
                            let fresh = map.insert(tx, k, k)?.is_none();
                            if fresh {
                                tx.modify(&size_cell, |s| s + 1)?;
                            }
                            Ok(())
                        });
                        // Invariant visible to concurrent readers.
                        let (len, cell) = stm.atomically(|tx| {
                            Ok((map.len(tx)?, tx.read(&size_cell)?))
                        });
                        assert_eq!(len, cell, "size cell diverged from map");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(map.snapshot().len(), size_cell.snapshot());
    }
}
