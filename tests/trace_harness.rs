//! End-to-end tests of the `trace` feature: a real tenant run recorded
//! by a [`TraceSession`], the abort-attribution cross-check against STM
//! stats, the exporters' structural validity, and a chaos-interleaving
//! smoke test that drives fault injection and tracing together.
//!
//! Compiled only with `--features trace` (CI runs `--features trace`
//! and `--features trace,chaos` jobs). Trace sessions are
//! process-global, so every test here serialises on one mutex — events
//! emitted by a concurrently running test would otherwise land in
//! whichever session happens to be active.
#![cfg(feature = "trace")]

use std::sync::Mutex;
use std::time::Duration;

use rubic::prelude::*;
use rubic::stm::AbortReason;
use rubic::trace::{codes, EventKind, TraceConfig, TraceReport, TraceSession};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Records a short RUBIC-tuned red-black-tree run and returns the
/// report plus the STM stats delta over exactly the session window.
fn traced_rbt_run() -> (TraceReport, rubic::stm::StatsSnapshot) {
    let stm = Stm::default();
    let workload = RbTreeWorkload::new(RbTreeConfig::small(), stm.clone());
    let before = stm.stats().snapshot();
    let session = TraceSession::start(TraceConfig::default());
    let spec = TenantSpec::new("rbt", 4, Policy::Rubic).monitor_period(Duration::from_millis(5));
    let tenant_report = run_tenant(Tenant::new(spec, workload), Duration::from_millis(120));
    let report = session.finish();
    assert!(tenant_report.throughput() > 0.0);
    (report, stm.stats().snapshot().delta_since(&before))
}

#[test]
fn session_over_pool_records_the_whole_stack() {
    let _serial = serial();
    let (report, delta) = traced_rbt_run();

    // Transactions committed, so the commit-latency histogram is
    // populated and every commit produced one event.
    assert!(
        report.commit_latency.count() > 0,
        "no commit latency recorded"
    );
    assert!(report.commit_latency.p50() > 0);
    // The monitor ran (period 5ms over 120ms) and emitted rounds.
    assert!(
        report
            .events
            .iter()
            .any(|e| e.kind == EventKind::MonitorRound),
        "no monitor rounds in the event log"
    );
    // The controller decided every round.
    assert!(
        report.events.iter().any(|e| e.kind == EventKind::Decision),
        "no controller decisions in the event log"
    );

    // Abort attribution must reconcile with the STM's own counters,
    // reason by reason, unless the ring dropped events.
    if report.dropped == 0 {
        assert_eq!(report.total_aborts(), delta.aborts);
        for reason in AbortReason::ALL {
            assert_eq!(
                report.abort_breakdown[reason.code() as usize],
                delta.abort_reasons[reason.code() as usize],
                "mismatch for {}",
                reason.name()
            );
        }
    }
}

#[test]
fn exporters_are_structurally_valid_on_real_data() {
    let _serial = serial();
    let (report, _) = traced_rbt_run();

    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), report.events.len());
    for line in jsonl.lines().take(200) {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    let chrome = report.to_chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with('}'));
    assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());
    assert!(chrome.contains("\"ph\":\"X\""), "no transaction spans");
    assert!(chrome.contains("\"ph\":\"C\""), "no pool counter track");
}

#[test]
fn abort_reason_codes_match_the_trace_tables() {
    // The trace crate cannot depend on the STM, so the two enums are
    // kept in sync by convention; this is the cross-crate assertion.
    assert_eq!(
        AbortReason::ReadValidation.code(),
        codes::ABORT_READ_VALIDATION
    );
    assert_eq!(AbortReason::LockBusy.code(), codes::ABORT_LOCK_BUSY);
    assert_eq!(AbortReason::CmKill.code(), codes::ABORT_CM_KILL);
    assert_eq!(AbortReason::Chaos.code(), codes::ABORT_CHAOS);
    assert_eq!(AbortReason::Explicit.code(), codes::ABORT_EXPLICIT);
    for reason in AbortReason::ALL {
        assert_eq!(reason.name(), codes::abort_name(reason.code()));
    }
}

/// The `LockLeakDetector` oracle and the contention table must agree on
/// TVar identity: the oracle's probe address, `TVar::lock_addr`, and
/// the top-K table's `addr` are all the same word, so a leak found at
/// quiescence can be joined against the conflict attribution of the
/// same session.
#[test]
fn lock_leak_and_contention_table_share_tvar_identity() {
    let _serial = serial();
    let stm = Stm::default();
    let hot = TVar::labelled(0u64, "hot-cell");
    let mut det = rubic_suite::oracles::LockLeakDetector::new();
    det.watch("hot", &hot);

    // Capture the oracle's identity for the variable by leaking its
    // lock for a moment with an unmanaged transaction.
    let mut blocker = rubic_stm::Transaction::begin_unmanaged();
    blocker.write(&hot, 1).unwrap();
    let leaked = det.leaked();
    blocker.abort_unmanaged();
    assert_eq!(leaked.len(), 1);
    let oracle_addr = leaked[0].lock_addr;
    assert_eq!(oracle_addr, hot.lock_addr());

    // Storm the one cell from several threads so real conflicts get
    // attributed to it.
    let before = stm.stats().snapshot();
    let session = TraceSession::start(TraceConfig::default());
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..300 {
                    stm.atomically(|tx| tx.modify(&hot, |x| x + 1));
                }
            });
        }
    });
    let report = session.finish();
    let delta = stm.stats().snapshot().delta_since(&before);
    // The blocker's buffered write was aborted, never published.
    assert_eq!(hot.snapshot(), 4 * 300, "all increments committed");
    det.check().unwrap();
    if delta.aborts == 0 {
        // No conflict materialised (e.g. a single-CPU runner serialised
        // the threads) — nothing to attribute, nothing to cross-check.
        return;
    }

    let entry = report
        .contention
        .iter()
        .find(|e| e.addr == oracle_addr as u64)
        .expect("the contended TVar must appear in the contention table");
    assert_eq!(entry.label.as_deref(), Some("hot-cell"));
    assert!(entry.count > 0);
    // Attributed per-reason counts can never exceed the STM's own
    // always-on totals for the whole run.
    for (code, &attributed) in entry.by_reason.iter().enumerate() {
        assert!(
            attributed <= delta.abort_reasons[code],
            "{}: attributed {attributed} > stm total {}",
            codes::abort_name(code as u8),
            delta.abort_reasons[code],
        );
    }
}

#[cfg(feature = "mvcc")]
mod mvcc_snapshot {
    use super::*;

    /// An mvcc read-only run must emit the snapshot-path events: a
    /// `SnapPin` per pinned snapshot and a `SnapDemote` when the body
    /// turns out to write, with the always-on demotion counter agreeing.
    #[test]
    fn snapshot_path_emits_pin_and_demote_events() {
        let _serial = serial();
        let stm = Stm::builder().mvcc(true).build();
        let v = TVar::new(1u64);
        let demotions_before = stm.stats().snap_demotions();
        let session = TraceSession::start(TraceConfig::default());
        for _ in 0..16 {
            let _ = stm.read_only(|tx| tx.read(&v));
        }
        // A read-only body that writes demotes itself to the classic
        // protocol (SnapDemote code 1, naming the written variable).
        stm.read_only(|tx| tx.modify(&v, |x| x + 1));
        let report = session.finish();

        assert!(
            report.events.iter().any(|e| e.kind == EventKind::SnapPin),
            "no SnapPin events from the snapshot path"
        );
        assert!(
            report
                .events
                .iter()
                .any(|e| e.kind == EventKind::SnapDemote),
            "no SnapDemote event from the demoted write"
        );
        assert!(report.snap.pins >= 17, "pins: {}", report.snap.pins);
        assert!(report.snap.demotes >= 1, "demotes: {}", report.snap.demotes);
        assert!(
            stm.stats().snap_demotions() > demotions_before,
            "StmStats must count the demotion unconditionally"
        );
        assert_eq!(v.snapshot(), 2);
    }
}

#[cfg(feature = "chaos")]
mod chaos_interleaving {
    use super::*;
    use rubic::stm::chaos::{install, SeededChaos};
    use std::sync::Arc;

    /// Chaos fault injection and tracing driven together: injected
    /// kills must surface in the trace's abort breakdown under the
    /// `chaos` reason, matching the STM's own count.
    #[test]
    fn chaos_kills_are_attributed_in_the_trace() {
        let _serial = serial();
        let stm = Stm::default();
        let v = TVar::new(0u64);
        let before = stm.stats().snapshot();
        let hook = Arc::new(SeededChaos::with_abort_one_in(0xC0FFEE, 4));
        let session = TraceSession::start(TraceConfig::default());
        {
            let _chaos = install(hook);
            for _ in 0..200 {
                stm.atomically(|tx| {
                    let cur = tx.read(&v)?;
                    tx.write(&v, cur + 1)
                });
            }
        }
        let report = session.finish();
        let delta = stm.stats().snapshot().delta_since(&before);

        assert_eq!(v.snapshot(), 200, "all transactions eventually commit");
        let chaos_idx = codes::ABORT_CHAOS as usize;
        assert!(
            delta.abort_reasons[chaos_idx] > 0,
            "one-in-4 injection over 200 txns must kill some attempts"
        );
        if report.dropped == 0 {
            assert_eq!(
                report.abort_breakdown[chaos_idx],
                delta.abort_reasons[chaos_idx]
            );
            assert_eq!(report.total_aborts(), delta.aborts);
        }
        // The injection points themselves are also traced.
        assert!(
            report.events.iter().any(|e| e.kind == EventKind::Chaos),
            "chaos decision events missing from the log"
        );
    }
}
