//! Property-based tests for the persistent data-structure substrates:
//! the red-black-tree map against `BTreeMap`, the persistent queue
//! against `VecDeque` — with structural invariants checked after every
//! step.

use std::collections::{BTreeMap, VecDeque};

use proptest::prelude::*;
use rubic::workloads::pers::PMap;
use rubic::workloads::pqueue::PQueue;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(i16, i32),
    Remove(i16),
    Get(i16),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<i16>(), any::<i32>()).prop_map(|(k, v)| MapOp::Insert(k % 200, v)),
        any::<i16>().prop_map(|k| MapOp::Remove(k % 200)),
        any::<i16>().prop_map(|k| MapOp::Get(k % 200)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The persistent map behaves exactly like BTreeMap and keeps its
    /// red-black invariants after every operation.
    #[test]
    fn pmap_matches_btreemap(ops in proptest::collection::vec(map_op(), 1..400)) {
        let mut model: BTreeMap<i16, i32> = BTreeMap::new();
        let mut map: PMap<i16, i32> = PMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    let expected = model.insert(k, v);
                    let (next, got) = map.insert(k, v);
                    prop_assert_eq!(got, expected);
                    map = next;
                }
                MapOp::Remove(k) => {
                    let expected = model.remove(&k);
                    let (next, got) = map.remove(&k);
                    prop_assert_eq!(got, expected);
                    map = next;
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(map.get(&k), model.get(&k));
                }
            }
            prop_assert_eq!(map.len(), model.len());
            if let Err(e) = map.check_invariants() {
                prop_assert!(false, "invariant violated: {}", e);
            }
        }
        let entries = map.entries();
        let expected: Vec<(i16, i32)> = model.into_iter().collect();
        prop_assert_eq!(entries, expected);
    }

    /// Persistence: mutating a derived version never changes the base.
    #[test]
    fn pmap_versions_are_immutable(
        base_keys in proptest::collection::btree_set(0i16..100, 0..50),
        extra in 100i16..200,
    ) {
        let mut base: PMap<i16, ()> = PMap::new();
        for &k in &base_keys {
            base = base.insert(k, ()).0;
        }
        let snapshot_entries = base.entries();
        // Derive and mutate heavily.
        let (mut derived, _) = base.insert(extra, ());
        for &k in &base_keys {
            derived = derived.remove(&k).0;
        }
        // The base is untouched.
        prop_assert_eq!(base.entries(), snapshot_entries);
        prop_assert_eq!(derived.len(), 1);
    }

    /// Min/max agree with the sorted entry list.
    #[test]
    fn pmap_min_max(keys in proptest::collection::btree_set(any::<i16>(), 1..64)) {
        let mut map: PMap<i16, ()> = PMap::new();
        for &k in &keys {
            map = map.insert(k, ()).0;
        }
        prop_assert_eq!(map.min().map(|(k, ())| *k), keys.iter().next().copied());
        prop_assert_eq!(map.max().map(|(k, ())| *k), keys.iter().next_back().copied());
    }

    /// The persistent queue is observationally a VecDeque.
    #[test]
    fn pqueue_matches_vecdeque(ops in proptest::collection::vec(any::<Option<u32>>(), 1..300)) {
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut q: PQueue<u32> = PQueue::new();
        for op in ops {
            match op {
                Some(v) => {
                    q = q.push(v);
                    model.push_back(v);
                }
                None => {
                    let (next, got) = q.pop();
                    q = next;
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(q.len(), model.len());
        }
        prop_assert_eq!(q.to_vec(), model.into_iter().collect::<Vec<_>>());
    }
}
