//! Controller edge cases the property tests don't pin explicitly: the
//! very first sample, saturation at `max_level`, and decrease underflow.

use rubic_controllers::{Controller, Rubic, RubicConfig, Sample};

fn sample(throughput: f64, level: u32, round: u64) -> Sample {
    Sample {
        throughput,
        level,
        round,
    }
}

#[test]
fn zero_throughput_first_round_takes_growth_branch() {
    // Algorithm 2 line 6 compares `T_c >= T_p` with `T_p` initialised to
    // 0, so a first round that measured *nothing* still counts as an
    // improvement — the controller must probe upward, not react to the
    // empty interval as a loss (or divide/NaN its way out of bounds).
    let mut c = Rubic::new(RubicConfig::default(), 64);
    let next = c.decide(sample(0.0, 1, 0));
    assert!(
        (2..=64).contains(&next),
        "first zero-throughput round must grow from level 1, got {next}"
    );
}

#[test]
fn zero_throughput_forever_stays_in_bounds() {
    // All-zero feedback is a degenerate fixed point (every round reads
    // as "no worse"): the controller just grows to saturation. It must
    // do so without ever leaving `[1, max]`.
    let mut c = Rubic::new(RubicConfig::default(), 16);
    let mut level = 1u32;
    for round in 0..200 {
        level = c.decide(sample(0.0, level, round));
        assert!((1..=16).contains(&level), "round {round}: level {level}");
    }
    assert_eq!(level, 16, "monotone non-loss feedback must saturate");
}

#[test]
fn cubic_growth_saturates_at_max_level() {
    // Ever-improving throughput drives cubic probing; Equation (1) is
    // unbounded, so only the clamp keeps proposals at `max_level`.
    let mut c = Rubic::new(RubicConfig::default(), 8);
    let mut level = 1u32;
    for round in 0..100u64 {
        level = c.decide(sample(round as f64 + 1.0, level, round));
        assert!(level <= 8, "round {round}: level {level} above max");
    }
    assert_eq!(level, 8);
    // Once saturated, continued improvement holds the level at max.
    for round in 100..120u64 {
        level = c.decide(sample(round as f64 + 1.0, 8, round));
        assert_eq!(level, 8, "round {round} left saturation");
    }
}

#[test]
fn linear_decrease_clamps_to_one() {
    // A loss at a level at or below the linear step must clamp to 1,
    // not underflow (the proposal is `L - linear_decrease` in f64).
    for start in 1..=2u32 {
        let mut c = Rubic::new(RubicConfig::default(), 64);
        c.decide(sample(100.0, start, 0)); // establish T_p
        let next = c.decide(sample(0.5, start, 1)); // loss -> linear -2
        assert_eq!(next, 1, "loss at level {start} must clamp to 1");
    }
}

#[test]
fn oversized_linear_decrease_clamps_to_one() {
    let cfg = RubicConfig {
        linear_decrease: 10,
        ..RubicConfig::default()
    };
    for start in 1..=5u32 {
        let mut c = Rubic::new(cfg, 64);
        c.decide(sample(100.0, start, 0));
        let next = c.decide(sample(1.0, start, 1));
        assert_eq!(next, 1, "linear -10 at level {start} underflowed");
    }
}

#[test]
fn multiplicative_decrease_at_level_one_clamps_to_one() {
    // Escalate to the multiplicative path while already at level 1:
    // α·1 rounds to 1, and the controller must stay there.
    let mut c = Rubic::new(RubicConfig::default(), 64);
    c.decide(sample(100.0, 1, 0)); // T_p = 100
    let l1 = c.decide(sample(50.0, 1, 1)); // loss #1: linear, clamped to 1
    assert_eq!(l1, 1);
    let _ = c.decide(sample(10.0, 1, 2)); // free-pass growth round (T_p == 0)
    let l3 = c.decide(sample(1.0, 1, 3)); // loss #2 at level 1: multiplicative, α·1
    assert_eq!(l3, 1, "multiplicative decrease at level 1 must clamp to 1");
}
