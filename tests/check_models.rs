//! Pinned replay-seed regressions for the model checker.
//!
//! Every failure `rubic-check` reports comes with a `(seed, iteration)`
//! pair and a decision trace; this file pins known-failing coordinates
//! so the replay contract itself is under regression — if a scheduler
//! or race-detector change silently shifts exploration, these tests
//! notice even while the broad randomized checks still pass.
//!
//! It also pins fixes for bugs the checker surfaced in *itself* during
//! development (found by exactly the determinism checks below):
//!
//! * DFS replay divergence when a finished thread handed the scheduling
//!   baton to a thread that was not the recorded decision — fixed by
//!   granting the baton only to the recorded holder.
//! * Vector clocks missing the self-tick on spawn, which let a parent's
//!   post-spawn access appear ordered with the child's first access and
//!   masked real races.
//!
//! These run in normal builds (no `--cfg rubic_check` needed): the
//! checker's own primitives are always functional; the cfg only decides
//! what the `rubic-sync` facade re-exports.

use rubic_check::models::{epoch, vlock};
use rubic_check::sync::atomic::{AtomicU64, Ordering};
use rubic_check::sync::{thread, RaceCell};
use rubic_check::{check, Config, FailureKind};
use std::sync::Arc;

/// The weakened-release vlock mutation is caught at this exact pinned
/// coordinate, and its trace replays to the identical failure. (The
/// coordinate comes from the mutation self-test's first catch; it must
/// stay valid for the replay contract to mean anything.)
#[test]
fn pinned_vlock_mutation_replay() {
    let mutated = vlock::VLockModel {
        release: Ordering::Relaxed,
        ..vlock::VLockModel::default()
    };
    let report = check(Config::pct_at(0xB1C, 0), vlock::model(mutated));
    let failure = report.expect_failure().clone();
    assert_eq!(failure.kind, FailureKind::WeakOrdering);

    let replayed = check(Config::replay_trace(&failure.trace), vlock::model(mutated));
    let rf = replayed.expect_failure();
    assert_eq!(rf.kind, failure.kind);
    assert_eq!(rf.trace, failure.trace, "trace replay must be exact");
}

/// The early-free epoch mutation is caught at this pinned coordinate
/// and replays. `iteration > 0` makes this the regression for replaying
/// a mid-run iteration: the schedule-length estimate (`est_len = 54`,
/// adapted from earlier executions in the discovering run) is part of
/// the coordinate — replaying with the default estimate explores a
/// different schedule and misses the bug, which is exactly the gap
/// `Failure::est_len` closes.
#[test]
fn pinned_epoch_early_free_replay() {
    let model = epoch::EpochModel { early_free: true };
    let report = check(Config::pct_at_len(0xE0C, 13, 54), epoch::model(model));
    let failure = report.expect_failure().clone();
    assert!(
        matches!(failure.kind, FailureKind::Race | FailureKind::Panic),
        "early free must be a race or a poisoned-read panic, got {:?}",
        failure.kind
    );

    let replayed = check(Config::replay_trace(&failure.trace), epoch::model(model));
    assert_eq!(replayed.expect_failure().kind, failure.kind);
}

/// DFS determinism regression (the baton-handoff fix): enumerating the
/// same small model twice must visit the identical number of schedules
/// and exhaust both times. Before the fix, replayed prefixes diverged
/// when a thread exit handed control to an arbitrary runnable thread.
#[test]
fn dfs_enumeration_is_reproducible() {
    fn model() {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            a2.store(1, Ordering::Release);
        });
        let _ = a.load(Ordering::Acquire);
        t.join().expect("child");
    }
    let first = check(Config::dfs(10_000), model);
    let second = check(Config::dfs(10_000), model);
    assert!(first.failure.is_none() && second.failure.is_none());
    assert!(first.exhausted && second.exhausted, "model is tiny");
    assert_eq!(
        first.executions, second.executions,
        "DFS must enumerate identically on every run"
    );
}

/// Vector-clock self-tick regression: after the parent spawns a child,
/// a parent write concurrent with a child write must still be reported
/// as a race — the spawn edge orders the child after the *spawn*, not
/// after everything the parent does later. Before the self-tick fix the
/// parent's post-spawn epoch was indistinguishable from its pre-spawn
/// one and this race was missed.
#[test]
fn post_spawn_parent_write_still_races_with_child() {
    let report = check(Config::dfs(10_000), || {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.set(1));
        cell.set(2); // concurrent with the child's write: a real race
        t.join().expect("child");
    });
    assert_eq!(report.expect_failure().kind, FailureKind::Race);
}

/// The dual control: the same shape with a proper join *before* the
/// parent's write is race-free — the join edge, not luck, is what
/// orders them. Guards against the detector over-reporting after any
/// future vector-clock change.
#[test]
fn join_edge_orders_parent_after_child() {
    let report = check(Config::dfs(10_000), || {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.set(1));
        t.join().expect("child");
        cell.set(2); // ordered after the child by the join edge
        assert_eq!(cell.get(), 2);
    });
    report.assert_ok();
}
