//! The paper's evaluation claims as executable assertions, run on the
//! simulator at reduced repetition count (EXPERIMENTS.md records the
//! full-resolution numbers).

use rubic::prelude::*;
use rubic::sim::{pairwise_experiments, single_process_experiments, ProcessSpec, SimConfig};

// 10 repetitions, not the paper's 50, to keep test time low — but not
// fewer: the Fig. 8a Intruder lift is a ~1% effect over a noise floor
// of the same magnitude, and at 5 reps the EBS mean has not converged
// (its sample mean swings ±1% with the RNG stream while RUBIC's is
// stable), making the comparison a coin flip.
const REPS: u32 = 10;

fn geo_nash(policy: Policy) -> f64 {
    let outs = pairwise_experiments(policy, REPS);
    geometric_mean(&outs.iter().map(|(_, o)| o.nash.mean()).collect::<Vec<_>>())
}

/// §4.5.1 / Fig. 7a: RUBIC achieves the best system performance on the
/// pairwise geometric average; Greedy is the worst.
#[test]
fn fig7a_policy_ordering() {
    let rubic = geo_nash(Policy::Rubic);
    let ebs = geo_nash(Policy::Ebs);
    let greedy = geo_nash(Policy::Greedy);
    let equal = geo_nash(Policy::EqualShare);
    assert!(rubic > ebs, "RUBIC {rubic} must beat EBS {ebs}");
    assert!(ebs > equal, "EBS {ebs} must beat EqualShare {equal}");
    assert!(
        equal > greedy,
        "EqualShare {equal} must beat Greedy {greedy}"
    );
    // Headline magnitudes (shape, not exact): RUBIC >= +10% vs EBS,
    // and several-fold vs Greedy.
    assert!(rubic / ebs >= 1.10, "RUBIC/EBS = {}", rubic / ebs);
    assert!(rubic / greedy >= 4.0, "RUBIC/Greedy = {}", rubic / greedy);
}

/// Fig. 7b: RUBIC keeps the system at or below the oversubscription
/// line on average; Greedy is far above it.
#[test]
fn fig7b_total_threads() {
    let mean_threads = |policy: Policy| {
        let outs = pairwise_experiments(policy, REPS);
        outs.iter()
            .map(|(_, o)| o.total_threads.mean())
            .sum::<f64>()
            / 3.0
    };
    assert!(mean_threads(Policy::Rubic) <= 66.0);
    assert!(mean_threads(Policy::Greedy) >= 120.0);
}

/// Fig. 7c: RUBIC is the most efficient policy; Greedy by far the
/// least (paper: 66x less).
#[test]
fn fig7c_efficiency_ordering() {
    let geo_eff = |policy: Policy| {
        let outs = pairwise_experiments(policy, REPS);
        geometric_mean(
            &outs
                .iter()
                .map(|(_, o)| o.total_efficiency.mean())
                .collect::<Vec<_>>(),
        )
    };
    let rubic = geo_eff(Policy::Rubic);
    let ebs = geo_eff(Policy::Ebs);
    let greedy = geo_eff(Policy::Greedy);
    assert!(rubic > ebs && ebs > greedy);
    assert!(
        rubic / greedy >= 20.0,
        "RUBIC/Greedy eff = {}",
        rubic / greedy
    );
}

/// Fig. 8a: proportional fairness — under RUBIC the poorly scalable
/// Intruder does materially better paired with RBT than under EBS,
/// at a small cost to RBT.
#[test]
fn fig8a_proportional_fairness() {
    let per_proc = |policy: Policy| {
        let outs = pairwise_experiments(policy, REPS);
        // Int/RBT is the second pair; process 0 is Intruder.
        let (_, o) = &outs[1];
        (
            o.per_process[0].speedup.mean(),
            o.per_process[1].speedup.mean(),
        )
    };
    let (int_rubic, rbt_rubic) = per_proc(Policy::Rubic);
    let (int_ebs, rbt_ebs) = per_proc(Policy::Ebs);
    assert!(
        int_rubic > int_ebs,
        "RUBIC should lift Intruder: {int_rubic} vs {int_ebs}"
    );
    // RBT must not be sacrificed disproportionately.
    assert!(
        rbt_rubic > rbt_ebs * 0.7,
        "RBT under RUBIC too low: {rbt_rubic} vs {rbt_ebs}"
    );
}

/// Fig. 9a: in single-process runs RUBIC is within a few percent of the
/// best policy on every workload.
#[test]
fn fig9a_single_process_competitive() {
    let all: Vec<(Policy, Vec<f64>)> = Policy::EVALUATED
        .iter()
        .map(|&p| {
            let outs = single_process_experiments(p, REPS);
            (
                p,
                outs.iter()
                    .map(|(_, o)| o.per_process[0].speedup.mean())
                    .collect(),
            )
        })
        .collect();
    let rubic = &all.iter().find(|(p, _)| *p == Policy::Rubic).unwrap().1;
    for w in 0..3 {
        let best = all.iter().map(|(_, v)| v[w]).fold(f64::MIN, f64::max);
        assert!(
            rubic[w] >= best * 0.85,
            "workload {w}: RUBIC {} vs best {best}",
            rubic[w]
        );
    }
}

/// §4.6 / Fig. 10c: with two identical conflict-free processes and a
/// staggered arrival, RUBIC converges to the fair 32/32 split.
#[test]
fn fig10c_rubic_fair_convergence() {
    let specs = [
        ProcessSpec::new("P1", curves::rbt_readonly(), Policy::Rubic),
        ProcessSpec::new("P2", curves::rbt_readonly(), Policy::Rubic).arrives_at(500),
    ];
    for seed in [1u64, 7, 2016] {
        let cfg = SimConfig::paper(2).with_noise(0.02, seed);
        let r = rubic::sim::run(&specs, &cfg);
        let p1 = r.processes[0].trace.mean_level_in(800, 1000);
        let p2 = r.processes[1].trace.mean_level_in(800, 1000);
        assert!(
            (20.0..=46.0).contains(&p1) && (20.0..=46.0).contains(&p2),
            "seed {seed}: settled at {p1:.1}/{p2:.1}, expected near 32/32"
        );
        // Fairness: neither process dominates.
        assert!(
            (p1 - p2).abs() <= 16.0,
            "seed {seed}: unfair split {p1:.1}/{p2:.1}"
        );
    }
}

/// §4.6: before P2 arrives, RUBIC saturates the machine (level ≈ 64).
#[test]
fn fig10c_pre_arrival_saturation() {
    let specs = [
        ProcessSpec::new("P1", curves::rbt_readonly(), Policy::Rubic),
        ProcessSpec::new("P2", curves::rbt_readonly(), Policy::Rubic).arrives_at(500),
    ];
    let cfg = SimConfig::paper(2).with_noise(0.02, 2016);
    let r = rubic::sim::run(&specs, &cfg);
    let pre = r.processes[0].trace.mean_level_in(300, 500);
    assert!(
        (50.0..=70.0).contains(&pre),
        "P1 pre-arrival level {pre:.1}, expected ~64"
    );
}

/// §2.2: the utilisation ladder — AIMD < CIMD on the canonical
/// single-scalable-process scenario (75% vs ~94% in the paper).
#[test]
fn utilization_ladder_aimd_cimd() {
    let util = |policy: Policy| {
        let specs = [ProcessSpec::new("P", curves::rbt_readonly(), policy)];
        let r = rubic::sim::run(&specs, &SimConfig::paper(1));
        r.processes[0].trace.mean_level_in(300, 1000).min(64.0) / 64.0
    };
    let aimd = util(Policy::Aimd);
    let cimd = util(Policy::Cimd);
    assert!(
        (0.62..=0.85).contains(&aimd),
        "AIMD utilisation {aimd}, expected ~75%"
    );
    assert!(cimd >= 0.85, "CIMD utilisation {cimd}, expected ~90%+");
}

/// Determinism of the whole experiment pipeline: same seeds, same
/// aggregate numbers.
#[test]
fn experiment_pipeline_is_reproducible() {
    let a = pairwise_experiments(Policy::Rubic, 3);
    let b = pairwise_experiments(Policy::Rubic, 3);
    for ((_, x), (_, y)) in a.iter().zip(&b) {
        assert_eq!(x.nash.mean(), y.nash.mean());
        assert_eq!(x.total_threads.mean(), y.total_threads.mean());
    }
}
