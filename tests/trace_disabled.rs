//! Compiled only **without** `--features trace`: proves the default
//! build carries zero instrumentation. The STM's transaction-trace
//! recorder must compile down to a zero-sized type, so the untraced
//! hot path pays nothing — no timestamp reads, no ring pushes, no
//! extra per-transaction state.
#![cfg(not(feature = "trace"))]

#[test]
fn default_build_has_a_zero_sized_trace_recorder() {
    assert_eq!(
        rubic_stm::trace_footprint(),
        0,
        "trace feature off must compile the per-transaction recorder to a ZST"
    );
}
