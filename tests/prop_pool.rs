//! Property-based tests for the malleable pool's task distribution:
//! every produced item is processed exactly once under randomized
//! level-change schedules (including decrease-to-1 and
//! increase-to-max mid-drain), and a worker the schedule never admits
//! never executes a task.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use rubic_controllers::{Controller, Sample};
use rubic_runtime::{ChannelWorkload, MalleablePool, PoolConfig, ShardedWorkload};

/// Replays a fixed level schedule, one entry per monitor round, then
/// holds the last entry. This turns the controller seam into a test
/// input: proptest generates adversarial gating patterns and the pool
/// must deliver every task regardless.
struct Scripted {
    schedule: Vec<u32>,
    idx: usize,
    max: u32,
}

impl Scripted {
    fn new(schedule: Vec<u32>, max: u32) -> Self {
        assert!(!schedule.is_empty());
        assert!(schedule.iter().all(|&l| l >= 1 && l <= max));
        Scripted {
            schedule,
            idx: 0,
            max,
        }
    }
}

impl Controller for Scripted {
    fn decide(&mut self, _sample: Sample) -> u32 {
        let level = self.schedule[self.idx.min(self.schedule.len() - 1)];
        self.idx += 1;
        level
    }

    fn reset(&mut self) {
        self.idx = 0;
    }

    fn max_level(&self) -> u32 {
        self.max
    }

    fn name(&self) -> &'static str {
        "Scripted"
    }
}

/// A schedule over `1..=size` that provably visits both extremes while
/// the queue drains: random prefix, then a forced drop to 1 and a
/// forced jump to `size`, then a random tail.
fn extreme_schedule(head: Vec<u32>, tail: Vec<u32>, size: u32) -> Vec<u32> {
    let mut schedule: Vec<u32> = head.into_iter().map(|l| l.clamp(1, size)).collect();
    schedule.push(1);
    schedule.push(size);
    schedule.extend(tail.into_iter().map(|l| l.clamp(1, size)));
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded queue: every item sent is handled exactly once, no
    /// matter how the level moves mid-drain. The handler sleeps a hair
    /// so the drain spans several monitor rounds and the forced
    /// decrease-to-1 / increase-to-max entries land while items are
    /// still in flight.
    #[test]
    fn sharded_exactly_once_under_level_changes(
        size in 2u32..=4,
        head in proptest::collection::vec(1u32..=4, 1..6),
        tail in proptest::collection::vec(1u32..=4, 0..6),
        n_items in 200u64..600,
    ) {
        let schedule = extreme_schedule(head, tail, size);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let (workload, tx) = ShardedWorkload::new(size as usize, 128, move |n: u64| {
            seen2.lock().unwrap().push(n);
            std::thread::sleep(Duration::from_micros(30));
        });
        let handle = workload.handle();
        let pool = MalleablePool::start(
            PoolConfig::new(size)
                .initial_level(schedule[0])
                .monitor_period(Duration::from_millis(1)),
            workload,
            Box::new(Scripted::new(schedule, size)),
        );
        let producer = std::thread::spawn(move || tx.send_batch(0..n_items));
        producer.join().unwrap().unwrap();
        handle.wait_drained();
        let _ = pool.stop();

        let got = seen.lock().unwrap();
        prop_assert_eq!(got.len() as u64, n_items, "lost or duplicated items");
        let unique: HashSet<u64> = got.iter().copied().collect();
        prop_assert_eq!(unique.len() as u64, n_items, "duplicate execution");
        prop_assert_eq!(handle.processed(), n_items);
    }

    /// Channel queue under the same schedules: the baseline path must
    /// deliver identical exactly-once behaviour.
    #[test]
    fn channel_exactly_once_under_level_changes(
        size in 2u32..=4,
        head in proptest::collection::vec(1u32..=4, 1..6),
        tail in proptest::collection::vec(1u32..=4, 0..6),
        n_items in 200u64..500,
    ) {
        let schedule = extreme_schedule(head, tail, size);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let (workload, tx) = ChannelWorkload::new(128, move |n: u64| {
            seen2.lock().unwrap().push(n);
            std::thread::sleep(Duration::from_micros(30));
        });
        let handle = workload.handle();
        let pool = MalleablePool::start(
            PoolConfig::new(size)
                .initial_level(schedule[0])
                .monitor_period(Duration::from_millis(1)),
            workload,
            Box::new(Scripted::new(schedule, size)),
        );
        let producer = std::thread::spawn(move || {
            for n in 0..n_items {
                tx.send(n).unwrap();
            }
        });
        producer.join().unwrap();
        handle.wait_drained();
        let _ = pool.stop();

        let got = seen.lock().unwrap();
        prop_assert_eq!(got.len() as u64, n_items, "lost or duplicated items");
        let unique: HashSet<u64> = got.iter().copied().collect();
        prop_assert_eq!(unique.len() as u64, n_items, "duplicate execution");
    }

    /// Workers above every level the schedule ever admits stay parked
    /// for the whole run: their per-worker task counters end at zero
    /// even though the queue routes items across all shards and the
    /// admitted workers must steal the rest.
    #[test]
    fn never_admitted_worker_never_executes(
        admitted in 1u32..=2,
        schedule in proptest::collection::vec(1u32..=2, 1..8),
        n_items in 100u64..300,
    ) {
        let size = 4u32;
        let schedule: Vec<u32> = schedule.iter().map(|&l| l.min(admitted)).collect();
        let (workload, tx) = ShardedWorkload::new(size as usize, 128, |_n: u64| {});
        let handle = workload.handle();
        let pool = MalleablePool::start(
            PoolConfig::new(size)
                .initial_level(schedule[0])
                .monitor_period(Duration::from_millis(1)),
            workload,
            Box::new(Scripted::new(schedule, admitted)),
        );
        tx.send_batch(0..n_items).unwrap();
        drop(tx);
        handle.wait_drained();
        let report = pool.stop();
        prop_assert_eq!(handle.processed(), n_items);
        for tid in (admitted as usize)..(size as usize) {
            prop_assert_eq!(
                report.per_worker[tid],
                0,
                "worker {} executed while gated for the whole run",
                tid
            );
        }
    }
}
