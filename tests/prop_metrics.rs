//! Property-based tests for the metrics layer: algebraic laws of the
//! fairness/efficiency functions and the streaming statistics.

use proptest::prelude::*;
use rubic::metrics::{
    efficiency, geometric_mean, jain_index, nash_product, speedup, LevelTrace, Summary,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Nash product is permutation-invariant and multiplicative.
    #[test]
    fn nash_permutation_invariant(mut xs in proptest::collection::vec(0.01f64..100.0, 0..8)) {
        let a = nash_product(&xs);
        xs.reverse();
        let b = nash_product(&xs);
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }

    /// Jain index is bounded by [1/n, 1] for positive allocations and
    /// scale-invariant.
    #[test]
    fn jain_bounds_and_scale(
        xs in proptest::collection::vec(0.001f64..1000.0, 1..32),
        scale in 0.01f64..100.0,
    ) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j >= 1.0 / n - 1e-9, "below 1/n: {j}");
        prop_assert!(j <= 1.0 + 1e-9, "above 1: {j}");
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        prop_assert!((jain_index(&scaled) - j).abs() < 1e-6);
    }

    /// AM-GM: the geometric mean never exceeds the arithmetic mean.
    #[test]
    fn am_gm_inequality(xs in proptest::collection::vec(0.001f64..1000.0, 1..32)) {
        let g = geometric_mean(&xs);
        let a = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!(g <= a + 1e-9 * a.max(1.0));
    }

    /// Speed-up and efficiency chain: E * L == S for positive inputs.
    #[test]
    fn efficiency_inverts_level(t_par in 0.1f64..1e6, t_seq in 0.1f64..1e6, level in 1.0f64..256.0) {
        let s = speedup(t_par, t_seq);
        let e = efficiency(s, level);
        prop_assert!((e * level - s).abs() < 1e-9 * s.max(1.0));
    }

    /// Summary::merge is equivalent to a single-pass summary for any
    /// split point (mean/variance/min/max).
    #[test]
    fn summary_merge_any_split(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let whole = Summary::from_slice(&xs);
        let mut left = Summary::from_slice(&xs[..split]);
        let right = Summary::from_slice(&xs[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!(
            (left.variance() - whole.variance()).abs()
                < 1e-5 * whole.variance().abs().max(1.0)
        );
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// The trace's mean level always lies between its min and max
    /// recorded levels, and utilisation is their ratio to contexts.
    #[test]
    fn trace_mean_bounded(levels in proptest::collection::vec(1u32..256, 1..200)) {
        let mut t = LevelTrace::new();
        for (i, &l) in levels.iter().enumerate() {
            t.push(i as u64, l, f64::from(l));
        }
        let mean = t.mean_level();
        let lo = f64::from(*levels.iter().min().unwrap());
        let hi = f64::from(*levels.iter().max().unwrap());
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert!((t.utilization(64) - mean / 64.0).abs() < 1e-12);
    }

    /// convergence_round: when it returns Some(r), every sample from r
    /// on is inside the band; when None, the last sample is outside or
    /// the trace ends outside the band at some suffix point.
    #[test]
    fn convergence_round_is_sound(
        levels in proptest::collection::vec(1u32..100, 1..150),
        target in 1.0f64..100.0,
        tol in 0.0f64..20.0,
    ) {
        let mut t = LevelTrace::new();
        for (i, &l) in levels.iter().enumerate() {
            t.push(i as u64, l, 0.0);
        }
        match t.convergence_round(target, tol) {
            Some(r) => {
                for p in t.points().iter().filter(|p| p.round >= r) {
                    prop_assert!(
                        (f64::from(p.level) - target).abs() <= tol,
                        "round {} escaped the band after convergence at {}",
                        p.round, r
                    );
                }
                // The sample just before r (if any) is outside the band.
                if r > 0 {
                    let prev = &t.points()[(r - 1) as usize];
                    prop_assert!((f64::from(prev.level) - target).abs() > tol);
                }
            }
            None => {
                let last = t.points().last().unwrap();
                prop_assert!(
                    (f64::from(last.level) - target).abs() > tol,
                    "trace ends in-band but convergence_round returned None"
                );
            }
        }
    }

    /// total_work equals throughput sum times the round duration.
    #[test]
    fn total_work_linear(thrs in proptest::collection::vec(0.0f64..1e5, 1..100), dt in 0.001f64..1.0) {
        let mut t = LevelTrace::new();
        for (i, &x) in thrs.iter().enumerate() {
            t.push(i as u64, 1, x);
        }
        let expected: f64 = thrs.iter().sum::<f64>() * dt;
        prop_assert!((t.total_work(dt) - expected).abs() < 1e-6 * expected.max(1.0));
    }
}
