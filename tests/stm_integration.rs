//! Cross-crate STM integration tests: invariants under real
//! concurrency, composed through the workload substrates.

use std::sync::Arc;
use std::time::Duration;

use rubic::prelude::*;
use rubic::workloads::vacation::ResourceKind;

/// Bank-transfer serializability: concurrent transfers + concurrent
/// full-table audits; the total must hold in every audit snapshot and
/// at the end.
#[test]
fn bank_invariant_under_concurrency() {
    const N: usize = 32;
    const PER_THREAD: usize = 3_000;
    let stm = Stm::default();
    let accounts: Arc<Vec<TVar<i64>>> = Arc::new((0..N).map(|_| TVar::new(100)).collect());
    let expected = 100 * N as i64;

    let mut handles = Vec::new();
    for t in 0..3u64 {
        let stm = stm.clone();
        let accounts = Arc::clone(&accounts);
        handles.push(std::thread::spawn(move || {
            let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..PER_THREAD {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let from = (x as usize) % N;
                let to = (from + 1 + (x >> 16) as usize % (N - 1)) % N;
                let amount = ((x >> 32) % 20) as i64;
                stm.atomically(|tx| {
                    let a = tx.read(&accounts[from])?;
                    let b = tx.read(&accounts[to])?;
                    tx.write(&accounts[from], a - amount)?;
                    tx.write(&accounts[to], b + amount)?;
                    Ok(())
                });
            }
        }));
    }
    // Auditor runs concurrently.
    let auditor = {
        let stm = stm.clone();
        let accounts = Arc::clone(&accounts);
        std::thread::spawn(move || {
            for _ in 0..200 {
                let total = stm.read_only(|tx| {
                    let mut sum = 0i64;
                    for a in accounts.iter() {
                        sum += tx.read(a)?;
                    }
                    Ok(sum)
                });
                assert_eq!(total, expected, "torn audit snapshot");
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    auditor.join().unwrap();
    let final_total: i64 = accounts.iter().map(TVar::snapshot).sum();
    assert_eq!(final_total, expected);
}

/// The transactional map keeps its red-black invariants and exact size
/// under concurrent inserts and removals from many threads.
#[test]
fn tmap_concurrent_mixed_ops_stay_consistent() {
    let stm = Stm::default();
    let map: Arc<TMap<u64, u64>> = Arc::new(TMap::new());
    let inserted = Arc::new(std::sync::atomic::AtomicI64::new(0));

    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let stm = stm.clone();
            let map = Arc::clone(&map);
            let inserted = Arc::clone(&inserted);
            std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
                for _ in 0..800 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % 256;
                    if x % 3 == 0 {
                        let removed = stm.atomically(|tx| map.remove(tx, &key));
                        if removed.is_some() {
                            inserted.fetch_add(-1, std::sync::atomic::Ordering::Relaxed);
                        }
                    } else {
                        let old = stm.atomically(|tx| map.insert(tx, key, x));
                        if old.is_none() {
                            inserted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = map.snapshot();
    snap.check_invariants().expect("red-black invariants");
    assert_eq!(
        snap.len() as i64,
        inserted.load(std::sync::atomic::Ordering::Relaxed),
        "net insert count must equal final map size"
    );
}

/// Vacation's ledger invariant survives concurrent client sessions run
/// through the malleable pool under an adaptive controller.
#[test]
fn vacation_ledger_balanced_after_tuned_run() {
    let stm = Stm::default();
    let workload = Arc::new(VacationWorkload::new(
        VacationConfig::high_contention(128),
        stm.clone(),
    ));
    let pool = MalleablePool::start(
        PoolConfig::new(4)
            .monitor_period(Duration::from_millis(5))
            .name("vacation-it"),
        Arc::clone(&workload),
        Box::new(Rubic::new(RubicConfig::default(), 4)),
    );
    std::thread::sleep(Duration::from_millis(300));
    let report = pool.stop();
    assert!(report.total_tasks > 0);
    let used = workload.manager().total_reserved_units(workload.stm());
    let held = workload.manager().total_customer_bookings();
    assert_eq!(used, held, "reservation ledger out of balance");
}

/// Intruder under the pool: flows complete, attacks are detected, and
/// sessions do not leak.
#[test]
fn intruder_pipeline_under_pool() {
    let stm = Stm::default();
    let workload = Arc::new(IntruderWorkload::new(IntruderConfig::small(), stm));
    let pool = MalleablePool::start(
        PoolConfig::new(3)
            .monitor_period(Duration::from_millis(5))
            .name("intruder-it"),
        Arc::clone(&workload),
        Box::new(Ebs::new(3)),
    );
    std::thread::sleep(Duration::from_millis(300));
    let _ = pool.stop();
    assert!(workload.flows_completed() > 0, "no flow reassembled");
    // Sessions bounded by in-flight batches (one per worker at worst).
    assert!(
        workload.open_sessions() <= 3 * 8,
        "session map leaked: {}",
        workload.open_sessions()
    );
}

/// Two STM instances hosted in one process stay fully isolated in
/// statistics but share the global clock safely.
#[test]
fn independent_stm_instances() {
    let stm_a = Stm::default();
    let stm_b = Stm::default();
    let v = TVar::new(0u64);
    stm_a.atomically(|tx| tx.write(&v, 1));
    stm_b.atomically(|tx| tx.modify(&v, |x| x + 1));
    assert_eq!(v.snapshot(), 2);
    assert_eq!(stm_a.stats().commits(), 1);
    assert_eq!(stm_b.stats().commits(), 1);
}

/// The manager API's billing matches the sum of reserved item prices.
#[test]
fn vacation_billing_matches_prices() {
    let stm = Stm::default();
    let m = Manager::new();
    stm.atomically(|tx| {
        m.add_resource(tx, ResourceKind::Car, 1, 10, 30)?;
        m.add_resource(tx, ResourceKind::Room, 2, 10, 45)?;
        m.add_resource(tx, ResourceKind::Flight, 3, 10, 100)?;
        Ok(())
    });
    stm.atomically(|tx| {
        assert!(m.reserve(tx, ResourceKind::Car, 9, 1)?);
        assert!(m.reserve(tx, ResourceKind::Room, 9, 2)?);
        assert!(m.reserve(tx, ResourceKind::Flight, 9, 3)?);
        Ok(())
    });
    let bill = stm.atomically(|tx| m.delete_customer(tx, 9));
    assert_eq!(bill, Some(175));
}
