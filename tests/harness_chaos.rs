//! The correctness harness: invariant oracles hammered under the STM's
//! deterministic fault-injection ("chaos") hook, plus regression tests
//! for the pool's reporting and robustness fixes.
//!
//! # Seed reproduction workflow
//!
//! Every chaos test pins its `u64` seed in the source. If a test fails,
//! rerun the binary with the same seed and the hook replays the same
//! decision sequence (per thread stream), reproducing the interleaving
//! pressure that exposed the bug:
//!
//! ```text
//! cargo test --test harness_chaos chaos_ -- --nocapture
//! ```
//!
//! All tests in this file serialise on one mutex: the STM clock is
//! process-global, and chaos decision logs are only reproducible when no
//! unrelated transaction commits concurrently.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rubic::prelude::*;
use rubic_stm::chaos::{install, ChaosHook, ChaosPoint, Decision, SeededChaos};
use rubic_stm::AbortReason;
use rubic_suite::oracles::{ConservedSumBank, LockLeakDetector, MonotoneCounter, SnapshotChecker};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs a fixed single-threaded transactional workload under a seeded
/// chaos hook and returns the full decision log.
fn chaos_decisions(seed: u64) -> Vec<Decision> {
    let stm = Stm::default();
    let bank = ConservedSumBank::new(4, 25);
    let hook = Arc::new(SeededChaos::new(seed));
    {
        let _chaos = install(hook.clone());
        for i in 0..32usize {
            bank.transfer(&stm, i, i + 3, (i % 5) as i64);
        }
        bank.check(&stm).unwrap();
    }
    hook.decision_log()
}

#[test]
fn chaos_same_seed_replays_same_decisions() {
    let _serial = serial();
    let a = chaos_decisions(0x1BAD_B002);
    let b = chaos_decisions(0x1BAD_B002);
    assert!(!a.is_empty(), "the workload never consulted the hook");
    assert_eq!(a, b, "same seed must replay the same decision sequence");
    // The workload reads, writes, and commits, so both the lock-sample
    // and pre-publish protocol points must have fired.
    assert!(a.iter().any(|d| d.point == ChaosPoint::LockSample));
    assert!(a.iter().any(|d| d.point == ChaosPoint::PrePublish));
}

#[test]
fn chaos_different_seeds_diverge() {
    let _serial = serial();
    let actions = |seed| {
        chaos_decisions(seed)
            .iter()
            .map(|d| d.action)
            .collect::<Vec<_>>()
    };
    assert_ne!(
        actions(1),
        actions(2),
        "hundreds of draws from different seeds should not collide"
    );
}

/// Runs a fixed single-threaded *read-only* workload under a seeded
/// chaos hook and returns the full decision log.
fn readonly_chaos_decisions(seed: u64) -> Vec<Decision> {
    let stm = Stm::default();
    let vars: Vec<TVar<i64>> = (0..4).map(TVar::new).collect();
    let hook = Arc::new(SeededChaos::new(seed));
    {
        let _chaos = install(hook.clone());
        for _ in 0..16 {
            let sum = stm.atomically(|tx| {
                let mut s = 0;
                for v in &vars {
                    s += tx.read(v)?;
                }
                Ok(s)
            });
            assert_eq!(sum, 6);
        }
        assert_eq!(stm.stats().commits(), 16);
    }
    hook.decision_log()
}

#[test]
fn chaos_read_only_commits_advance_the_decision_stream() {
    let _serial = serial();
    // Regression: the read-only commit fast path (`writes.is_empty()`)
    // used to return before consulting the chaos hook, so read-heavy
    // workloads replayed a *different* decision sequence than the one
    // their seed pinned. Every commit — read-only included — must now
    // draw exactly one pre-validate decision.
    let log = readonly_chaos_decisions(0x0C0F_FEE5);
    let prevalidates = log
        .iter()
        .filter(|d| d.point == ChaosPoint::PreValidate)
        .count();
    assert_eq!(
        prevalidates, 16,
        "each read-only commit must consult the hook exactly once"
    );
    assert_eq!(
        log,
        readonly_chaos_decisions(0x0C0F_FEE5),
        "same seed must replay the same read-only decision sequence"
    );
}

/// Kills exactly one attempt, and only at the commit-time validation
/// point — reads pass untouched.
struct KillOnceAtPreValidate(AtomicBool);
impl ChaosHook for KillOnceAtPreValidate {
    fn at(&self, _point: ChaosPoint) {}
    fn abort_at(&self, point: ChaosPoint) -> bool {
        point == ChaosPoint::PreValidate && self.0.swap(false, Ordering::Relaxed)
    }
}

#[test]
fn chaos_kill_aborts_read_only_commit_with_chaos_reason() {
    let _serial = serial();
    // Regression companion to the decision-stream test: the fast path
    // must also honour the *kill* query, attributing the abort to
    // `AbortReason::Chaos` like any other killed attempt.
    let stm = Stm::default();
    let v = TVar::new(11);
    let _chaos = install(Arc::new(KillOnceAtPreValidate(AtomicBool::new(true))));
    let got = stm.atomically(|tx| tx.read(&v));
    assert_eq!(got, 11, "the retried attempt must still commit");
    assert_eq!(stm.stats().commits(), 1);
    assert_eq!(
        stm.stats().aborts(),
        1,
        "the killed read-only attempt must be recorded"
    );
    assert_eq!(stm.stats().aborts_for(AbortReason::Chaos), 1);
}

#[test]
fn chaos_bank_conserves_sum_under_contention() {
    let _serial = serial();
    let stm = Stm::default();
    let bank = Arc::new(ConservedSumBank::new(8, 100));
    let _chaos = install(Arc::new(SeededChaos::new(0x5EED_0001)));

    let handles: Vec<_> = (0..4)
        .map(|t: usize| {
            let stm = stm.clone();
            let bank = Arc::clone(&bank);
            std::thread::spawn(move || {
                for i in 0..300usize {
                    bank.transfer(&stm, t * 31 + i, i * 7 + 1, ((i % 9) as i64) - 4);
                    if i % 50 == 0 {
                        // Mid-run snapshots must already conserve the sum.
                        bank.check(&stm).unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    bank.check(&stm).unwrap();
    let mut leaks = LockLeakDetector::new();
    leaks.watch_all("account", bank.accounts());
    leaks.check().unwrap();
    // Transfers whose two indices collide are skipped, so the exact
    // commit count varies; the bulk of the 4×300 must have committed.
    assert!(stm.stats().commits() >= 600);
}

#[test]
fn chaos_counter_loses_no_updates() {
    let _serial = serial();
    let stm = Stm::default();
    let counter = Arc::new(MonotoneCounter::new());
    let _chaos = install(Arc::new(SeededChaos::new(0x5EED_0002)));

    let threads = 4u64;
    let per_thread = 250u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let stm = stm.clone();
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    counter.increment(&stm);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    counter.check(threads * per_thread).unwrap();
    let mut leaks = LockLeakDetector::new();
    leaks.watch("counter", counter.cell());
    leaks.check().unwrap();
}

#[test]
fn chaos_readonly_snapshots_are_never_torn() {
    let _serial = serial();
    let stm = Stm::default();
    let checker = Arc::new(SnapshotChecker::new(6));
    let _chaos = install(Arc::new(SeededChaos::new(0x5EED_0003)));

    let generations = 200u64;
    let writer = {
        let stm = stm.clone();
        let checker = Arc::clone(&checker);
        std::thread::spawn(move || {
            for _ in 0..generations {
                checker.bump(&stm);
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stm = stm.clone();
            let checker = Arc::clone(&checker);
            std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..200 {
                    let gen = checker.check(&stm).unwrap();
                    assert!(gen >= last, "generation went backwards: {gen} < {last}");
                    last = gen;
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    assert_eq!(checker.check(&stm).unwrap(), generations);
    let mut leaks = LockLeakDetector::new();
    leaks.watch_all("cell", checker.cells());
    leaks.check().unwrap();
}

#[test]
fn unmanaged_writer_lock_conflicts_readers_until_abort() {
    let _serial = serial();
    let v = TVar::new(1);

    let mut writer = rubic_stm::Transaction::begin_unmanaged();
    writer.write(&v, 2).unwrap();
    assert!(v.is_locked());

    // An invisible read of a locked variable must conflict, never block
    // or observe the uncommitted value.
    let mut reader = rubic_stm::Transaction::begin_unmanaged();
    assert_eq!(reader.read(&v), Err(StmError::Conflict));
    reader.abort_unmanaged();

    writer.abort_unmanaged();
    assert!(!v.is_locked());
    assert_eq!(v.snapshot(), 1, "aborted write must not publish");
}

// ---------------------------------------------------------------------
// Pool robustness and reporting regressions.
// ---------------------------------------------------------------------

/// Minimal busy workload for pool tests.
struct Spin;
impl Workload for Spin {
    type WorkerState = ();
    fn init_worker(&self, _tid: usize) {}
    fn run_task(&self, _state: &mut ()) {
        std::hint::black_box((0..100u64).fold(0, |a, b| a ^ b));
    }
}

/// Workload whose every 10th task panics.
struct Faulty {
    calls: AtomicU64,
}
impl Workload for Faulty {
    type WorkerState = ();
    fn init_worker(&self, _tid: usize) {}
    fn run_task(&self, _state: &mut ()) {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        assert!(n % 10 != 3, "injected task failure");
    }
}

#[test]
fn worker_panics_are_counted_and_survived() {
    let _serial = serial();
    // Silence the default "thread panicked" chatter from the injected
    // failures; worker threads are outside libtest's output capture.
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let workload = Arc::new(Faulty {
        calls: AtomicU64::new(0),
    });
    let pool = MalleablePool::start(
        PoolConfig::new(2)
            .initial_level(2)
            .monitor_period(Duration::from_millis(2))
            .name("faulty"),
        Arc::clone(&workload),
        Box::new(Fixed::new(2, 2)),
    );
    std::thread::sleep(Duration::from_millis(40));
    let report = pool.stop(); // must join cleanly despite the panics
    std::panic::set_hook(saved);

    assert!(report.worker_panics > 0, "no injected panic was recorded");
    assert!(report.total_tasks > 0, "panics must not stop the pool");
    // Every attempt either completed (counted) or panicked (counted
    // separately) — nothing is double- or under-reported.
    assert_eq!(
        report.total_tasks + report.worker_panics,
        workload.calls.load(Ordering::Relaxed),
        "attempt accounting mismatch"
    );
    assert_eq!(report.total_tasks, report.per_worker.iter().sum::<u64>());
}

#[test]
fn stop_elapsed_excludes_join_drain() {
    let _serial = serial();
    // Regression: `stop` used to measure `elapsed` *after* joining. With
    // a long monitor period the join drain dwarfs the actual run and
    // every derived throughput number collapses.
    let pool = MalleablePool::start(
        PoolConfig::new(2)
            .initial_level(1)
            .monitor_period(Duration::from_millis(300))
            .name("elapsed"),
        Spin,
        Box::new(Fixed::new(1, 2)),
    );
    std::thread::sleep(Duration::from_millis(30));
    let join_started = Instant::now();
    let report = pool.stop();
    let drain = join_started.elapsed();

    assert!(
        drain >= Duration::from_millis(100),
        "test premise broken: join drain only took {drain:?}"
    );
    assert!(
        report.elapsed < Duration::from_millis(150),
        "elapsed {:?} includes the join drain",
        report.elapsed
    );
}

#[test]
fn monitor_traces_the_final_partial_interval() {
    let _serial = serial();
    // Regression: a run shorter than one monitor period used to produce
    // an empty trace — the budget exhausts and flips `running` before
    // the monitor's first full round, and the partial interval was
    // discarded on exit.
    let pool = MalleablePool::start(
        PoolConfig::new(2)
            .initial_level(2)
            .task_budget(50)
            .monitor_period(Duration::from_millis(200))
            .name("tail"),
        Spin,
        Box::new(Fixed::new(2, 2)),
    );
    pool.wait_budget_exhausted();
    let report = pool.stop();
    assert_eq!(report.total_tasks, 50);
    assert!(
        !report.trace.is_empty(),
        "tasks ran inside a partial monitor interval and must still be traced"
    );
}

/// Workload whose tasks are much longer than the monitor period, so the
/// monitor sees long runs of zero-progress rounds.
struct SlowTask;
impl Workload for SlowTask {
    type WorkerState = ();
    fn init_worker(&self, _tid: usize) {}
    fn run_task(&self, _state: &mut ()) {
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn watchdog_flags_zero_progress_rounds() {
    let _serial = serial();
    let pool = MalleablePool::start(
        PoolConfig::new(1)
            .initial_level(1)
            .monitor_period(Duration::from_millis(2))
            .stall_rounds(10)
            .name("stall"),
        SlowTask,
        Box::new(Fixed::new(1, 1)),
    );
    std::thread::sleep(Duration::from_millis(120));
    let report = pool.stop();
    assert!(
        report.stall_warnings >= 1,
        "50 ms tasks under a 2 ms monitor must trip the 10-round watchdog"
    );
}

#[test]
fn busy_pool_raises_no_stall_warnings() {
    let _serial = serial();
    let pool = MalleablePool::start(
        PoolConfig::new(2)
            .initial_level(2)
            .monitor_period(Duration::from_millis(2))
            .stall_rounds(10)
            .name("busy"),
        Spin,
        Box::new(Fixed::new(2, 2)),
    );
    std::thread::sleep(Duration::from_millis(60));
    let report = pool.stop();
    assert_eq!(
        report.stall_warnings, 0,
        "a continuously progressing pool must not be flagged"
    );
    assert_eq!(report.worker_panics, 0);
}
