//! Demo of the correctness harness: the STM's deterministic
//! fault-injection ("chaos") hook plus the invariant oracles, and the
//! pool's panic accounting.
//!
//! ```text
//! cargo run --release --example chaos_demo [seed]
//! ```
//!
//! The run shows the three pieces the README's harness section
//! describes: (1) a seeded chaos hook whose decision log replays
//! bit-for-bit from the seed, (2) a conserved-sum bank oracle checked
//! under injected protocol delays, and (3) a worker pool surviving —
//! and counting — panicking tasks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rubic::prelude::*;
use rubic_stm::chaos::{install, Decision, SeededChaos};
use rubic_suite::oracles::{ConservedSumBank, LockLeakDetector};

/// Runs a fixed transfer workload under chaos and returns the log.
fn chaos_run(seed: u64) -> Vec<Decision> {
    let stm = Stm::default();
    let bank = ConservedSumBank::new(8, 100);
    let hook = Arc::new(SeededChaos::new(seed));
    {
        let _guard = install(hook.clone());
        for i in 0..64usize {
            bank.transfer(&stm, i, i * 5 + 3, (i % 7) as i64);
        }
    }
    bank.check(&stm).expect("conserved-sum oracle");
    let mut leaks = LockLeakDetector::new();
    leaks.watch_all("account", bank.accounts());
    leaks.check().expect("lock-leak oracle");
    hook.decision_log()
}

/// A workload whose every 7th task panics.
struct Faulty(AtomicU64);
impl Workload for Faulty {
    type WorkerState = ();
    fn init_worker(&self, _tid: usize) {}
    fn run_task(&self, _state: &mut ()) {
        let n = self.0.fetch_add(1, Ordering::Relaxed);
        assert!(n % 7 != 2, "injected task failure");
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map_or(0xC0FFEE, |s| s.parse().expect("seed must be a u64"));

    println!("chaos seed {seed:#x}: 64 bank transfers under fault injection");
    let first = chaos_run(seed);
    let replay = chaos_run(seed);
    println!(
        "  {} hook decisions; replay identical: {}",
        first.len(),
        first == replay
    );
    for d in first.iter().take(5) {
        println!("    {:?} @ {:?} -> {:?}", d.stream, d.point, d.action);
    }
    println!("  oracles: conserved sum OK, no lock leaks");
    assert!(first == replay, "same seed must replay the same decisions");

    println!("\npanic accounting: every 7th task panics");
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence injected panics
    let pool = MalleablePool::start(
        PoolConfig::new(2)
            .initial_level(2)
            .monitor_period(Duration::from_millis(5))
            .name("chaos-demo"),
        Faulty(AtomicU64::new(0)),
        Box::new(Fixed::new(2, 2)),
    );
    std::thread::sleep(Duration::from_millis(100));
    let report = pool.stop();
    std::panic::set_hook(saved);
    println!(
        "  {} tasks completed, {} panics caught, {} stall warnings — clean join",
        report.total_tasks, report.worker_panics, report.stall_warnings
    );
    assert!(report.worker_panics > 0, "injected panics must be counted");
}
