//! Measure a real scalability curve and feed it back into the
//! simulator (the Fig. 1 / Fig. 6 loop, in vivo).
//!
//! ```text
//! cargo run --release --example scalability_sweep
//! ```
//!
//! Sweeps fixed thread counts over the Vacation workload on *this*
//! machine, prints the measured curve, then imports it into the
//! simulator as a `TableCurve` and asks: at how many threads would
//! RUBIC settle for a process with exactly this curve? This is the
//! workflow for reproducing the paper's figures on real measurements
//! instead of the fitted presets.

use std::sync::Arc;
use std::time::Duration;

use rubic::prelude::*;
use rubic::sim::curves::TableCurve;
use rubic::sim::{ProcessSpec, SimConfig};

fn main() {
    let hw = std::thread::available_parallelism().map_or(2, |n| n.get() as u32);
    let max_level = (hw * 2).max(4);
    let levels: Vec<u32> = (1..=max_level).collect();

    println!("sweeping Vacation at fixed levels 1..={max_level} (300 ms each)...");
    let workload = Arc::new(VacationWorkload::new(
        VacationConfig::low_contention(512),
        Stm::default(),
    ));
    let points = scalability_sweep(workload, &levels, Duration::from_millis(300));

    let t1 = points[0].1.max(1.0);
    println!("\n level  throughput  speed-up");
    let mut speedups = Vec::new();
    for (l, thr) in &points {
        let s = thr / t1;
        speedups.push(s);
        println!(
            " {l:>5}  {thr:>10.0}  {s:>8.2}  {}",
            "*".repeat((s * 8.0) as usize)
        );
    }

    // Feed the measured curve into the simulator and tune against it.
    let curve: rubic::sim::Curve = Arc::new(TableCurve::new(speedups, "measured-vacation"));
    let specs = [ProcessSpec::new("measured", curve, Policy::Rubic)];
    let mut cfg = SimConfig::paper(1).with_rounds(600);
    cfg.machine = Machine::with_contexts(hw);
    cfg.policy_cfg.hw_contexts = hw;
    cfg.policy_cfg.pool_size = max_level;
    let result = rubic::sim::run(&specs, &cfg);
    let settled = result.processes[0].trace.mean_level_in(300, 600);
    println!(
        "\nsimulated RUBIC on the measured curve settles at {settled:.1} threads \
         (machine: {hw} contexts)"
    );
    println!("note: on a single-core host the curve is flat, so ~1 thread is the right answer.");
}
