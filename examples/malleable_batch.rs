//! RUBIC beyond TM: tuning a *non-transactional* malleable batch job.
//!
//! ```text
//! cargo run --release --example malleable_batch
//! ```
//!
//! The paper's future-work section (§6) points out that RUBIC applies
//! to any malleable application with a measurable throughput. This
//! example runs a plain CPU-bound batch job — no transactions at all —
//! through the same malleable pool, with a task budget: the pool shuts
//! itself down when the batch completes, and RUBIC tunes the worker
//! count while it runs. Compare the finishing level against a Greedy
//! pool that insists on every hardware context.

use std::time::Duration;

use rubic::prelude::*;

/// A CPU-bound task: hash-mix a buffer for a fixed number of rounds.
#[derive(Clone)]
struct BatchJob {
    work_per_task: u64,
}

impl Workload for BatchJob {
    type WorkerState = u64;

    fn init_worker(&self, tid: usize) -> u64 {
        tid as u64
    }

    fn run_task(&self, seed: &mut u64) {
        let mut x = *seed | 1;
        for _ in 0..self.work_per_task {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        *seed = x;
        std::hint::black_box(x);
    }
}

fn run_batch(policy: Policy, tasks: u64) -> (String, RunReport) {
    let hw = std::thread::available_parallelism().map_or(4, |n| n.get() as u32);
    let pool_size = hw * 2;
    let spec_cfg = PolicyConfig {
        hw_contexts: hw,
        pool_size,
        ..PolicyConfig::paper(1)
    };
    let controller = policy.build(&spec_cfg);
    let pool = MalleablePool::start(
        PoolConfig::new(pool_size)
            .task_budget(tasks)
            .monitor_period(Duration::from_millis(10))
            .name(policy.label().to_lowercase()),
        BatchJob {
            work_per_task: 3_000,
        },
        controller,
    );
    pool.wait_budget_exhausted();
    (policy.label().to_string(), pool.stop())
}

fn main() {
    const TASKS: u64 = 200_000;
    println!("batch of {TASKS} hash tasks, tuned two ways:\n");
    for policy in [Policy::Rubic, Policy::Greedy] {
        let (name, report) = run_batch(policy, TASKS);
        println!("{name}:");
        println!("  wall time   : {:?}", report.elapsed);
        println!("  throughput  : {:.0} tasks/s", report.throughput());
        println!("  mean level  : {:.1} threads", report.trace.mean_level());
        let spread: Vec<String> = report
            .per_worker
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        println!("  per-worker  : [{}]", spread.join(", "));
        println!();
    }
    println!("RUBIC needs no a-priori knowledge of the job or the machine —");
    println!("it discovers a good level from the task completion rate alone.");
}
