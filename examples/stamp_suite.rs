//! Run the whole STAMP-style workload suite under RUBIC.
//!
//! ```text
//! cargo run --release --example stamp_suite
//! ```
//!
//! Every workload in the repository — the paper's three (red-black
//! tree, Vacation, Intruder) plus the extension ports (Labyrinth,
//! KMeans, Genome) and the two counter micros — tuned live by RUBIC for
//! half a second each, with throughput, chosen level, and STM abort
//! rate side by side. A compact tour of how differently the controller
//! treats workloads across the contention spectrum.

use std::time::Duration;

use rubic::prelude::*;
use rubic::workloads::genome::{GenomeConfig, GenomeWorkload};
use rubic::workloads::labyrinth::{LabyrinthConfig, LabyrinthWorkload};

struct Row {
    name: &'static str,
    throughput: f64,
    mean_level: f64,
    abort_pct: f64,
}

fn run_one<W: Workload>(name: &'static str, stm: Stm, workload: W, pool: u32) -> Row {
    let spec = TenantSpec::new(name, pool, Policy::Rubic).monitor_period(Duration::from_millis(8));
    let report = run_tenant(Tenant::new(spec, workload), Duration::from_millis(500));
    Row {
        name,
        throughput: report.throughput(),
        mean_level: report.mean_level(),
        abort_pct: stm.stats().abort_rate() * 100.0,
    }
}

fn main() {
    let pool = std::thread::available_parallelism().map_or(4, |n| n.get() as u32) * 2;
    println!("tuning each workload with RUBIC for 500 ms (pool = {pool})...\n");

    let mut rows = Vec::new();

    let stm = Stm::default();
    rows.push(run_one(
        "rbtree (98% lookup)",
        stm.clone(),
        RbTreeWorkload::new(RbTreeConfig::small(), stm),
        pool,
    ));

    let stm = Stm::default();
    rows.push(run_one(
        "rbtree (write-heavy)",
        stm.clone(),
        RbTreeWorkload::new(RbTreeConfig::small().with_mix(OpMix::write_heavy()), stm),
        pool,
    ));

    let stm = Stm::default();
    rows.push(run_one(
        "vacation (low)",
        stm.clone(),
        VacationWorkload::new(VacationConfig::low_contention(256), stm),
        pool,
    ));

    let stm = Stm::default();
    rows.push(run_one(
        "vacation (high)",
        stm.clone(),
        VacationWorkload::new(VacationConfig::high_contention(256), stm),
        pool,
    ));

    let stm = Stm::default();
    rows.push(run_one(
        "intruder",
        stm.clone(),
        IntruderWorkload::new(IntruderConfig::paper(), stm),
        pool,
    ));

    let stm = Stm::default();
    rows.push(run_one(
        "labyrinth",
        stm.clone(),
        LabyrinthWorkload::new(LabyrinthConfig::small(), stm),
        pool,
    ));

    let stm = Stm::default();
    rows.push(run_one(
        "kmeans (high)",
        stm.clone(),
        KMeansWorkload::new(KMeansConfig::high_contention(), stm),
        pool,
    ));

    let stm = Stm::default();
    rows.push(run_one(
        "genome",
        stm.clone(),
        GenomeWorkload::new(GenomeConfig::small(), stm),
        pool,
    ));

    let stm = Stm::default();
    rows.push(run_one(
        "conflict counter",
        stm.clone(),
        ConflictCounter::new(stm),
        pool,
    ));

    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "workload", "tasks/s", "mean level", "abort %"
    );
    for r in &rows {
        println!(
            "{:<22} {:>12.0} {:>12.1} {:>9.2}%",
            r.name, r.throughput, r.mean_level, r.abort_pct
        );
    }
    println!(
        "\nhigher-contention workloads should earn fewer threads and/or higher abort\n\
         rates; on a multi-core host the spread is much wider than on a single core."
    );
}
