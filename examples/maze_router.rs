//! Maze routing under adaptive parallelism (the Labyrinth workload).
//!
//! ```text
//! cargo run --release --example maze_router
//! ```
//!
//! Labyrinth is the coarse-conflict extreme: each task plans a path over
//! a grid snapshot and transactionally claims every cell, so two
//! concurrent overlapping routes collide and one replans. Watch RUBIC
//! keep the worker count low where a Greedy pool would burn cycles on
//! aborted claims, then inspect the abort-rate difference directly.

use std::sync::Arc;
use std::time::Duration;

use rubic::prelude::*;
use rubic::workloads::labyrinth::{LabyrinthConfig, LabyrinthWorkload};

fn run(policy: Policy) -> (String, f64, f64, u64, f64) {
    let stm = Stm::default();
    let workload = Arc::new(LabyrinthWorkload::new(
        LabyrinthConfig::small(),
        stm.clone(),
    ));
    let spec = TenantSpec::new(policy.label().to_lowercase(), 4, policy)
        .monitor_period(Duration::from_millis(5));
    let report = run_tenant(
        Tenant::new(spec, Arc::clone(&workload)),
        Duration::from_secs(1),
    );
    (
        policy.label().to_string(),
        report.throughput(),
        report.mean_level(),
        workload.routed(),
        stm.stats().abort_rate(),
    )
}

fn main() {
    println!("routing random pairs through a 32x32 maze for 1 second each:\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12}",
        "policy", "routes/s", "mean level", "routed", "abort rate"
    );
    for policy in [Policy::Rubic, Policy::Ebs, Policy::Greedy] {
        let (name, thr, level, routed, aborts) = run(policy);
        println!(
            "{name:<10} {thr:>12.0} {level:>12.1} {routed:>10} {:>11.1}%",
            aborts * 100.0
        );
    }
    println!(
        "\nplan-privately/claim-transactionally is STAMP Labyrinth's pattern; every\n\
         claimed route is verified disjoint (see crates/workloads/src/labyrinth.rs tests)."
    );
}
