//! Quickstart: tune a transactional workload's thread count online with
//! RUBIC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's red-black-tree micro-benchmark (98% look-ups) on
//! the bundled STM, wraps it in a malleable thread pool, and lets the
//! RUBIC controller pick the parallelism level every 10 ms. At the end
//! it prints the level trace the controller produced and the commit
//! statistics of the underlying STM.

use std::time::Duration;

use rubic::prelude::*;

fn main() {
    // 1. A software-transactional-memory runtime and a shared workload:
    //    a 512-element red-black tree hit with 98% look-ups / 2% updates.
    let stm = Stm::default();
    let workload = RbTreeWorkload::new(RbTreeConfig::small(), stm.clone());

    // 2. A tenant: a pool of workers whose *active* count is retuned by
    //    the RUBIC controller from the pool's own task commit-rate.
    let pool_size = std::thread::available_parallelism().map_or(4, |n| n.get() as u32) * 2;
    let spec = TenantSpec::new("rbtree-demo", pool_size, Policy::Rubic)
        .monitor_period(Duration::from_millis(10));

    println!("running {pool_size}-worker pool under RUBIC for 2 seconds...");
    let report = run_tenant(Tenant::new(spec, workload), Duration::from_secs(2));

    // 3. What happened.
    println!("\ntasks completed : {}", report.report.total_tasks);
    println!("mean throughput : {:.0} tasks/s", report.throughput());
    println!(
        "mean level      : {:.1} active threads",
        report.mean_level()
    );
    println!(
        "stm commits     : {} ({} aborts, abort rate {:.1}%)",
        stm.stats().commits(),
        stm.stats().aborts(),
        stm.stats().abort_rate() * 100.0
    );

    println!("\nlevel trace (one line per 100 ms):");
    for chunk in report.report.trace.points().chunks(10) {
        let levels: Vec<String> = chunk.iter().map(|p| format!("{:>3}", p.level)).collect();
        println!("  t={:>4}ms  {}", chunk[0].round * 10, levels.join(" "));
    }
}
