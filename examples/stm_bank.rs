//! Using the STM substrate directly: a concurrent bank with invariant
//! auditing.
//!
//! ```text
//! cargo run --release --example stm_bank
//! ```
//!
//! Demonstrates the `rubic-stm` public API on its own (no tuning):
//! transactional variables, composable multi-variable transactions,
//! read-only snapshot audits running concurrently with transfers, and
//! the commit/abort statistics. The audit must observe the invariant
//! (constant total balance) in *every* snapshot — that is the STM's
//! opacity guarantee at work.

use std::sync::Arc;

use rubic::prelude::*;

const ACCOUNTS: usize = 64;
const INITIAL: i64 = 1_000;
const TRANSFERS_PER_THREAD: usize = 20_000;
const THREADS: usize = 4;

fn main() {
    let stm = Stm::default();
    let accounts: Arc<Vec<TVar<i64>>> =
        Arc::new((0..ACCOUNTS).map(|_| TVar::new(INITIAL)).collect());
    let expected_total = (ACCOUNTS as i64) * INITIAL;

    // Transfer threads: move random amounts between random accounts.
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let stm = stm.clone();
        let accounts = Arc::clone(&accounts);
        handles.push(std::thread::spawn(move || {
            // Cheap xorshift so the example has no extra dependencies.
            let mut x: u64 = 0x9E37_79B9 ^ (t as u64) << 32 | 0x7F4A_7C15;
            let mut rng = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for _ in 0..TRANSFERS_PER_THREAD {
                let from = (rng() % ACCOUNTS as u64) as usize;
                // Distinct target: writing `from` twice in one transaction
                // would be read-your-writes-correct but a logic bug here
                // (the second write replaces the first, minting money).
                let to = (from + 1 + (rng() % (ACCOUNTS as u64 - 1)) as usize) % ACCOUNTS;
                let amount = (rng() % 100) as i64;
                stm.atomically(|tx| {
                    let a = tx.read(&accounts[from])?;
                    let b = tx.read(&accounts[to])?;
                    tx.write(&accounts[from], a - amount)?;
                    tx.write(&accounts[to], b + amount)?;
                    Ok(())
                });
            }
        }));
    }

    // Auditor thread: read-only snapshot of the whole bank, repeatedly.
    let auditor = {
        let stm = stm.clone();
        let accounts = Arc::clone(&accounts);
        std::thread::spawn(move || {
            let mut audits = 0u64;
            for _ in 0..500 {
                let total = stm.read_only(|tx| {
                    let mut sum = 0i64;
                    for acc in accounts.iter() {
                        sum += tx.read(acc)?;
                    }
                    Ok(sum)
                });
                assert_eq!(
                    total, expected_total,
                    "audit saw a torn state — STM opacity violated!"
                );
                audits += 1;
            }
            audits
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    let audits = auditor.join().unwrap();

    let final_total: i64 = accounts.iter().map(TVar::snapshot).sum();
    println!(
        "{} transfers across {THREADS} threads, {audits} concurrent audits",
        THREADS * TRANSFERS_PER_THREAD
    );
    println!("final total: {final_total} (expected {expected_total})");
    assert_eq!(final_total, expected_total);
    println!(
        "stm: {} commits, {} aborts (abort rate {:.2}%), contention manager: {}",
        stm.stats().commits(),
        stm.stats().aborts(),
        stm.stats().abort_rate() * 100.0,
        stm.contention_manager()
    );
    println!("every audit observed the invariant — opacity held.");
}
