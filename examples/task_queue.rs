//! Finite task-queue mode: drain a job queue through the malleable
//! pool (the paper's "picks a new task from a task queue, until all
//! tasks have been completed" execution style).
//!
//! ```text
//! cargo run --release --example task_queue
//! ```
//!
//! A producer streams 50 000 hashing jobs into a bounded channel; the
//! pool's workers drain it while RUBIC tunes how many of them are
//! active. The pool stops itself when the queue reports drained.

use std::time::{Duration, Instant};

use rubic::prelude::*;
use rubic::runtime::queue::ChannelWorkload;

const JOBS: u64 = 50_000;

fn main() {
    let hw = std::thread::available_parallelism().map_or(2, |n| n.get() as u32);
    let pool_size = hw * 2;

    let (workload, sender) = ChannelWorkload::new(256, |job: u64| {
        // A few microseconds of real work per job.
        let mut x = job | 1;
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        std::hint::black_box(x);
    });
    let handle = workload.handle();

    let cfg = PolicyConfig {
        hw_contexts: hw,
        pool_size,
        ..PolicyConfig::paper(1)
    };
    let pool = MalleablePool::start(
        PoolConfig::new(pool_size)
            .monitor_period(Duration::from_millis(10))
            .name("queue-demo"),
        workload,
        Policy::Rubic.build(&cfg),
    );

    println!("streaming {JOBS} jobs through a {pool_size}-worker malleable pool...");
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for job in 0..JOBS {
            sender.send(job).expect("pool hung up early");
        }
        // Dropping the sender closes the queue.
    });
    producer.join().expect("producer panicked");
    handle.wait_drained();
    let elapsed = start.elapsed();
    let report = pool.stop();

    println!("\ndrained {} jobs in {elapsed:?}", handle.processed());
    println!(
        "effective rate : {:.0} jobs/s",
        handle.processed() as f64 / elapsed.as_secs_f64()
    );
    println!(
        "mean level     : {:.1} active workers",
        report.trace.mean_level()
    );
    println!("\nlevel trace over the drain:");
    for chunk in report.trace.points().chunks(10) {
        let levels: Vec<String> = chunk.iter().map(|p| format!("{:>3}", p.level)).collect();
        println!("  t={:>4}ms  {}", chunk[0].round * 10, levels.join(" "));
    }
    assert_eq!(handle.processed(), JOBS);
}
