//! Reproduce the paper's simulated evaluation interactively.
//!
//! ```text
//! cargo run --release --example paper_experiments
//! ```
//!
//! Runs a condensed version of Section 4's evaluation on the
//! 64-context machine model: the three pairwise co-location
//! experiments for all five policies (Fig. 7), and the §4.6
//! convergence scenario (Fig. 10) with an ASCII rendering of the level
//! traces. The full-resolution regenerators (50 repetitions, CSV
//! output) live in the `figures` binary of `rubic-bench`; this example
//! shows how to drive the same machinery from the public API.

use rubic::prelude::*;
use rubic::sim::{pairwise_experiments, ProcessSpec, SimConfig};

fn main() {
    let reps = 10;
    println!("=== Pairwise co-location (Fig. 7a), {reps} repetitions ===");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "policy", "Int/Vac", "Int/RBT", "Vac/RBT", "GeoAvg"
    );
    for policy in Policy::EVALUATED {
        let outcomes = pairwise_experiments(policy, reps);
        let nash: Vec<f64> = outcomes.iter().map(|(_, o)| o.nash.mean()).collect();
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            policy.label(),
            nash[0],
            nash[1],
            nash[2],
            geometric_mean(&nash)
        );
    }
    println!("(higher is better: the Nash product of the two processes' speed-ups)");

    println!("\n=== Convergence after a late arrival (Fig. 10) ===");
    println!("Two conflict-free processes; P2 arrives at t = 5s; fair split = 32/32.\n");
    for policy in [Policy::F2c2, Policy::Ebs, Policy::Rubic] {
        let specs = [
            ProcessSpec::new("P1", curves::rbt_readonly(), policy),
            ProcessSpec::new("P2", curves::rbt_readonly(), policy).arrives_at(500),
        ];
        let cfg = SimConfig::paper(2).with_noise(0.02, 2016);
        let result = rubic::sim::run(&specs, &cfg);
        let p1 = &result.processes[0].trace;
        let p2 = &result.processes[1].trace;
        println!("--- {} ---", policy.label());
        // One sample every 500 ms, drawn as bars scaled to 64 = 32 chars.
        println!("      t     P1  P2   (each # = 4 threads; | marks 64)");
        for round in (0..1000).step_by(50) {
            let l1 = p1
                .points()
                .iter()
                .find(|p| p.round == round)
                .map_or(0, |p| p.level);
            let l2 = p2
                .points()
                .iter()
                .find(|p| p.round == round)
                .map_or(0, |p| p.level);
            let bar = |l: u32| {
                let n = (l as usize).div_ceil(4);
                let mut s = "#".repeat(n.min(16));
                if l > 64 {
                    s.push('!');
                }
                s
            };
            println!(
                "  {:>5}ms {:>3} {:>3}  P1 {:<17} P2 {}",
                round * 10,
                l1,
                l2,
                bar(l1),
                bar(l2)
            );
        }
        println!(
            "  post-arrival means (8-10s): P1 {:.1}, P2 {:.1}\n",
            p1.mean_level_in(800, 1000),
            p2.mean_level_in(800, 1000)
        );
    }
}
