//! Co-located tenants: the paper's multi-process scenario, in vivo.
//!
//! ```text
//! cargo run --release --example colocated_tenants
//! ```
//!
//! Two TM applications with very different scalability — the Intruder
//! network-intrusion pipeline (conflict-heavy) and the red-black-tree
//! micro-benchmark (read-mostly) — share this machine for three
//! seconds. Each tenant runs its own RUBIC controller with **zero
//! knowledge of the other**: the space-sharing that emerges comes
//! entirely from each controller reacting to its own throughput, which
//! is the paper's central claim (§1, §4.6).
//!
//! The intruder tenant arrives one second late, so you can watch the
//! incumbent yield capacity when the newcomer shows up.

use std::time::Duration;

use rubic::prelude::*;

fn main() {
    let pool_size = std::thread::available_parallelism().map_or(4, |n| n.get() as u32) * 2;
    let period = Duration::from_millis(10);

    // Tenant 1: the read-mostly red-black tree, present from the start.
    let rbt_stm = Stm::default();
    let rbt = RbTreeWorkload::new(RbTreeConfig::small(), rbt_stm.clone());

    // Tenant 2: Intruder, arriving at t = 1 s. Kept behind an Arc so we
    // can read its pipeline statistics after the run (`Workload` is
    // implemented for `Arc<W>`).
    let intruder_stm = Stm::default();
    let intruder = std::sync::Arc::new(IntruderWorkload::new(
        IntruderConfig::paper(),
        intruder_stm.clone(),
    ));

    println!("co-locating rbtree (t=0) and intruder (t=1s) for 3s, both under RUBIC...");
    let report = Colocation::new(Duration::from_secs(3))
        .tenant(Tenant::new(
            TenantSpec::new("rbtree", pool_size, Policy::Rubic).monitor_period(period),
            rbt,
        ))
        .tenant(Tenant::new(
            TenantSpec::new("intruder", pool_size, Policy::Rubic)
                .monitor_period(period)
                .arrives_after(Duration::from_secs(1)),
            std::sync::Arc::clone(&intruder),
        ))
        .run();

    for tenant in &report.tenants {
        println!("\n{} (arrived at {:?}):", tenant.name, tenant.arrival);
        println!("  tasks      : {}", tenant.report.total_tasks);
        println!("  throughput : {:.0} tasks/s", tenant.throughput());
        println!("  mean level : {:.1} threads", tenant.mean_level());
    }

    println!(
        "\nintruder pipeline: {} flows reassembled, {} attacks detected",
        intruder.flows_completed(),
        intruder.attacks_found()
    );
    println!(
        "stm commit rates: rbtree {} commits ({:.1}% aborts), intruder {} commits ({:.1}% aborts)",
        rbt_stm.stats().commits(),
        rbt_stm.stats().abort_rate() * 100.0,
        intruder_stm.stats().commits(),
        intruder_stm.stats().abort_rate() * 100.0
    );

    println!("\ntotal active threads over time (100 ms grid):");
    for (t, total) in report.total_threads_series(Duration::from_millis(100)) {
        println!(
            "  t={:>5}ms  {:>3} threads  {}",
            t.as_millis(),
            total,
            "#".repeat(total as usize)
        );
    }
}
