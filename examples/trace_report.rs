//! End-to-end observability demo: two STAMP-style tenants (Vacation +
//! Intruder) co-located under RUBIC with a trace session recording the
//! whole stack, then a report with abort attribution, latency
//! quantiles, the parallelism-level timeline, and two export files:
//!
//! * `trace_report.jsonl` — one JSON object per event,
//! * `trace_report.chrome.json` — load in Perfetto / `chrome://tracing`.
//!
//! Run with `cargo run --release --features trace --example trace_report`.
//! Pass `--smoke` (or set `TRACE_REPORT_SMOKE=1`) for a ~1 s run, as CI
//! does.

use std::sync::Arc;
use std::time::Duration;

use rubic::prelude::*;
use rubic::stm::AbortReason;
use rubic::trace::{TraceConfig, TraceSession};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("TRACE_REPORT_SMOKE").is_ok_and(|v| v != "0");
    let run_for = if smoke {
        Duration::from_millis(1_000)
    } else {
        Duration::from_millis(3_000)
    };
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZero::get) as u32;
    let pool = (hw * 2).max(4);

    // Each tenant gets its own STM instance — separate processes in the
    // paper, separate commit clocks here.
    let stm_vac = Stm::default();
    let vac = Arc::new(VacationWorkload::new(
        VacationConfig::high_contention(64),
        stm_vac.clone(),
    ));
    let stm_intr = Stm::default();
    let intr = Arc::new(IntruderWorkload::new(
        IntruderConfig::small(),
        stm_intr.clone(),
    ));

    let vac_before = stm_vac.stats().snapshot();
    let intr_before = stm_intr.stats().snapshot();

    println!(
        "tracing Vacation + Intruder under RUBIC for {:.1}s (pool = {pool} each) ...",
        run_for.as_secs_f64()
    );
    let session = TraceSession::start(TraceConfig::default());

    let monitor = Duration::from_millis(10);
    let vac_handle = {
        let vac = Arc::clone(&vac);
        std::thread::spawn(move || {
            let spec = TenantSpec::new("vacation", pool, Policy::Rubic).monitor_period(monitor);
            run_tenant(Tenant::new(spec, vac), run_for)
        })
    };
    let intr_handle = {
        let intr = Arc::clone(&intr);
        std::thread::spawn(move || {
            let spec = TenantSpec::new("intruder", pool, Policy::Rubic).monitor_period(monitor);
            run_tenant(Tenant::new(spec, intr), run_for)
        })
    };
    let vac_report = vac_handle.join().expect("vacation tenant panicked");
    let intr_report = intr_handle.join().expect("intruder tenant panicked");

    let report = session.finish();

    let vac_delta = stm_vac.stats().snapshot().delta_since(&vac_before);
    let intr_delta = stm_intr.stats().snapshot().delta_since(&intr_before);

    println!();
    for t in [&vac_report, &intr_report] {
        println!(
            "tenant {:<10} {:>10.0} tasks/s  mean level {:>5.2}  pool aborts {}",
            t.name,
            t.throughput(),
            t.mean_level(),
            t.report.total_aborts
        );
    }
    println!();
    print!("{}", report.summary());

    // Cross-check: the trace's abort-reason breakdown must account for
    // exactly the aborts the two STM instances counted, reason by
    // reason (ring overflow would show up as `dropped`, so only assert
    // when nothing was dropped).
    let stm_total = vac_delta.aborts + intr_delta.aborts;
    println!();
    println!(
        "cross-check: trace saw {} aborts, STM stats counted {} (dropped events: {})",
        report.total_aborts(),
        stm_total,
        report.dropped
    );
    if report.dropped == 0 {
        assert_eq!(
            report.total_aborts(),
            stm_total,
            "trace abort breakdown must sum to the STM stats total"
        );
        for reason in AbortReason::ALL {
            let idx = reason.code() as usize;
            let stats_n = vac_delta.abort_reasons[idx] + intr_delta.abort_reasons[idx];
            assert_eq!(
                report.abort_breakdown[idx],
                stats_n,
                "per-reason mismatch for {}",
                reason.name()
            );
        }
        println!("cross-check OK: per-reason counts match the STM stats exactly");
    }

    let jsonl = report.to_jsonl();
    let chrome = report.to_chrome_trace();
    std::fs::write("trace_report.jsonl", &jsonl).expect("write trace_report.jsonl");
    std::fs::write("trace_report.chrome.json", &chrome).expect("write trace_report.chrome.json");
    println!();
    println!(
        "wrote trace_report.jsonl ({} events) and trace_report.chrome.json ({} bytes)",
        report.events.len(),
        chrome.len()
    );
    println!("open trace_report.chrome.json at https://ui.perfetto.dev or chrome://tracing");
}
