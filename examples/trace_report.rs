//! End-to-end observability demo: two STAMP-style tenants (Vacation +
//! Intruder) co-located under RUBIC with a trace session recording the
//! whole stack, then a report with abort attribution, latency
//! quantiles, the parallelism-level timeline, and two export files:
//!
//! * `trace_report.jsonl` — one JSON object per event,
//! * `trace_report.chrome.json` — load in Perfetto / `chrome://tracing`.
//!
//! Run with `cargo run --release --features trace --example trace_report`.
//! Pass `--smoke` (or set `TRACE_REPORT_SMOKE=1`) for a ~1 s run, as CI
//! does. Pass `--storm [DIR]` (needs `--features trace,chaos`) to
//! instead inject an abort storm and validate the anomaly-triggered
//! post-mortem bundle end-to-end; the process exits non-zero if the
//! bundle is missing, unparsable, or fails to name the culprit TVar.

use std::sync::Arc;
use std::time::Duration;

use rubic::prelude::*;
use rubic::stm::AbortReason;
use rubic::trace::{TraceConfig, TraceSession};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--storm") {
        let dir = args
            .get(pos + 1)
            .filter(|a| !a.starts_with("--"))
            .map_or_else(|| "trace_storm_out".to_string(), Clone::clone);
        storm_postmortem(std::path::Path::new(&dir));
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("TRACE_REPORT_SMOKE").is_ok_and(|v| v != "0");
    let run_for = if smoke {
        Duration::from_millis(1_000)
    } else {
        Duration::from_millis(3_000)
    };
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZero::get) as u32;
    let pool = (hw * 2).max(4);

    // Each tenant gets its own STM instance — separate processes in the
    // paper, separate commit clocks here.
    let stm_vac = Stm::default();
    let vac = Arc::new(VacationWorkload::new(
        VacationConfig::high_contention(64),
        stm_vac.clone(),
    ));
    let stm_intr = Stm::default();
    let intr = Arc::new(IntruderWorkload::new(
        IntruderConfig::small(),
        stm_intr.clone(),
    ));

    let vac_before = stm_vac.stats().snapshot();
    let intr_before = stm_intr.stats().snapshot();

    println!(
        "tracing Vacation + Intruder under RUBIC for {:.1}s (pool = {pool} each) ...",
        run_for.as_secs_f64()
    );
    let session = TraceSession::start(TraceConfig::default());

    let monitor = Duration::from_millis(10);
    let vac_handle = {
        let vac = Arc::clone(&vac);
        std::thread::spawn(move || {
            let spec = TenantSpec::new("vacation", pool, Policy::Rubic).monitor_period(monitor);
            run_tenant(Tenant::new(spec, vac), run_for)
        })
    };
    let intr_handle = {
        let intr = Arc::clone(&intr);
        std::thread::spawn(move || {
            let spec = TenantSpec::new("intruder", pool, Policy::Rubic).monitor_period(monitor);
            run_tenant(Tenant::new(spec, intr), run_for)
        })
    };
    let vac_report = vac_handle.join().expect("vacation tenant panicked");
    let intr_report = intr_handle.join().expect("intruder tenant panicked");

    let report = session.finish();

    let vac_delta = stm_vac.stats().snapshot().delta_since(&vac_before);
    let intr_delta = stm_intr.stats().snapshot().delta_since(&intr_before);

    println!();
    for t in [&vac_report, &intr_report] {
        println!(
            "tenant {:<10} {:>10.0} tasks/s  mean level {:>5.2}  pool aborts {}",
            t.name,
            t.throughput(),
            t.mean_level(),
            t.report.total_aborts
        );
    }
    println!();
    print!("{}", report.summary());

    // Cross-check: the trace's abort-reason breakdown must account for
    // exactly the aborts the two STM instances counted, reason by
    // reason (ring overflow would show up as `dropped`, so only assert
    // when nothing was dropped).
    let stm_total = vac_delta.aborts + intr_delta.aborts;
    println!();
    println!(
        "cross-check: trace saw {} aborts, STM stats counted {} (dropped events: {})",
        report.total_aborts(),
        stm_total,
        report.dropped
    );
    if report.dropped == 0 {
        assert_eq!(
            report.total_aborts(),
            stm_total,
            "trace abort breakdown must sum to the STM stats total"
        );
        for reason in AbortReason::ALL {
            let idx = reason.code() as usize;
            let stats_n = vac_delta.abort_reasons[idx] + intr_delta.abort_reasons[idx];
            assert_eq!(
                report.abort_breakdown[idx],
                stats_n,
                "per-reason mismatch for {}",
                reason.name()
            );
        }
        println!("cross-check OK: per-reason counts match the STM stats exactly");
    }

    let jsonl = report.to_jsonl();
    let chrome = report.to_chrome_trace();
    std::fs::write("trace_report.jsonl", &jsonl).expect("write trace_report.jsonl");
    std::fs::write("trace_report.chrome.json", &chrome).expect("write trace_report.chrome.json");
    println!();
    println!(
        "wrote trace_report.jsonl ({} events) and trace_report.chrome.json ({} bytes)",
        report.events.len(),
        chrome.len()
    );
    println!("open trace_report.chrome.json at https://ui.perfetto.dev or chrome://tracing");
}

/// `--storm DIR`: inject an abort storm on one labelled `TVar`, raise
/// the abort-storm anomaly (the same request the runtime's stall
/// watchdog issues), and validate the auto-dumped post-mortem bundle —
/// every file present, JSON structurally sound, and the contention
/// table naming the deliberately contended variable as top culprit.
/// Any failed check panics, so CI can gate on the exit status.
#[cfg(feature = "chaos")]
fn storm_postmortem(dir: &std::path::Path) {
    use rubic::stm::chaos::{install, SeededChaos};
    use rubic::trace::codes;

    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create storm output dir");

    let stm = Stm::default();
    let hot = TVar::labelled(0u64, "storm-cell");
    let before = stm.stats().snapshot();

    let session = TraceSession::start(TraceConfig {
        postmortem_dir: Some(dir.to_path_buf()),
        drain_period: Duration::from_millis(2),
        manifest: vec![("mode".into(), "storm-smoke".into())],
        ..TraceConfig::default()
    });

    // Injected one-in-3 kills guarantee a storm even on a single-CPU
    // runner that serialises the threads; the four threads add real
    // lock-busy and validation conflicts on top.
    println!("injecting abort storm on \"storm-cell\" (4 threads x 300 increments) ...");
    let hook = Arc::new(SeededChaos::with_abort_one_in(0x57_0431, 3));
    {
        let _chaos = install(hook);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..300u32 {
                        stm.atomically(|tx| tx.modify(&hot, |x| x + 1));
                    }
                });
            }
        });
    }
    rubic::trace::request_postmortem(codes::ANOMALY_ABORT_STORM);
    std::thread::sleep(Duration::from_millis(50));
    let report = session.finish();
    let delta = stm.stats().snapshot().delta_since(&before);

    assert_eq!(hot.snapshot(), 4 * 300, "every increment must commit");
    assert!(delta.aborts > 0, "one-in-3 kills must abort some attempts");

    // Exactly one bundle, named after the trigger.
    let mut bundles: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("read storm output dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("postmortem-"))
        })
        .collect();
    bundles.sort();
    assert_eq!(
        bundles.len(),
        1,
        "exactly one auto-dumped bundle: {bundles:?}"
    );
    let bundle = &bundles[0];
    assert!(
        bundle
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains("abort-storm")),
        "trigger name in {}",
        bundle.display()
    );

    // Every file of the schema present and structurally valid JSON.
    let read = |name: &str| {
        let path = bundle.join(name);
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    };
    let balanced = |text: &str, name: &str| {
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces in {name}"
        );
        assert_eq!(
            text.matches('[').count(),
            text.matches(']').count(),
            "unbalanced brackets in {name}"
        );
    };
    let manifest = read("manifest.json");
    assert!(
        manifest.contains(rubic::trace::BUNDLE_SCHEMA),
        "schema tag missing"
    );
    assert!(
        manifest.contains("abort-storm"),
        "trigger missing from manifest"
    );
    assert!(
        manifest.contains("storm-smoke"),
        "config manifest extras missing"
    );
    balanced(&manifest, "manifest.json");
    for name in ["histograms.json", "contention.json", "snapshot.json"] {
        balanced(&read(name), name);
    }
    for name in ["events.jsonl", "decisions.jsonl"] {
        for line in read(name).lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "malformed {name} line: {line}"
            );
        }
    }

    // The culprit: top of the contention table, by identity and label,
    // in both the in-memory report and the dumped bundle.
    let top = report
        .contention
        .first()
        .expect("aborts happened, so the contention table cannot be empty");
    assert_eq!(top.addr, hot.lock_addr() as u64, "top culprit identity");
    assert_eq!(
        top.label.as_deref(),
        Some("storm-cell"),
        "top culprit label"
    );
    assert!(
        read("contention.json").contains("storm-cell"),
        "culprit not in bundle"
    );

    println!(
        "storm post-mortem OK: {} names culprit \"storm-cell\" ({} of {} aborts attributed)",
        bundle.display(),
        top.count,
        delta.aborts
    );
}

#[cfg(not(feature = "chaos"))]
fn storm_postmortem(_dir: &std::path::Path) {
    eprintln!("--storm needs fault injection: rebuild with --features trace,chaos");
    std::process::exit(2);
}
