//! R1–R5 parity proof: the historical line-based lint (embedded below,
//! verbatim except for field visibility) and the token-based re-host in
//! `rubic-analyze` must agree — on the real workspace (both clean, same
//! file set) and rule-by-rule on adversarial snippets. This is the
//! contract that let `xtask lint` become a thin shim without changing
//! what CI enforces.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}

/// The historical implementation, frozen. Rule semantics, windows,
/// escapes, and file scope are exactly what `xtask lint` shipped with.
mod legacy {
    use std::fmt;
    use std::path::{Path, PathBuf};

    const COMMENT_WINDOW: usize = 10;
    const FACADE_CRATES: [&str; 2] = ["crates/sync", "crates/check"];
    const HOT_PATH_FILES: [&str; 6] = [
        "crates/stm/src/txn.rs",
        "crates/stm/src/vlock.rs",
        "crates/stm/src/clock.rs",
        "crates/stm/src/tvar.rs",
        "crates/stm/src/index.rs",
        "crates/stm/src/snap.rs",
    ];

    pub struct Violation {
        pub file: PathBuf,
        pub line: usize,
        pub rule: &'static str,
        pub message: String,
    }

    impl fmt::Display for Violation {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file.display(),
                self.line,
                self.rule,
                self.message
            )
        }
    }

    #[derive(Default)]
    pub struct Stats {
        pub files: usize,
        pub ordering_sites: usize,
        pub unsafe_blocks: usize,
    }

    pub fn run(root: &Path) -> Result<Stats, Vec<Violation>> {
        let mut files = Vec::new();
        for dir in ["crates", "suite"] {
            collect_rs(&root.join(dir), &mut files);
        }
        files.sort();

        let mut stats = Stats::default();
        let mut violations = Vec::new();
        for file in files {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            stats.files += 1;
            lint_file(&rel, &text, &mut stats, &mut violations);
        }
        if violations.is_empty() {
            Ok(stats)
        } else {
            Err(violations)
        }
    }

    fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if name == "tests" || name == "benches" || name == "examples" || name == "target" {
                    continue;
                }
                collect_rs(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }

    fn rel_starts_with(rel: &Path, prefix: &str) -> bool {
        let mut comps = rel.components();
        prefix
            .split('/')
            .all(|p| comps.next().is_some_and(|c| c.as_os_str() == p))
    }

    fn test_tail_start(lines: &[&str]) -> usize {
        for (i, l) in lines.iter().enumerate() {
            let t = l.trim_start();
            if t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test") {
                let next_item = lines[i + 1..]
                    .iter()
                    .map(|l| l.trim_start())
                    .find(|t| !t.is_empty() && !t.starts_with("#["));
                if next_item.is_some_and(|t| t.starts_with("mod ") || t.starts_with("pub mod ")) {
                    return i;
                }
            }
        }
        lines.len()
    }

    fn comment_nearby(lines: &[&str], idx: usize, needle: &str, window: usize) -> bool {
        let lo = idx.saturating_sub(window);
        lines[lo..=idx]
            .iter()
            .any(|l| l.find("//").is_some_and(|pos| l[pos..].contains(needle)))
    }

    fn code_portion(line: &str) -> String {
        let mut out = String::with_capacity(line.len());
        let mut chars = line.chars().peekable();
        let mut in_str = false;
        while let Some(c) = chars.next() {
            if in_str {
                if c == '\\' {
                    chars.next();
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '/' if chars.peek() == Some(&'/') => break,
                _ => out.push(c),
            }
        }
        out
    }

    pub fn lint_file(rel: &Path, text: &str, stats: &mut Stats, out: &mut Vec<Violation>) {
        let lines: Vec<&str> = text.lines().collect();
        let tail = test_tail_start(&lines);
        let facade_exempt = FACADE_CRATES.iter().any(|c| rel_starts_with(rel, c));
        let hot_path = HOT_PATH_FILES.iter().any(|f| rel_starts_with(rel, f));

        for (i, raw) in lines.iter().enumerate().take(tail) {
            let lineno = i + 1;
            let code = code_portion(raw);
            if code.trim().is_empty() {
                continue;
            }

            if !facade_exempt
                && !raw.contains("lint: allow-std-sync")
                && (code.contains("std::sync::atomic")
                    || code.contains("std::sync::Mutex")
                    || code.contains("std::sync::RwLock")
                    || code.contains("std::sync::Condvar")
                    || code.contains("std::thread")
                    || code.contains("parking_lot::")
                    || code.contains("use parking_lot"))
            {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "R1",
                    message: "direct sync primitive".into(),
                });
            }

            if !facade_exempt && (code.contains("SeqCst") || code.contains("Relaxed")) {
                stats.ordering_sites += 1;
                if !raw.contains("lint: allow-ordering")
                    && !comment_nearby(&lines, i, "ordering:", COMMENT_WINDOW)
                {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: lineno,
                        rule: "R2",
                        message: "SeqCst/Relaxed without justification".into(),
                    });
                }
            }

            if code.contains("unsafe")
                && !code.contains("unsafe_code")
                && !code.contains("unsafe_op_in_unsafe_fn")
            {
                stats.unsafe_blocks += 1;
                if !raw.contains("lint: allow-unsafe")
                    && !comment_nearby(&lines, i, "SAFETY:", COMMENT_WINDOW)
                {
                    out.push(Violation {
                        file: rel.to_path_buf(),
                        line: lineno,
                        rule: "R3",
                        message: "`unsafe` without SAFETY".into(),
                    });
                }
            }

            if hot_path && code.contains("Instant::now") && !raw.contains("lint: allow-instant") {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "R4",
                    message: "Instant::now() on the hot path".into(),
                });
            }

            if !facade_exempt
                && code.contains("fence(")
                && !code.contains("SeqCst")
                && !code.contains("Relaxed")
                && !raw.contains("lint: allow-ordering")
                && !comment_nearby(&lines, i, "ordering:", COMMENT_WINDOW)
            {
                stats.ordering_sites += 1;
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "R5",
                    message: "fence without justification".into(),
                });
            }
        }
    }
}

/// (rule, line) verdicts from the legacy lint for one snippet.
fn legacy_verdicts(rel: &str, src: &str) -> BTreeSet<(String, u32)> {
    let mut stats = legacy::Stats::default();
    let mut out = Vec::new();
    legacy::lint_file(Path::new(rel), src, &mut stats, &mut out);
    out.iter()
        .map(|v| (v.rule.to_string(), u32::try_from(v.line).unwrap()))
        .collect()
}

/// (rule, line) verdicts from the token-based re-host for one snippet.
fn rehost_verdicts(rel: &str, src: &str) -> BTreeSet<(String, u32)> {
    let lexed = rubic_analyze::lexer::lex(src);
    let mut stats = rubic_analyze::report::Stats::default();
    let mut out = Vec::new();
    rubic_analyze::passes::lexical::check_file(Path::new(rel), &lexed, &mut stats, &mut out);
    out.iter()
        .map(|f| (f.rule.id().to_string(), f.line))
        .collect()
}

/// Both implementations, full tree: identical clean verdicts over the
/// identical file set.
#[test]
fn tree_wide_verdicts_agree() {
    let root = workspace_root();
    let legacy = legacy::run(&root);
    let rehost = rubic_analyze::analyze_lexical(&root);

    let legacy_stats = match legacy {
        Ok(stats) => stats,
        Err(v) => panic!(
            "legacy lint found violations:\n{}",
            v.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        ),
    };
    assert!(
        rehost.findings.is_empty(),
        "re-hosted lint found violations:\n{}",
        rehost
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(legacy_stats.files, rehost.stats.files, "file sets differ");
}

/// Rule-by-rule agreement on adversarial snippets: every rule firing,
/// every escape, the facade/hot-path scoping, and the test-tail
/// exemption.
#[test]
fn snippet_verdicts_agree() {
    let cases: &[(&str, &str)] = &[
        ("crates/stm/src/x.rs", "use std::sync::Mutex;\n"),
        ("crates/stm/src/x.rs", "use parking_lot::Mutex;\n"),
        ("crates/sync/src/lib.rs", "use std::sync::Mutex;\nlet x = a.load(Ordering::SeqCst);\n"),
        ("crates/runtime/src/x.rs", "let x = a.load(Ordering::SeqCst);\n"),
        (
            "crates/runtime/src/x.rs",
            "// ordering: total order with producer increments\nlet x = a.load(Ordering::SeqCst);\n",
        ),
        ("crates/runtime/src/x.rs", "let x = a.load(Ordering::Relaxed); // ordering: stat counter\n"),
        ("crates/runtime/src/x.rs", "let x = a.load(Ordering::Acquire);\na.store(1, Ordering::Release);\n"),
        ("crates/stm/src/x.rs", "let p = unsafe { *ptr };\n"),
        (
            "crates/stm/src/x.rs",
            "// SAFETY: ptr is valid for the guard's lifetime\nlet p = unsafe { *ptr };\n",
        ),
        ("crates/stm/src/vlock.rs", "let t = Instant::now();\n"),
        ("crates/stm/src/stats.rs", "let t = Instant::now();\n"),
        ("crates/stm/src/snap.rs", "fence(Ordering::AcqRel);\n"),
        ("crates/stm/src/snap.rs", "fence(Ordering::SeqCst);\n"),
        (
            "crates/stm/src/snap.rs",
            "// ordering: pairs the slot store with the clock re-read\nfence(Ordering::AcqRel);\n",
        ),
        ("crates/check/src/x.rs", "fence(Ordering::AcqRel);\n"),
        (
            "crates/stm/src/x.rs",
            "use std::sync::Mutex; // lint: allow-std-sync — poison fixture\n\
             let x = a.load(Ordering::SeqCst); // lint: allow-ordering\n",
        ),
        ("crates/stm/src/x.rs", "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n"),
        ("crates/stm/src/x.rs", "#[cfg(test)]\nfn helper() {}\nuse std::sync::Mutex;\n"),
        ("crates/stm/src/x.rs", "// std::sync::Mutex is banned here\nlet s = \"no unsafe here\";\n"),
    ];
    for (rel, src) in cases {
        assert_eq!(
            legacy_verdicts(rel, src),
            rehost_verdicts(rel, src),
            "verdicts diverge on {rel}:\n{src}"
        );
    }
}
