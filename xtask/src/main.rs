//! Workspace automation.
//!
//! * `cargo xtask analyze [--json [FILE]]` — full static analysis
//!   (transaction purity A1, feature-gate integrity A2, trace-schema
//!   consistency A3, plus the R1–R5 hygiene rules). Exits non-zero on
//!   any finding. `--json` writes the machine-readable report
//!   (`rubic-analyze/v1`) to FILE, or stdout when FILE is omitted.
//! * `cargo xtask lint` — the historical R1–R5 subset only (kept for
//!   muscle memory and pre-push hooks; `analyze` is a superset).

mod lint;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => analyze(&mut args),
        Some("lint") => {
            let root = workspace_root();
            match lint::run(&root) {
                Ok(stats) => {
                    println!(
                        "xtask lint: OK ({} files, {} ordering sites, {} unsafe blocks checked)",
                        stats.files, stats.ordering_sites, stats.unsafe_blocks
                    );
                }
                Err(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!("xtask lint: {} violation(s)", violations.len());
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask <command>\n\ncommands:\n  analyze  full static analysis \
                 (txn purity, feature gates, trace schema, hygiene rules)\n           \
                 options: --json [FILE] machine-readable report\n  lint     the R1-R5 hygiene \
                 subset only (analyze is a superset)"
            );
            if let Some(o) = other {
                eprintln!("\nunknown command: {o}");
            }
            std::process::exit(2);
        }
    }
}

/// `cargo xtask analyze`: run every pass, report, and gate.
fn analyze(args: &mut impl Iterator<Item = String>) {
    let mut json_to: Option<Option<String>> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_to = Some(args.next()),
            other => {
                eprintln!("xtask analyze: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let root = workspace_root();
    let rep = rubic_analyze::analyze(&root);

    if let Some(dest) = json_to {
        let json = rep.to_json();
        match dest {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &json) {
                    eprintln!("xtask analyze: cannot write {path}: {e}");
                    std::process::exit(2);
                }
                eprintln!("xtask analyze: JSON report written to {path}");
            }
            None => print!("{json}"),
        }
    }

    for f in &rep.findings {
        eprintln!("{f}");
    }
    let s = &rep.stats;
    if rep.findings.is_empty() {
        println!(
            "xtask analyze: OK ({} files; {} txn contexts, {} cfg sites, {} event kinds, \
             {} ordering sites, {} unsafe sites checked; {} escapes honoured)",
            s.files,
            s.txn_contexts,
            s.cfg_sites,
            s.event_kinds,
            s.ordering_sites,
            s.unsafe_sites,
            s.escapes
        );
    } else {
        eprintln!("xtask analyze: {} finding(s)", rep.findings.len());
        std::process::exit(1);
    }
}

/// The manifest dir of this crate is `<root>/xtask`.
fn workspace_root() -> std::path::PathBuf {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}
