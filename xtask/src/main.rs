//! Workspace automation. `cargo xtask lint` runs the concurrency
//! hygiene lint; see `lint.rs` for the rules.

mod lint;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let root = workspace_root();
            match lint::run(&root) {
                Ok(stats) => {
                    println!(
                        "xtask lint: OK ({} files, {} ordering sites, {} unsafe blocks checked)",
                        stats.files, stats.ordering_sites, stats.unsafe_blocks
                    );
                }
                Err(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!("xtask lint: {} violation(s)", violations.len());
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!(
                "usage: cargo xtask <command>\n\ncommands:\n  lint    concurrency hygiene lint \
                 (sync-facade imports, ordering justifications,\n          SAFETY comments, \
                 hot-path timing calls)"
            );
            if let Some(o) = other {
                eprintln!("\nunknown command: {o}");
            }
            std::process::exit(2);
        }
    }
}

/// The manifest dir of this crate is `<root>/xtask`.
fn workspace_root() -> std::path::PathBuf {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}
