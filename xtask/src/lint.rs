//! Line-based concurrency hygiene lint (deliberately not `syn`-based:
//! zero dependencies, builds offline, and the rules are lexical).
//!
//! Rules, each scoped to production source (`crates/*/src` and
//! `suite/`), with `#[cfg(test)]` module tails exempt:
//!
//! * **R1 sync facade** — no direct `std::sync::atomic`,
//!   `std::sync::Mutex`/`RwLock`/`Condvar`, `std::thread`, or
//!   `parking_lot` imports outside the facade (`crates/sync`), the
//!   checker (`crates/check`), and explicitly escaped lines. Production
//!   code goes through `rubic_sync` so `--cfg rubic_check` swaps in the
//!   model checker.
//! * **R2 ordering justification** — every `SeqCst` / `Relaxed` site
//!   carries a `// ordering:` comment on the line or within the five
//!   lines above. `Acquire`/`Release`/`AcqRel` don't need one: they are
//!   the default vocabulary; the extremes are where reviewers need the
//!   argument.
//! * **R3 SAFETY comments** — every `unsafe` keyword carries a
//!   `SAFETY:` comment on the line or within the five lines above.
//! * **R4 hot-path timing** — no `Instant::now()` in the STM
//!   per-access hot path (`txn.rs`, `vlock.rs`, `clock.rs`, `tvar.rs`,
//!   `index.rs`, `snap.rs`): timestamp reads belong to the global
//!   version clock, not the OS.
//! * **R5 fence justification** — every `fence(` site carries a
//!   `// ordering:` comment, like R2. Fences order the version-chain /
//!   snapshot-registry handshake (`snap.rs`) and any ordering weaker
//!   than the argued one silently breaks the retention proof; R2 only
//!   catches the `SeqCst` spelling, R5 catches the call itself (e.g. an
//!   unjustified downgrade to `fence(Ordering::AcqRel)`).
//!
//! Escapes (same line): `// lint: allow-std-sync`,
//! `// lint: allow-ordering`, `// lint: allow-unsafe`,
//! `// lint: allow-instant`.

use std::fmt;
use std::path::{Path, PathBuf};

/// How far above a site a justification comment may sit. Ten lines
/// accommodates a thorough multi-line justification whose marker line
/// opens the comment block, plus the argument lines of a multi-line
/// call (e.g. a `compare_exchange` with per-line orderings).
const COMMENT_WINDOW: usize = 10;

/// Crates whose `src` trees are exempt from R1/R2 (they *implement*
/// the facade and the checker, so they necessarily name the raw
/// primitives and match on orderings).
const FACADE_CRATES: [&str; 2] = ["crates/sync", "crates/check"];

/// STM files on the per-access hot path (R4). `snap.rs` is the
/// snapshot-pin/retention path: registration runs at every read-only
/// transaction begin and the registry scan inside every mvcc commit.
const HOT_PATH_FILES: [&str; 6] = [
    "crates/stm/src/txn.rs",
    "crates/stm/src/vlock.rs",
    "crates/stm/src/clock.rs",
    "crates/stm/src/tvar.rs",
    "crates/stm/src/index.rs",
    "crates/stm/src/snap.rs",
];

/// A single rule violation.
pub struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Counters for the success report.
#[derive(Default)]
pub struct Stats {
    pub files: usize,
    pub ordering_sites: usize,
    pub unsafe_blocks: usize,
}

/// Runs the lint over the workspace rooted at `root`.
///
/// # Errors
/// Returns every violation found (the caller prints them and fails).
pub fn run(root: &Path) -> Result<Stats, Vec<Violation>> {
    let mut files = Vec::new();
    for dir in ["crates", "suite"] {
        collect_rs(&root.join(dir), &mut files);
    }
    files.sort();

    let mut stats = Stats::default();
    let mut violations = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        stats.files += 1;
        lint_file(&rel, &text, &mut stats, &mut violations);
    }
    if violations.is_empty() {
        Ok(stats)
    } else {
        Err(violations)
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Only production trees: crate `src` dirs and `suite`.
            // Crate-level `tests/`, `benches/`, `examples/` are test
            // harness code and may use std primitives directly.
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "tests" || name == "benches" || name == "examples" || name == "target" {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_starts_with(rel: &Path, prefix: &str) -> bool {
    let mut comps = rel.components();
    prefix
        .split('/')
        .all(|p| comps.next().is_some_and(|c| c.as_os_str() == p))
}

/// Line index where the trailing `#[cfg(test)]` *module* begins, if
/// any. Everything at or after that line is exempt. An inline
/// `#[cfg(test)]` on a single helper fn does not start the tail — only
/// an attribute whose next item is a `mod` does (otherwise one
/// test-only helper mid-file would exempt all production code below
/// it).
fn test_tail_start(lines: &[&str]) -> usize {
    for (i, l) in lines.iter().enumerate() {
        let t = l.trim_start();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test") {
            let next_item = lines[i + 1..]
                .iter()
                .map(|l| l.trim_start())
                .find(|t| !t.is_empty() && !t.starts_with("#["));
            if next_item.is_some_and(|t| t.starts_with("mod ") || t.starts_with("pub mod ")) {
                return i;
            }
        }
    }
    lines.len()
}

/// True when any of the `window` lines ending at `idx` (inclusive)
/// contains `needle` inside a comment.
fn comment_nearby(lines: &[&str], idx: usize, needle: &str, window: usize) -> bool {
    let lo = idx.saturating_sub(window);
    lines[lo..=idx]
        .iter()
        .any(|l| l.find("//").is_some_and(|pos| l[pos..].contains(needle)))
}

/// Strips line comments and ordinary string literals so rule patterns
/// don't fire on prose. (Raw strings and block comments are rare enough
/// in this tree that the simple scan suffices; escapes exist for the
/// rest.)
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn lint_file(rel: &Path, text: &str, stats: &mut Stats, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = text.lines().collect();
    let tail = test_tail_start(&lines);
    let facade_exempt = FACADE_CRATES.iter().any(|c| rel_starts_with(rel, c));
    let hot_path = HOT_PATH_FILES.iter().any(|f| rel_starts_with(rel, f));

    for (i, raw) in lines.iter().enumerate().take(tail) {
        let lineno = i + 1;
        let code = code_portion(raw);
        if code.trim().is_empty() {
            continue;
        }

        // R1: facade discipline.
        if !facade_exempt
            && !raw.contains("lint: allow-std-sync")
            && (code.contains("std::sync::atomic")
                || code.contains("std::sync::Mutex")
                || code.contains("std::sync::RwLock")
                || code.contains("std::sync::Condvar")
                || code.contains("std::thread")
                || code.contains("parking_lot::")
                || code.contains("use parking_lot"))
        {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "R1",
                message: "direct sync primitive; import from rubic_sync so `--cfg rubic_check` \
                          can swap in the model checker (or `// lint: allow-std-sync` with a \
                          reason)"
                    .into(),
            });
        }

        // R2: extreme orderings must be argued.
        if !facade_exempt && (code.contains("SeqCst") || code.contains("Relaxed")) {
            stats.ordering_sites += 1;
            if !raw.contains("lint: allow-ordering")
                && !comment_nearby(&lines, i, "ordering:", COMMENT_WINDOW)
            {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "R2",
                    message: "SeqCst/Relaxed site without a `// ordering:` justification within \
                              5 lines"
                        .into(),
                });
            }
        }

        // R3: unsafe needs SAFETY.
        if code.contains("unsafe")
            && !code.contains("unsafe_code")
            && !code.contains("unsafe_op_in_unsafe_fn")
        {
            stats.unsafe_blocks += 1;
            if !raw.contains("lint: allow-unsafe")
                && !comment_nearby(&lines, i, "SAFETY:", COMMENT_WINDOW)
            {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "R3",
                    message: "`unsafe` without a `// SAFETY:` comment within 5 lines".into(),
                });
            }
        }

        // R4: hot path must not read the OS clock.
        if hot_path && code.contains("Instant::now") && !raw.contains("lint: allow-instant") {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "R4",
                message: "Instant::now() on the STM per-access hot path; use the global version \
                          clock or hoist timing to transaction boundaries"
                    .into(),
            });
        }

        // R5: fences must be argued, whatever their ordering. `fence(`
        // with `SeqCst` is already an R2 site; counting it again here
        // would double-report, so R5 only fires when R2 did not.
        if !facade_exempt
            && code.contains("fence(")
            && !code.contains("SeqCst")
            && !code.contains("Relaxed")
            && !raw.contains("lint: allow-ordering")
            && !comment_nearby(&lines, i, "ordering:", COMMENT_WINDOW)
        {
            stats.ordering_sites += 1;
            out.push(Violation {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "R5",
                message: "fence without a `// ordering:` justification; fences carry the \
                          version-chain / snapshot-registry handshake arguments"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, text: &str) -> Vec<String> {
        let mut stats = Stats::default();
        let mut out = Vec::new();
        lint_file(Path::new(rel), text, &mut stats, &mut out);
        out.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn flags_raw_std_sync_import() {
        let v = lint_str("crates/stm/src/x.rs", "use std::sync::Mutex;\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[R1]"));
    }

    #[test]
    fn facade_crates_are_exempt_from_r1_r2() {
        let src = "use std::sync::Mutex;\nlet x = a.load(Ordering::SeqCst);\n";
        assert!(lint_str("crates/sync/src/lib.rs", src).is_empty());
        assert!(lint_str("crates/check/src/engine.rs", src).is_empty());
    }

    #[test]
    fn test_tail_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert!(lint_str("crates/stm/src/x.rs", src).is_empty());
    }

    #[test]
    fn inline_cfg_test_helper_does_not_start_the_tail() {
        // Production code *below* a `#[cfg(test)]` helper fn must still
        // be linted; only a trailing test module exempts.
        let src = "#[cfg(test)]\nfn helper() {}\nuse std::sync::Mutex;\n";
        let v = lint_str("crates/stm/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[R1]"));
    }

    #[test]
    fn ordering_needs_justification() {
        let bad = "let x = a.load(Ordering::SeqCst);\n";
        let good = "// ordering: drain check needs a total order with producer increments\n\
                    let x = a.load(Ordering::SeqCst);\n";
        let inline = "let x = a.load(Ordering::Relaxed); // ordering: stat counter\n";
        assert_eq!(lint_str("crates/runtime/src/x.rs", bad).len(), 1);
        assert!(lint_str("crates/runtime/src/x.rs", good).is_empty());
        assert!(lint_str("crates/runtime/src/x.rs", inline).is_empty());
    }

    #[test]
    fn acquire_release_do_not_need_justification() {
        let src = "let x = a.load(Ordering::Acquire);\na.store(1, Ordering::Release);\n";
        assert!(lint_str("crates/runtime/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "let p = unsafe { *ptr };\n";
        let good = "// SAFETY: ptr is valid for the guard's lifetime\nlet p = unsafe { *ptr };\n";
        assert_eq!(lint_str("crates/stm/src/x.rs", bad).len(), 1);
        assert!(lint_str("crates/stm/src/x.rs", good).is_empty());
    }

    #[test]
    fn hot_path_instant_flagged_only_on_hot_files() {
        let src = "let t = Instant::now();\n";
        assert_eq!(lint_str("crates/stm/src/vlock.rs", src).len(), 1);
        assert_eq!(lint_str("crates/stm/src/snap.rs", src).len(), 1);
        assert!(lint_str("crates/stm/src/stats.rs", src).is_empty());
        assert!(lint_str("crates/runtime/src/pool.rs", src).is_empty());
    }

    #[test]
    fn fences_need_justification_at_any_ordering() {
        // A SeqCst fence is an R2 site; a downgraded fence must not
        // slip past just because the extreme spelling is gone.
        let bad = "fence(Ordering::AcqRel);\n";
        let good = "// ordering: pairs the slot store with the clock re-read\n\
                    fence(Ordering::AcqRel);\n";
        let seqcst_unjustified = "fence(Ordering::SeqCst);\n";
        let v = lint_str("crates/stm/src/snap.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[R5]"));
        assert!(lint_str("crates/stm/src/snap.rs", good).is_empty());
        // SeqCst fence without a comment: exactly one report (R2).
        let v = lint_str("crates/stm/src/snap.rs", seqcst_unjustified);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[R2]"));
        assert!(
            lint_str("crates/check/src/x.rs", bad).is_empty(),
            "facade exempt"
        );
    }

    #[test]
    fn escapes_suppress() {
        let src = "use std::sync::Mutex; // lint: allow-std-sync — poison-test fixture\n\
                   let x = a.load(Ordering::SeqCst); // lint: allow-ordering\n";
        assert!(lint_str("crates/stm/src/x.rs", src).is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_fire() {
        let src = "// std::sync::Mutex is banned here\nlet s = \"std::sync::Mutex\";\n";
        assert!(lint_str("crates/stm/src/x.rs", src).is_empty());
    }
}
