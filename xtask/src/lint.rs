//! `cargo xtask lint` — thin shim over `rubic-analyze`'s re-hosted
//! R1–R5 lexical rules. The rules themselves (sync-facade discipline,
//! ordering justifications, SAFETY comments, hot-path timing, fence
//! justifications) now run on the analyzer's token stream instead of
//! raw line text; `xtask/tests/legacy_parity.rs` pins the old and new
//! implementations to identical verdicts.

use std::path::Path;

/// Counters for the success report (historical field names).
#[derive(Default)]
pub struct Stats {
    pub files: usize,
    pub ordering_sites: usize,
    pub unsafe_blocks: usize,
}

/// Runs R1–R5 over the workspace rooted at `root`.
///
/// # Errors
/// Returns every violation, rendered, for the caller to print and fail.
pub fn run(root: &Path) -> Result<Stats, Vec<String>> {
    let rep = rubic_analyze::analyze_lexical(root);
    if rep.findings.is_empty() {
        Ok(Stats {
            files: rep.stats.files,
            ordering_sites: rep.stats.ordering_sites,
            unsafe_blocks: rep.stats.unsafe_sites,
        })
    } else {
        Err(rep.findings.iter().map(ToString::to_string).collect())
    }
}
