//! Aggregation of drained events and the two export formats.
//!
//! The collector thread feeds decoded [`Event`]s into a [`Sink`], which
//! accumulates the three latency histograms, the abort-reason breakdown
//! and the parallelism-level timeline as events arrive (so
//! histograms-only sessions never buffer the raw log). At session end
//! the sink freezes into a [`TraceReport`], which can render itself as
//! JSON-lines ([`TraceReport::to_jsonl`]) or as a `chrome://tracing`
//! document ([`TraceReport::to_chrome_trace`]) loadable in Perfetto.

use crate::event::{codes, Event, EventKind};
use crate::hist::LogHistogram;

/// One applied parallelism-level change, taken from `LevelChange` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSample {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Level before the change.
    pub old_level: u32,
    /// Level after the change.
    pub new_level: u32,
    /// Monitor round that applied it.
    pub round: u64,
}

/// Streaming accumulator the collector drains into.
pub(crate) struct Sink {
    keep_events: bool,
    events: Vec<Event>,
    commit_latency: LogHistogram,
    abort_restart_latency: LogHistogram,
    lock_hold: LogHistogram,
    abort_breakdown: [u64; codes::ABORT_REASONS],
    level_timeline: Vec<LevelSample>,
    pub(crate) dropped: u64,
}

impl Sink {
    pub(crate) fn new(keep_events: bool) -> Sink {
        Sink {
            keep_events,
            events: Vec::new(),
            commit_latency: LogHistogram::new(),
            abort_restart_latency: LogHistogram::new(),
            lock_hold: LogHistogram::new(),
            abort_breakdown: [0; codes::ABORT_REASONS],
            level_timeline: Vec::new(),
            dropped: 0,
        }
    }

    pub(crate) fn add(&mut self, event: Event) {
        match event.kind {
            EventKind::TxnCommit => self.commit_latency.record(event.a),
            EventKind::TxnRestart => self.abort_restart_latency.record(event.a),
            EventKind::LockHold => self.lock_hold.record(event.a),
            EventKind::TxnAbort => {
                let idx = (event.code as usize).min(codes::ABORT_REASONS - 1);
                self.abort_breakdown[idx] += 1;
            }
            EventKind::LevelChange => self.level_timeline.push(LevelSample {
                ts_ns: event.ts_ns,
                old_level: event.a as u32,
                new_level: event.b as u32,
                round: event.c,
            }),
            _ => {}
        }
        if self.keep_events {
            self.events.push(event);
        }
    }

    pub(crate) fn into_report(mut self) -> TraceReport {
        // Rings drain per thread, so interleave by timestamp for export.
        self.events.sort_by_key(|e| e.ts_ns);
        self.level_timeline.sort_by_key(|s| s.ts_ns);
        TraceReport {
            events: self.events,
            commit_latency: self.commit_latency,
            abort_restart_latency: self.abort_restart_latency,
            lock_hold: self.lock_hold,
            abort_breakdown: self.abort_breakdown,
            level_timeline: self.level_timeline,
            dropped: self.dropped,
        }
    }
}

/// Everything a finished [`TraceSession`](crate::TraceSession) observed.
#[derive(Debug)]
pub struct TraceReport {
    /// The full event log in timestamp order (empty when the session ran
    /// with `keep_events = false`).
    pub events: Vec<Event>,
    /// Begin→commit latency of committed transactions, in nanoseconds.
    pub commit_latency: LogHistogram,
    /// Abort→restart (backoff) latency, in nanoseconds.
    pub abort_restart_latency: LogHistogram,
    /// Write-lock hold time, in nanoseconds.
    pub lock_hold: LogHistogram,
    /// Abort counts by reason code (index = `codes::ABORT_*`).
    pub abort_breakdown: [u64; codes::ABORT_REASONS],
    /// Applied parallelism-level changes in timestamp order.
    pub level_timeline: Vec<LevelSample>,
    /// Events discarded by ring overflow (drop-oldest) across all
    /// threads. Histogram counts and the breakdown exclude these.
    pub dropped: u64,
}

impl TraceReport {
    /// Total aborts across all reasons.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.abort_breakdown.iter().sum()
    }

    /// Abort-reason shares as `(name, count, fraction)` rows, skipping
    /// reasons that never fired. Fractions sum to 1 when any abort
    /// occurred.
    #[must_use]
    pub fn abort_shares(&self) -> Vec<(&'static str, u64, f64)> {
        let total = self.total_aborts();
        self.abort_breakdown
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                #[allow(clippy::cast_precision_loss)]
                let frac = n as f64 / total as f64;
                (codes::ABORT_NAMES[i], n, frac)
            })
            .collect()
    }

    /// Renders the event log as JSON-lines: one object per event with
    /// the decoded kind name and, where the code byte has a meaning, a
    /// decoded `label`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            let _ = write!(
                out,
                "{{\"ts_ns\":{},\"kind\":\"{}\",\"code\":{},\"tid\":{},\"a\":{},\"b\":{},\"c\":{}",
                e.ts_ns,
                e.kind.name(),
                e.code,
                e.tid,
                e.a,
                e.b,
                e.c
            );
            if let Some(label) = code_label(e) {
                out.push_str(",\"label\":\"");
                out.push_str(&escape_json(label));
                out.push('"');
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders a `chrome://tracing` JSON document (object form, µs
    /// timestamps) that Perfetto and `chrome://tracing` both load:
    ///
    /// - committed/aborted transactions become `"X"` complete events
    ///   with their latency as the duration,
    /// - monitor rounds become `"C"` counter tracks for the pool level
    ///   and throughput,
    /// - level changes, controller decisions and chaos injections become
    ///   `"i"` instants.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut rows: Vec<String> = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let ts_us = us(e.ts_ns);
            match e.kind {
                EventKind::TxnCommit => rows.push(format!(
                    "{{\"name\":\"txn_commit\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"reads\":{},\"writes\":{},\"attempts\":{}}}}}",
                    us(e.ts_ns.saturating_sub(e.a)),
                    us(e.a),
                    e.tid,
                    e.b >> 32,
                    e.b & 0xFFFF_FFFF,
                    e.c
                )),
                EventKind::TxnAbort => rows.push(format!(
                    "{{\"name\":\"abort:{}\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"attempt\":{}}}}}",
                    codes::abort_name(e.code),
                    us(e.ts_ns.saturating_sub(e.a)),
                    us(e.a),
                    e.tid,
                    e.b
                )),
                EventKind::MonitorRound => rows.push(format!(
                    "{{\"name\":\"pool\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":1,\"args\":{{\"level\":{},\"throughput\":{}}}}}",
                    e.b >> 32,
                    json_f64(f64::from_bits(e.c))
                )),
                EventKind::LevelChange => rows.push(format!(
                    "{{\"name\":\"level {}\\u2192{}\",\"cat\":\"pool\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts_us},\"pid\":1,\"tid\":{}}}",
                    e.a, e.b, e.tid
                )),
                EventKind::Decision => rows.push(format!(
                    "{{\"name\":\"decide:{}\",\"cat\":\"controller\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":{},\"args\":{{\"phase\":\"{}\",\"throughput\":{},\"level\":{},\"new_level\":{}}}}}",
                    codes::policy_name(e.c),
                    e.tid,
                    codes::phase_name(e.code),
                    json_f64(f64::from_bits(e.a)),
                    e.b >> 32,
                    e.b & 0xFFFF_FFFF
                )),
                EventKind::RubicState => rows.push(format!(
                    "{{\"name\":\"rubic_state\",\"cat\":\"controller\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":{},\"args\":{{\"phase\":\"{}\",\"t_p\":{},\"l_max\":{},\"level\":{},\"new_level\":{}}}}}",
                    e.tid,
                    codes::phase_name(e.code),
                    json_f64(f64::from_bits(e.a)),
                    json_f64(f64::from_bits(e.b)),
                    e.c >> 32,
                    e.c & 0xFFFF_FFFF
                )),
                EventKind::Chaos => rows.push(format!(
                    "{{\"name\":\"chaos:{}\",\"cat\":\"chaos\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":{}}}",
                    codes::chaos_point_name(e.code),
                    e.tid
                )),
                // Begin/restart/lock/extend/worker-delta are summarised
                // by the histograms; as spans they would dwarf the trace.
                _ => {}
            }
        }
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&rows.join(","));
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }

    /// A compact human-readable summary (the `trace_report` example's
    /// core output): abort breakdown, latency quantiles, level timeline.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let total = self.total_aborts();
        let _ = writeln!(s, "aborts: {total} total");
        for (name, n, frac) in self.abort_shares() {
            let _ = writeln!(s, "  {name:<16} {n:>8}  ({:.1}%)", frac * 100.0);
        }
        let _ = writeln!(
            s,
            "commit latency: n={} p50={}ns p99={}ns max={}ns",
            self.commit_latency.count(),
            self.commit_latency.p50(),
            self.commit_latency.p99(),
            self.commit_latency.max()
        );
        let _ = writeln!(
            s,
            "abort->restart: n={} p50={}ns p99={}ns",
            self.abort_restart_latency.count(),
            self.abort_restart_latency.p50(),
            self.abort_restart_latency.p99()
        );
        let _ = writeln!(
            s,
            "lock hold:      n={} p50={}ns p99={}ns",
            self.lock_hold.count(),
            self.lock_hold.p50(),
            self.lock_hold.p99()
        );
        if !self.level_timeline.is_empty() {
            let _ = writeln!(s, "level timeline ({} changes):", self.level_timeline.len());
            for l in &self.level_timeline {
                let _ = writeln!(
                    s,
                    "  t={:>9.3}ms round={:>4} {} -> {}",
                    l.ts_ns as f64 / 1e6,
                    l.round,
                    l.old_level,
                    l.new_level
                );
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(s, "dropped events (ring overflow): {}", self.dropped);
        }
        s
    }
}

/// Human label for the code byte, where the kind gives it one.
fn code_label(e: &Event) -> Option<&'static str> {
    match e.kind {
        EventKind::TxnAbort => Some(codes::abort_name(e.code)),
        EventKind::Decision | EventKind::RubicState => Some(codes::phase_name(e.code)),
        EventKind::Chaos => Some(codes::chaos_point_name(e.code)),
        _ => None,
    }
}

/// Nanoseconds → microseconds with 3 decimals (chrome trace unit).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// A JSON-safe rendering of an `f64` (NaN/inf become 0, which JSON
/// cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, code: u8, ts: u64, a: u64, b: u64, c: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            code,
            tid: 0,
            a,
            b,
            c,
        }
    }

    fn sample_report() -> TraceReport {
        let mut sink = Sink::new(true);
        sink.add(ev(EventKind::TxnBegin, 0, 10, 0, 0, 0));
        sink.add(ev(EventKind::TxnCommit, 0, 1_010, 1_000, (4 << 32) | 2, 1));
        sink.add(ev(
            EventKind::TxnAbort,
            codes::ABORT_READ_VALIDATION,
            2_000,
            400,
            0,
            0,
        ));
        sink.add(ev(
            EventKind::TxnAbort,
            codes::ABORT_LOCK_BUSY,
            2_100,
            300,
            1,
            0,
        ));
        sink.add(ev(EventKind::TxnRestart, 0, 2_500, 150, 1, 0));
        sink.add(ev(EventKind::LockHold, 0, 3_000, 250, 0xBEEF, 0));
        sink.add(ev(
            EventKind::MonitorRound,
            0,
            4_000,
            (1 << 32) | 0xA,
            (2 << 32) | 3,
            1234.5f64.to_bits(),
        ));
        sink.add(ev(EventKind::LevelChange, 0, 4_100, 2, 4, 1));
        sink.add(ev(
            EventKind::Decision,
            codes::PHASE_GROWTH_CUBIC,
            4_050,
            1234.5f64.to_bits(),
            (2 << 32) | 4,
            0,
        ));
        sink.add(ev(EventKind::Chaos, 2, 5_000, 0, 0, 0));
        sink.into_report()
    }

    #[test]
    fn sink_accumulates_histograms_and_breakdown() {
        let r = sample_report();
        assert_eq!(r.commit_latency.count(), 1);
        assert_eq!(r.abort_restart_latency.count(), 1);
        assert_eq!(r.lock_hold.count(), 1);
        assert_eq!(r.total_aborts(), 2);
        assert_eq!(r.abort_breakdown[codes::ABORT_READ_VALIDATION as usize], 1);
        assert_eq!(r.abort_breakdown[codes::ABORT_LOCK_BUSY as usize], 1);
        assert_eq!(r.level_timeline.len(), 1);
        assert_eq!(r.level_timeline[0].new_level, 4);
    }

    #[test]
    fn abort_shares_sum_to_one() {
        let r = sample_report();
        let shares = r.abort_shares();
        assert_eq!(shares.len(), 2);
        let sum: f64 = shares.iter().map(|(_, _, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_sorted_by_timestamp() {
        let r = sample_report();
        assert!(r.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn jsonl_has_one_valid_object_per_event() {
        let r = sample_report();
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), r.events.len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":\""));
            // Balanced braces is a cheap structural sanity check that
            // catches broken escaping without a JSON parser dependency.
            let open = line.matches('{').count();
            let close = line.matches('}').count();
            assert_eq!(open, close, "{line}");
        }
        assert!(jsonl.contains("\"label\":\"lock-busy\""));
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let r = sample_report();
        let doc = r.to_chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with('}'));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.contains("\"ph\":\"X\""), "complete events present");
        assert!(doc.contains("\"ph\":\"C\""), "counter track present");
        assert!(doc.contains("\"ph\":\"i\""), "instants present");
        assert!(doc.contains("abort:lock-busy"));
        assert!(doc.contains("\"throughput\":1234.5"));
    }

    #[test]
    fn summary_mentions_every_section() {
        let r = sample_report();
        let s = r.summary();
        assert!(s.contains("aborts: 2 total"));
        assert!(s.contains("read-validation"));
        assert!(s.contains("commit latency"));
        assert!(s.contains("level timeline"));
    }

    #[test]
    fn microsecond_rendering() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_234), "1.234");
        assert_eq!(us(1_000_007), "1000.007");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
