//! Aggregation of drained events and the export formats.
//!
//! The collector thread feeds decoded [`Event`]s into a [`Sink`], which
//! accumulates the three latency histograms, the abort-reason breakdown,
//! the parallelism-level timeline, per-TVar lock-hold aggregates and the
//! bounded flight-recorder buffer as events arrive (so histograms-only
//! sessions never buffer the full raw log). At session end the sink
//! freezes into a [`TraceReport`], which can render itself as JSON-lines
//! ([`TraceReport::to_jsonl`]) or as a `chrome://tracing` document
//! ([`TraceReport::to_chrome_trace`]) loadable in Perfetto. Mid-session,
//! the sink can also produce a point-in-time [`MetricsSnapshot`]
//! (JSONL + Prometheus text exposition) without disturbing accumulation.

use std::collections::{HashMap, VecDeque};

use crate::event::{codes, Event, EventKind};
use crate::hist::LogHistogram;
use crate::labels;
use crate::sketch::ConflictSketch;

/// One applied parallelism-level change, taken from `LevelChange` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSample {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Level before the change.
    pub old_level: u32,
    /// Level after the change.
    pub new_level: u32,
    /// Monitor round that applied it.
    pub round: u64,
}

/// A 64-bucket power-of-two histogram: ~512 bytes per tracked address
/// instead of a full [`LogHistogram`], at factor-of-two quantile
/// accuracy — plenty for ranking contended variables.
#[derive(Debug, Clone)]
struct MiniHist {
    counts: [u64; 64],
    count: u64,
    max: u64,
}

impl MiniHist {
    fn new() -> MiniHist {
        MiniHist {
            counts: [0; 64],
            count: 0,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        let bucket = if v == 0 { 0 } else { v.ilog2() as usize };
        self.counts[bucket] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// The lower bound of the bucket holding the `ceil(q·count)`-th
    /// smallest recording (0 when empty).
    fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if idx == 0 { 0 } else { 1u64 << idx };
            }
        }
        self.max
    }
}

/// Per-lock-address aggregates fed by `LockHold`, `SnapExtend` and
/// `VersionPrune` events.
#[derive(Debug, Clone)]
struct AddrAggregate {
    hold: MiniHist,
    holds_commit: u64,
    holds_abort: u64,
    snap_extends: u64,
    version_prunes: u64,
}

impl AddrAggregate {
    fn new() -> AddrAggregate {
        AddrAggregate {
            hold: MiniHist::new(),
            holds_commit: 0,
            holds_abort: 0,
            snap_extends: 0,
            version_prunes: 0,
        }
    }
}

/// Caps the per-address aggregate map; addresses past the cap fold into
/// [`Sink::addr_overflow`] instead of growing without bound.
const MAX_TRACKED_ADDRS: usize = 1024;

/// Sink construction knobs (a subset of `TraceConfig`).
#[derive(Debug, Clone)]
pub(crate) struct SinkOptions {
    /// Retain the full event log for the exporters.
    pub(crate) keep_events: bool,
    /// Flight-recorder retention window in nanoseconds.
    pub(crate) flight_window_ns: u64,
    /// Flight-recorder hard event cap (drop-oldest past this).
    pub(crate) flight_capacity: usize,
    /// Contention-table size in reports and snapshots.
    pub(crate) top_k: usize,
}

impl Default for SinkOptions {
    fn default() -> Self {
        SinkOptions {
            keep_events: true,
            flight_window_ns: 5_000_000_000,
            flight_capacity: 1 << 16,
            top_k: 16,
        }
    }
}

/// Interval baseline for snapshot throughput/abort-rate deltas.
#[derive(Debug, Clone, Copy, Default)]
struct SnapshotBaseline {
    ts_ns: u64,
    commits: u64,
    aborts: u64,
}

/// Streaming accumulator the collector drains into.
pub(crate) struct Sink {
    opts: SinkOptions,
    events: Vec<Event>,
    /// Flight recorder: the last `flight_window_ns` of events (all
    /// kinds), bounded by `flight_capacity`, kept even when
    /// `keep_events` is off.
    recent: VecDeque<Event>,
    commit_latency: LogHistogram,
    /// Commit latencies since the last watchdog check (the p99-breach
    /// detector's sliding window); reset by `take_commit_window`.
    window_commit: LogHistogram,
    abort_restart_latency: LogHistogram,
    lock_hold: LogHistogram,
    abort_breakdown: [u64; codes::ABORT_REASONS],
    level_timeline: Vec<LevelSample>,
    addr_stats: HashMap<u64, AddrAggregate>,
    addr_overflow: u64,
    snap_pins: u64,
    snap_extends: u64,
    snap_demotes: u64,
    steals_local: u64,
    steals_remote: u64,
    anomalies: [u64; codes::ANOMALY_NAMES.len()],
    last_level: u32,
    baseline: SnapshotBaseline,
    pub(crate) dropped: u64,
}

impl Sink {
    pub(crate) fn new(opts: SinkOptions) -> Sink {
        Sink {
            opts,
            events: Vec::new(),
            recent: VecDeque::new(),
            commit_latency: LogHistogram::new(),
            window_commit: LogHistogram::new(),
            abort_restart_latency: LogHistogram::new(),
            lock_hold: LogHistogram::new(),
            abort_breakdown: [0; codes::ABORT_REASONS],
            level_timeline: Vec::new(),
            addr_stats: HashMap::new(),
            addr_overflow: 0,
            snap_pins: 0,
            snap_extends: 0,
            snap_demotes: 0,
            steals_local: 0,
            steals_remote: 0,
            anomalies: [0; codes::ANOMALY_NAMES.len()],
            last_level: 0,
            baseline: SnapshotBaseline::default(),
            dropped: 0,
        }
    }

    fn addr_entry(&mut self, addr: u64) -> Option<&mut AddrAggregate> {
        if addr == 0 {
            return None;
        }
        if self.addr_stats.len() >= MAX_TRACKED_ADDRS && !self.addr_stats.contains_key(&addr) {
            self.addr_overflow += 1;
            return None;
        }
        Some(
            self.addr_stats
                .entry(addr)
                .or_insert_with(AddrAggregate::new),
        )
    }

    pub(crate) fn add(&mut self, event: Event) {
        match event.kind {
            EventKind::TxnCommit => {
                self.commit_latency.record(event.a);
                self.window_commit.record(event.a);
            }
            EventKind::TxnRestart => self.abort_restart_latency.record(event.a),
            EventKind::LockHold => {
                self.lock_hold.record(event.a);
                let aborted = event.code == 1;
                let (hold_ns, addr) = (event.a, event.b);
                if let Some(agg) = self.addr_entry(addr) {
                    agg.hold.record(hold_ns);
                    if aborted {
                        agg.holds_abort += 1;
                    } else {
                        agg.holds_commit += 1;
                    }
                }
            }
            EventKind::TxnAbort => {
                let idx = (event.code as usize).min(codes::ABORT_REASONS - 1);
                self.abort_breakdown[idx] += 1;
            }
            EventKind::LevelChange => {
                self.last_level = event.b as u32;
                self.level_timeline.push(LevelSample {
                    ts_ns: event.ts_ns,
                    old_level: event.a as u32,
                    new_level: event.b as u32,
                    round: event.c,
                });
            }
            EventKind::MonitorRound => self.last_level = (event.b >> 32) as u32,
            EventKind::SnapPin => self.snap_pins += 1,
            EventKind::SnapExtend => {
                self.snap_extends += 1;
                if let Some(agg) = self.addr_entry(event.c) {
                    agg.snap_extends += 1;
                }
            }
            EventKind::SnapDemote => self.snap_demotes += 1,
            EventKind::TaskSteal => {
                // Flags bitfield: bit 0 = victim gated, bit 1 = the
                // steal crossed a socket boundary.
                if event.code & 0b10 == 0 {
                    self.steals_local += 1;
                } else {
                    self.steals_remote += 1;
                }
            }
            EventKind::VersionPrune => {
                if let Some(agg) = self.addr_entry(event.a) {
                    agg.version_prunes += 1;
                }
            }
            EventKind::Anomaly => {
                let idx = (event.code as usize).min(codes::ANOMALY_NAMES.len() - 1);
                self.anomalies[idx] += 1;
            }
            _ => {}
        }
        self.recent.push_back(event);
        let horizon = event.ts_ns.saturating_sub(self.opts.flight_window_ns);
        while self.recent.len() > self.opts.flight_capacity
            || self.recent.front().is_some_and(|e| e.ts_ns < horizon)
        {
            self.recent.pop_front();
        }
        if self.opts.keep_events {
            self.events.push(event);
        }
    }

    /// The flight-recorder window, sorted by timestamp (rings drain per
    /// thread, so raw arrival order interleaves).
    pub(crate) fn flight_events(&self) -> Vec<Event> {
        let mut evs: Vec<Event> = self.recent.iter().copied().collect();
        evs.sort_by_key(|e| e.ts_ns);
        evs
    }

    /// Swaps out the commit-latency window histogram for the p99-breach
    /// watchdog (each check starts a fresh window).
    pub(crate) fn take_commit_window(&mut self) -> LogHistogram {
        std::mem::take(&mut self.window_commit)
    }

    /// Cumulative commit latency (bundle writer access).
    pub(crate) fn commit_latency(&self) -> &LogHistogram {
        &self.commit_latency
    }

    /// Cumulative abort→restart latency (bundle writer access).
    pub(crate) fn abort_restart_latency(&self) -> &LogHistogram {
        &self.abort_restart_latency
    }

    /// Cumulative lock-hold time (bundle writer access).
    pub(crate) fn lock_hold(&self) -> &LogHistogram {
        &self.lock_hold
    }

    /// Builds the top-K contention table by joining the merged conflict
    /// sketch with the per-address lock-hold/snapshot aggregates and the
    /// label registry.
    pub(crate) fn contention_table(&self, merged: &ConflictSketch) -> Vec<ContentionEntry> {
        merged
            .top(self.opts.top_k)
            .into_iter()
            .map(|c| {
                let agg = self.addr_stats.get(&c.addr);
                ContentionEntry {
                    addr: c.addr,
                    label: labels::label(c.addr),
                    count: c.count,
                    err: c.err,
                    by_reason: c.by_reason,
                    lock_holds: agg.map_or(0, |a| a.holds_commit + a.holds_abort),
                    hold_p50_ns: agg.map_or(0, |a| a.hold.value_at_quantile(0.50)),
                    hold_p99_ns: agg.map_or(0, |a| a.hold.value_at_quantile(0.99)),
                    snap_extends: agg.map_or(0, |a| a.snap_extends),
                    version_prunes: agg.map_or(0, |a| a.version_prunes),
                }
            })
            .collect()
    }

    /// Produces a point-in-time metrics snapshot and advances the
    /// interval baseline (throughput/abort-rate are per-interval).
    pub(crate) fn take_snapshot(
        &mut self,
        merged: &ConflictSketch,
        now_ns: u64,
    ) -> MetricsSnapshot {
        let commits = self.commit_latency.count();
        let aborts: u64 = self.abort_breakdown.iter().sum();
        let interval_ns = now_ns.saturating_sub(self.baseline.ts_ns);
        let interval_commits = commits - self.baseline.commits;
        let interval_aborts = aborts - self.baseline.aborts;
        let throughput = if interval_ns == 0 {
            0.0
        } else {
            interval_commits as f64 * 1e9 / interval_ns as f64
        };
        let attempts = interval_commits + interval_aborts;
        let abort_rate = if attempts == 0 {
            0.0
        } else {
            interval_aborts as f64 / attempts as f64
        };
        self.baseline = SnapshotBaseline {
            ts_ns: now_ns,
            commits,
            aborts,
        };
        MetricsSnapshot {
            ts_ns: now_ns,
            interval_ns,
            commits,
            interval_commits,
            throughput,
            aborts_by_reason: self.abort_breakdown,
            interval_aborts,
            abort_rate,
            commit_p50_ns: self.commit_latency.p50(),
            commit_p99_ns: self.commit_latency.p99(),
            level: self.last_level,
            snap: SnapStats {
                pins: self.snap_pins,
                extends: self.snap_extends,
                demotes: self.snap_demotes,
            },
            steals_local: self.steals_local,
            steals_remote: self.steals_remote,
            top_conflicts: self.contention_table(merged),
            dropped: self.dropped,
        }
    }

    pub(crate) fn into_report(mut self, merged: &ConflictSketch) -> TraceReport {
        // Rings drain per thread, so interleave by timestamp for export.
        self.events.sort_by_key(|e| e.ts_ns);
        self.level_timeline.sort_by_key(|s| s.ts_ns);
        let contention = self.contention_table(merged);
        TraceReport {
            events: self.events,
            commit_latency: self.commit_latency,
            abort_restart_latency: self.abort_restart_latency,
            lock_hold: self.lock_hold,
            abort_breakdown: self.abort_breakdown,
            level_timeline: self.level_timeline,
            contention,
            snap: SnapStats {
                pins: self.snap_pins,
                extends: self.snap_extends,
                demotes: self.snap_demotes,
            },
            anomalies: self.anomalies,
            dropped: self.dropped,
        }
    }
}

/// One row of the top-K contention table: a culprit `TVar` with its
/// estimated conflict count, per-reason breakdown, and lock-hold /
/// mvcc-pressure aggregates.
#[derive(Debug, Clone)]
pub struct ContentionEntry {
    /// The `TVar`'s `lock_addr()` identity (matches `LockHold.b` and the
    /// `LockLeakDetector` oracle's identity).
    pub addr: u64,
    /// User label registered via `TVar::labelled`, if any.
    pub label: Option<String>,
    /// Estimated conflicts attributed to this `TVar` (never undercounts;
    /// overshoots by at most `err`).
    pub count: u64,
    /// Space-saving overestimate bound for `count`.
    pub err: u64,
    /// Conflicts by abort-reason code (index = `codes::ABORT_*`); sums
    /// to `count - err`.
    pub by_reason: [u64; codes::ABORT_REASONS],
    /// Write-lock holds observed on this `TVar` (commit + abort releases).
    pub lock_holds: u64,
    /// Median write-lock hold time, nanoseconds (factor-2 buckets).
    pub hold_p50_ns: u64,
    /// 99th-percentile write-lock hold time, nanoseconds.
    pub hold_p99_ns: u64,
    /// Snapshot extensions forced by this `TVar`'s chain overflowing
    /// (mvcc chain-overflow pressure).
    pub snap_extends: u64,
    /// Version-chain prune operations on this `TVar` (mvcc).
    pub version_prunes: u64,
}

impl ContentionEntry {
    /// `label` if registered, else the hex address.
    #[must_use]
    pub fn display_name(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("{:#x}", self.addr))
    }
}

/// Cumulative mvcc snapshot-protocol counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapStats {
    /// Snapshot timestamps pinned in the registry (`SnapPin`).
    pub pins: u64,
    /// In-place snapshot refreshes after chain overflow (`SnapExtend`).
    pub extends: u64,
    /// Falls back to the classic validated protocol (`SnapDemote`).
    pub demotes: u64,
}

/// Everything a finished [`TraceSession`](crate::TraceSession) observed.
#[derive(Debug)]
pub struct TraceReport {
    /// The full event log in timestamp order (empty when the session ran
    /// with `keep_events = false`).
    pub events: Vec<Event>,
    /// Begin→commit latency of committed transactions, in nanoseconds.
    pub commit_latency: LogHistogram,
    /// Abort→restart (backoff) latency, in nanoseconds.
    pub abort_restart_latency: LogHistogram,
    /// Write-lock hold time, in nanoseconds.
    pub lock_hold: LogHistogram,
    /// Abort counts by reason code (index = `codes::ABORT_*`).
    pub abort_breakdown: [u64; codes::ABORT_REASONS],
    /// Applied parallelism-level changes in timestamp order.
    pub level_timeline: Vec<LevelSample>,
    /// Top-K contention table from the merged per-thread conflict
    /// sketches, descending by estimated conflict count.
    pub contention: Vec<ContentionEntry>,
    /// Cumulative mvcc snapshot-protocol counters.
    pub snap: SnapStats,
    /// Anomaly-watchdog firings by kind (index = `codes::ANOMALY_*`).
    pub anomalies: [u64; codes::ANOMALY_NAMES.len()],
    /// Events discarded by ring overflow (drop-oldest) across all
    /// threads. Histogram counts and the breakdown exclude these.
    pub dropped: u64,
}

impl TraceReport {
    /// Total aborts across all reasons.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.abort_breakdown.iter().sum()
    }

    /// Abort-reason shares as `(name, count, fraction)` rows, skipping
    /// reasons that never fired. Fractions sum to 1 when any abort
    /// occurred.
    #[must_use]
    pub fn abort_shares(&self) -> Vec<(&'static str, u64, f64)> {
        let total = self.total_aborts();
        self.abort_breakdown
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                #[allow(clippy::cast_precision_loss)]
                let frac = n as f64 / total as f64;
                (codes::ABORT_NAMES[i], n, frac)
            })
            .collect()
    }

    /// Renders the event log as JSON-lines: one object per event with
    /// the decoded kind name and, where the code byte has a meaning, a
    /// decoded `label`.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }

    /// Renders a `chrome://tracing` JSON document (object form, µs
    /// timestamps) that Perfetto and `chrome://tracing` both load:
    ///
    /// - committed/aborted transactions become `"X"` complete events
    ///   with their latency as the duration,
    /// - monitor rounds become `"C"` counter tracks for the pool level
    ///   and throughput,
    /// - level changes, controller decisions and chaos injections become
    ///   `"i"` instants.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut rows: Vec<String> = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let ts_us = us(e.ts_ns);
            match e.kind {
                EventKind::TxnCommit => rows.push(format!(
                    "{{\"name\":\"txn_commit\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"reads\":{},\"writes\":{},\"attempts\":{}}}}}",
                    us(e.ts_ns.saturating_sub(e.a)),
                    us(e.a),
                    e.tid,
                    e.b >> 32,
                    e.b & 0xFFFF_FFFF,
                    e.c
                )),
                EventKind::TxnAbort => rows.push(format!(
                    "{{\"name\":\"abort:{}\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"attempt\":{}}}}}",
                    codes::abort_name(e.code),
                    us(e.ts_ns.saturating_sub(e.a)),
                    us(e.a),
                    e.tid,
                    e.b
                )),
                EventKind::MonitorRound => rows.push(format!(
                    "{{\"name\":\"pool\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":1,\"args\":{{\"level\":{},\"throughput\":{}}}}}",
                    e.b >> 32,
                    json_f64(f64::from_bits(e.c))
                )),
                EventKind::LevelChange => rows.push(format!(
                    "{{\"name\":\"level {}\\u2192{}\",\"cat\":\"pool\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts_us},\"pid\":1,\"tid\":{}}}",
                    e.a, e.b, e.tid
                )),
                EventKind::Decision => rows.push(format!(
                    "{{\"name\":\"decide:{}\",\"cat\":\"controller\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":{},\"args\":{{\"phase\":\"{}\",\"throughput\":{},\"level\":{},\"new_level\":{}}}}}",
                    codes::policy_name(e.c),
                    e.tid,
                    codes::phase_name(e.code),
                    json_f64(f64::from_bits(e.a)),
                    e.b >> 32,
                    e.b & 0xFFFF_FFFF
                )),
                EventKind::RubicState => rows.push(format!(
                    "{{\"name\":\"rubic_state\",\"cat\":\"controller\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":{},\"args\":{{\"phase\":\"{}\",\"t_p\":{},\"l_max\":{},\"level\":{},\"new_level\":{}}}}}",
                    e.tid,
                    codes::phase_name(e.code),
                    json_f64(f64::from_bits(e.a)),
                    json_f64(f64::from_bits(e.b)),
                    e.c >> 32,
                    e.c & 0xFFFF_FFFF
                )),
                EventKind::Chaos => rows.push(format!(
                    "{{\"name\":\"chaos:{}\",\"cat\":\"chaos\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\"pid\":1,\"tid\":{}}}",
                    codes::chaos_point_name(e.code),
                    e.tid
                )),
                // Begin/restart/lock/extend/worker-delta are summarised
                // by the histograms; as spans they would dwarf the trace.
                _ => {}
            }
        }
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&rows.join(","));
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }

    /// A compact human-readable summary (the `trace_report` example's
    /// core output): abort breakdown, latency quantiles, level timeline.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let total = self.total_aborts();
        let _ = writeln!(s, "aborts: {total} total");
        for (name, n, frac) in self.abort_shares() {
            let _ = writeln!(s, "  {name:<16} {n:>8}  ({:.1}%)", frac * 100.0);
        }
        let _ = writeln!(
            s,
            "commit latency: n={} p50={}ns p99={}ns max={}ns",
            self.commit_latency.count(),
            self.commit_latency.p50(),
            self.commit_latency.p99(),
            self.commit_latency.max()
        );
        let _ = writeln!(
            s,
            "abort->restart: n={} p50={}ns p99={}ns",
            self.abort_restart_latency.count(),
            self.abort_restart_latency.p50(),
            self.abort_restart_latency.p99()
        );
        let _ = writeln!(
            s,
            "lock hold:      n={} p50={}ns p99={}ns",
            self.lock_hold.count(),
            self.lock_hold.p50(),
            self.lock_hold.p99()
        );
        if !self.level_timeline.is_empty() {
            let _ = writeln!(s, "level timeline ({} changes):", self.level_timeline.len());
            for l in &self.level_timeline {
                let _ = writeln!(
                    s,
                    "  t={:>9.3}ms round={:>4} {} -> {}",
                    l.ts_ns as f64 / 1e6,
                    l.round,
                    l.old_level,
                    l.new_level
                );
            }
        }
        if !self.contention.is_empty() {
            let _ = writeln!(s, "contention (top {} culprits):", self.contention.len());
            for c in &self.contention {
                let _ = writeln!(
                    s,
                    "  {:<24} conflicts~{:<8} (±{}) holds={} p50={}ns p99={}ns",
                    c.display_name(),
                    c.count,
                    c.err,
                    c.lock_holds,
                    c.hold_p50_ns,
                    c.hold_p99_ns
                );
            }
        }
        if self.snap != SnapStats::default() {
            let _ = writeln!(
                s,
                "mvcc snapshots: pins={} extends={} demotes={}",
                self.snap.pins, self.snap.extends, self.snap.demotes
            );
        }
        let fired: u64 = self.anomalies.iter().sum();
        if fired > 0 {
            let _ = writeln!(s, "anomalies fired: {fired}");
            for (i, &n) in self.anomalies.iter().enumerate() {
                if n > 0 {
                    let _ = writeln!(s, "  {:<18} {n}", codes::ANOMALY_NAMES[i]);
                }
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(s, "dropped events (ring overflow): {}", self.dropped);
        }
        s
    }
}

/// A serializable point-in-time view of the session's metrics — the
/// feed for dashboards and the future `rubic-serve` SLO loop. Produced
/// by `TraceSession::snapshot()` on demand, or on the configured
/// `snapshot_period` cadence by the collector.
///
/// Cumulative fields cover the whole session; `interval_*`,
/// `throughput` and `abort_rate` cover the window since the previous
/// snapshot.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the trace epoch at capture time.
    pub ts_ns: u64,
    /// Nanoseconds since the previous snapshot (or session start).
    pub interval_ns: u64,
    /// Cumulative committed transactions.
    pub commits: u64,
    /// Commits within this interval.
    pub interval_commits: u64,
    /// Interval commit throughput, transactions per second.
    pub throughput: f64,
    /// Cumulative abort counts by reason code.
    pub aborts_by_reason: [u64; codes::ABORT_REASONS],
    /// Aborts within this interval.
    pub interval_aborts: u64,
    /// Interval `aborts / (commits + aborts)`.
    pub abort_rate: f64,
    /// Cumulative commit-latency median, nanoseconds.
    pub commit_p50_ns: u64,
    /// Cumulative commit-latency 99th percentile, nanoseconds.
    pub commit_p99_ns: u64,
    /// Last applied parallelism level observed.
    pub level: u32,
    /// Cumulative mvcc snapshot counters.
    pub snap: SnapStats,
    /// Cumulative task steals whose thief and victim shared a socket
    /// (`TaskSteal` events without the cross-socket flag).
    pub steals_local: u64,
    /// Cumulative task steals that crossed a socket boundary under the
    /// pool's worker placement.
    pub steals_remote: u64,
    /// Current top-K contention table.
    pub top_conflicts: Vec<ContentionEntry>,
    /// Cumulative ring-overflow drops.
    pub dropped: u64,
}

impl MetricsSnapshot {
    /// Total aborts across all reasons (cumulative).
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.aborts_by_reason.iter().sum()
    }

    /// One JSON object on a single line (JSONL record).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"ts_ns\":{},\"interval_ns\":{},\"commits\":{},\"interval_commits\":{},\"throughput\":{},\"interval_aborts\":{},\"abort_rate\":{},\"commit_p50_ns\":{},\"commit_p99_ns\":{},\"level\":{},\"dropped\":{}",
            self.ts_ns,
            self.interval_ns,
            self.commits,
            self.interval_commits,
            json_f64(self.throughput),
            self.interval_aborts,
            json_f64(self.abort_rate),
            self.commit_p50_ns,
            self.commit_p99_ns,
            self.level,
            self.dropped,
        );
        s.push_str(",\"aborts\":{");
        let mut first = true;
        for (i, &n) in self.aborts_by_reason.iter().enumerate() {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{}\":{}", codes::ABORT_NAMES[i], n);
        }
        s.push('}');
        let _ = write!(
            s,
            ",\"snap\":{{\"pins\":{},\"extends\":{},\"demotes\":{}}}",
            self.snap.pins, self.snap.extends, self.snap.demotes
        );
        let _ = write!(
            s,
            ",\"steals\":{{\"local\":{},\"remote\":{}}}",
            self.steals_local, self.steals_remote
        );
        s.push_str(",\"top_conflicts\":[");
        for (i, c) in self.top_conflicts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&contention_entry_json(c));
        }
        s.push_str("]}");
        s
    }

    /// Prometheus-style text exposition (`# TYPE` lines + samples), the
    /// scrape format the future `rubic-serve` SLO loop consumes.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let _ = writeln!(s, "# TYPE rubic_commits_total counter");
        let _ = writeln!(s, "rubic_commits_total {}", self.commits);
        let _ = writeln!(s, "# TYPE rubic_aborts_total counter");
        for (i, &n) in self.aborts_by_reason.iter().enumerate() {
            let _ = writeln!(
                s,
                "rubic_aborts_total{{reason=\"{}\"}} {}",
                codes::ABORT_NAMES[i],
                n
            );
        }
        let _ = writeln!(s, "# TYPE rubic_throughput_ops gauge");
        let _ = writeln!(s, "rubic_throughput_ops {}", json_f64(self.throughput));
        let _ = writeln!(s, "# TYPE rubic_abort_rate gauge");
        let _ = writeln!(s, "rubic_abort_rate {}", json_f64(self.abort_rate));
        let _ = writeln!(s, "# TYPE rubic_commit_latency_ns summary");
        let _ = writeln!(
            s,
            "rubic_commit_latency_ns{{quantile=\"0.5\"}} {}",
            self.commit_p50_ns
        );
        let _ = writeln!(
            s,
            "rubic_commit_latency_ns{{quantile=\"0.99\"}} {}",
            self.commit_p99_ns
        );
        let _ = writeln!(s, "# TYPE rubic_level gauge");
        let _ = writeln!(s, "rubic_level {}", self.level);
        let _ = writeln!(s, "# TYPE rubic_snapshot_pins_total counter");
        let _ = writeln!(s, "rubic_snapshot_pins_total {}", self.snap.pins);
        let _ = writeln!(s, "# TYPE rubic_snapshot_extends_total counter");
        let _ = writeln!(s, "rubic_snapshot_extends_total {}", self.snap.extends);
        let _ = writeln!(s, "# TYPE rubic_snapshot_demotes_total counter");
        let _ = writeln!(s, "rubic_snapshot_demotes_total {}", self.snap.demotes);
        let _ = writeln!(s, "# TYPE rubic_steals_total counter");
        let _ = writeln!(
            s,
            "rubic_steals_total{{locality=\"local\"}} {}",
            self.steals_local
        );
        let _ = writeln!(
            s,
            "rubic_steals_total{{locality=\"remote\"}} {}",
            self.steals_remote
        );
        let _ = writeln!(s, "# TYPE rubic_conflicts_total counter");
        for c in &self.top_conflicts {
            let _ = writeln!(
                s,
                "rubic_conflicts_total{{tvar=\"{}\"}} {}",
                escape_json(&c.display_name()),
                c.count
            );
        }
        let _ = writeln!(s, "# TYPE rubic_dropped_events_total counter");
        let _ = writeln!(s, "rubic_dropped_events_total {}", self.dropped);
        s
    }
}

/// Renders one contention-table row as a JSON object (shared by the
/// snapshot JSONL export and the post-mortem bundle).
#[must_use]
pub(crate) fn contention_entry_json(c: &ContentionEntry) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(256);
    let _ = write!(s, "{{\"addr\":{},", c.addr);
    match &c.label {
        Some(l) => {
            let _ = write!(s, "\"label\":\"{}\",", escape_json(l));
        }
        None => s.push_str("\"label\":null,"),
    }
    let _ = write!(
        s,
        "\"count\":{},\"err\":{},\"by_reason\":{{",
        c.count, c.err
    );
    let mut first = true;
    for (i, &n) in c.by_reason.iter().enumerate() {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "\"{}\":{}", codes::ABORT_NAMES[i], n);
    }
    let _ = write!(
        s,
        "}},\"lock_holds\":{},\"hold_p50_ns\":{},\"hold_p99_ns\":{},\"snap_extends\":{},\"version_prunes\":{}}}",
        c.lock_holds, c.hold_p50_ns, c.hold_p99_ns, c.snap_extends, c.version_prunes
    );
    s
}

/// Renders a slice of events as JSON-lines (shared by the report's full
/// log export and the post-mortem bundle's flight-window export).
#[must_use]
pub(crate) fn events_to_jsonl(events: &[Event]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        let _ = write!(
            out,
            "{{\"ts_ns\":{},\"kind\":\"{}\",\"code\":{},\"tid\":{},\"a\":{},\"b\":{},\"c\":{}",
            e.ts_ns,
            e.kind.name(),
            e.code,
            e.tid,
            e.a,
            e.b,
            e.c
        );
        if let Some(label) = code_label(e) {
            out.push_str(",\"label\":\"");
            out.push_str(&escape_json(label));
            out.push('"');
        }
        out.push_str("}\n");
    }
    out
}

/// Human label for the code byte, where the kind gives it one.
fn code_label(e: &Event) -> Option<&'static str> {
    match e.kind {
        EventKind::TxnAbort => Some(codes::abort_name(e.code)),
        EventKind::Decision | EventKind::RubicState => Some(codes::phase_name(e.code)),
        EventKind::Chaos => Some(codes::chaos_point_name(e.code)),
        EventKind::Anomaly => Some(codes::anomaly_name(e.code)),
        _ => None,
    }
}

/// Nanoseconds → microseconds with 3 decimals (chrome trace unit).
pub(crate) fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// A JSON-safe rendering of an `f64` (NaN/inf become 0, which JSON
/// cannot represent).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, code: u8, ts: u64, a: u64, b: u64, c: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            code,
            tid: 0,
            a,
            b,
            c,
        }
    }

    fn sample_report() -> TraceReport {
        let mut sink = Sink::new(SinkOptions::default());
        sink.add(ev(EventKind::TxnBegin, 0, 10, 0, 0, 0));
        sink.add(ev(EventKind::TxnCommit, 0, 1_010, 1_000, (4 << 32) | 2, 1));
        sink.add(ev(
            EventKind::TxnAbort,
            codes::ABORT_READ_VALIDATION,
            2_000,
            400,
            0,
            0,
        ));
        sink.add(ev(
            EventKind::TxnAbort,
            codes::ABORT_LOCK_BUSY,
            2_100,
            300,
            1,
            0,
        ));
        sink.add(ev(EventKind::TxnRestart, 0, 2_500, 150, 1, 0));
        sink.add(ev(EventKind::LockHold, 0, 3_000, 250, 0xBEEF, 0));
        sink.add(ev(
            EventKind::MonitorRound,
            0,
            4_000,
            (1 << 32) | 0xA,
            (2 << 32) | 3,
            1234.5f64.to_bits(),
        ));
        sink.add(ev(EventKind::LevelChange, 0, 4_100, 2, 4, 1));
        sink.add(ev(
            EventKind::Decision,
            codes::PHASE_GROWTH_CUBIC,
            4_050,
            1234.5f64.to_bits(),
            (2 << 32) | 4,
            0,
        ));
        sink.add(ev(EventKind::Chaos, 2, 5_000, 0, 0, 0));
        let mut sketch = ConflictSketch::new(8);
        sketch.update(0xBEEF, codes::ABORT_LOCK_BUSY);
        sketch.update(0xBEEF, codes::ABORT_READ_VALIDATION);
        sink.into_report(&sketch)
    }

    #[test]
    fn sink_accumulates_histograms_and_breakdown() {
        let r = sample_report();
        assert_eq!(r.commit_latency.count(), 1);
        assert_eq!(r.abort_restart_latency.count(), 1);
        assert_eq!(r.lock_hold.count(), 1);
        assert_eq!(r.total_aborts(), 2);
        assert_eq!(r.abort_breakdown[codes::ABORT_READ_VALIDATION as usize], 1);
        assert_eq!(r.abort_breakdown[codes::ABORT_LOCK_BUSY as usize], 1);
        assert_eq!(r.level_timeline.len(), 1);
        assert_eq!(r.level_timeline[0].new_level, 4);
    }

    #[test]
    fn abort_shares_sum_to_one() {
        let r = sample_report();
        let shares = r.abort_shares();
        assert_eq!(shares.len(), 2);
        let sum: f64 = shares.iter().map(|(_, _, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_sorted_by_timestamp() {
        let r = sample_report();
        assert!(r.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn jsonl_has_one_valid_object_per_event() {
        let r = sample_report();
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), r.events.len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":\""));
            // Balanced braces is a cheap structural sanity check that
            // catches broken escaping without a JSON parser dependency.
            let open = line.matches('{').count();
            let close = line.matches('}').count();
            assert_eq!(open, close, "{line}");
        }
        assert!(jsonl.contains("\"label\":\"lock-busy\""));
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let r = sample_report();
        let doc = r.to_chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with('}'));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.contains("\"ph\":\"X\""), "complete events present");
        assert!(doc.contains("\"ph\":\"C\""), "counter track present");
        assert!(doc.contains("\"ph\":\"i\""), "instants present");
        assert!(doc.contains("abort:lock-busy"));
        assert!(doc.contains("\"throughput\":1234.5"));
    }

    #[test]
    fn summary_mentions_every_section() {
        let r = sample_report();
        let s = r.summary();
        assert!(s.contains("aborts: 2 total"));
        assert!(s.contains("read-validation"));
        assert!(s.contains("commit latency"));
        assert!(s.contains("level timeline"));
    }

    #[test]
    fn microsecond_rendering() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_234), "1.234");
        assert_eq!(us(1_000_007), "1000.007");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn contention_table_joins_sketch_and_lock_holds() {
        let r = sample_report();
        assert_eq!(r.contention.len(), 1);
        let c = &r.contention[0];
        assert_eq!(c.addr, 0xBEEF);
        assert_eq!(c.count, 2);
        assert_eq!(c.by_reason[codes::ABORT_LOCK_BUSY as usize], 1);
        // The LockHold event in the sample carried addr 0xBEEF.
        assert_eq!(c.lock_holds, 1);
        assert!(c.hold_p50_ns > 0);
    }

    #[test]
    fn snapshot_counters_accumulate() {
        let mut sink = Sink::new(SinkOptions::default());
        sink.add(ev(EventKind::SnapPin, 0, 10, 7, 3, 0));
        sink.add(ev(EventKind::SnapExtend, 0, 20, 7, 9, 0xCAFE));
        sink.add(ev(EventKind::SnapDemote, 0, 30, 9, 0, 0));
        sink.add(ev(EventKind::SnapDemote, 1, 40, 9, 0, 0xCAFE));
        let r = sink.into_report(&ConflictSketch::new(4));
        assert_eq!(
            r.snap,
            SnapStats {
                pins: 1,
                extends: 1,
                demotes: 2
            }
        );
    }

    #[test]
    fn flight_recorder_evicts_outside_window_and_capacity() {
        let mut sink = Sink::new(SinkOptions {
            keep_events: false,
            flight_window_ns: 1_000,
            flight_capacity: 4,
            top_k: 4,
        });
        for ts in [0u64, 100, 200, 5_000] {
            sink.add(ev(EventKind::TxnBegin, 0, ts, 0, 0, 0));
        }
        // ts 5_000 pushed the 0/100/200 events past the 1 µs window.
        let evs = sink.flight_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].ts_ns, 5_000);
        for ts in [5_001u64, 5_002, 5_003, 5_004, 5_005] {
            sink.add(ev(EventKind::TxnBegin, 0, ts, 0, 0, 0));
        }
        // Capacity 4 caps the buffer even inside the window.
        assert_eq!(sink.flight_events().len(), 4);
    }

    #[test]
    fn metrics_snapshot_intervals_and_exports() {
        let mut sink = Sink::new(SinkOptions::default());
        for i in 0..10u64 {
            sink.add(ev(EventKind::TxnCommit, 0, 100 * i, 1_000, 0, 1));
        }
        sink.add(ev(
            EventKind::TxnAbort,
            codes::ABORT_LOCK_BUSY,
            950,
            10,
            0,
            0,
        ));
        sink.add(ev(EventKind::LevelChange, 0, 960, 2, 4, 1));
        let mut sketch = ConflictSketch::new(4);
        sketch.update(0xAB, codes::ABORT_LOCK_BUSY);
        let snap = sink.take_snapshot(&sketch, 1_000_000_000);
        assert_eq!(snap.commits, 10);
        assert_eq!(snap.interval_commits, 10);
        assert!((snap.throughput - 10.0).abs() < 1e-9, "{}", snap.throughput);
        assert_eq!(snap.total_aborts(), 1);
        assert_eq!(snap.level, 4);
        assert_eq!(snap.top_conflicts.len(), 1);

        // Second snapshot: interval counters reset, cumulative persist.
        sink.add(ev(EventKind::TxnCommit, 0, 2_000, 500, 0, 1));
        let snap2 = sink.take_snapshot(&sketch, 2_000_000_000);
        assert_eq!(snap2.commits, 11);
        assert_eq!(snap2.interval_commits, 1);
        assert!((snap2.throughput - 1.0).abs() < 1e-9);

        let line = snap.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"lock-busy\":1"));
        assert!(line.contains("\"top_conflicts\":[{\"addr\":171,"));

        let prom = snap.to_prometheus();
        assert!(prom.contains("rubic_commits_total 10"));
        assert!(prom.contains("rubic_aborts_total{reason=\"lock-busy\"} 1"));
        assert!(prom.contains("rubic_level 4"));
        assert!(prom.contains("rubic_conflicts_total{tvar=\"0xab\"} 1"));
        for line in prom.lines() {
            assert!(
                line.starts_with("# TYPE rubic_") || line.starts_with("rubic_"),
                "{line}"
            );
        }
    }

    #[test]
    fn steal_locality_counters_split_on_the_flag_bit() {
        let mut sink = Sink::new(SinkOptions::default());
        // bit 0 = gated, bit 1 = cross-socket: gating must not affect
        // the locality split.
        sink.add(ev(EventKind::TaskSteal, 0b00, 10, 1 << 32, 4, 8));
        sink.add(ev(EventKind::TaskSteal, 0b01, 20, 1 << 32, 4, 8));
        sink.add(ev(EventKind::TaskSteal, 0b10, 30, 2 << 32, 4, 8));
        sink.add(ev(EventKind::TaskSteal, 0b11, 40, 2 << 32, 4, 8));
        let snap = sink.take_snapshot(&ConflictSketch::new(4), 1_000);
        assert_eq!(snap.steals_local, 2);
        assert_eq!(snap.steals_remote, 2);
        let line = snap.to_json_line();
        assert!(line.contains("\"steals\":{\"local\":2,\"remote\":2}"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("rubic_steals_total{locality=\"local\"} 2"));
        assert!(prom.contains("rubic_steals_total{locality=\"remote\"} 2"));
    }

    #[test]
    fn commit_window_resets_on_take() {
        let mut sink = Sink::new(SinkOptions::default());
        sink.add(ev(EventKind::TxnCommit, 0, 10, 5_000, 0, 1));
        let w = sink.take_commit_window();
        assert_eq!(w.count(), 1);
        assert_eq!(sink.take_commit_window().count(), 0);
        // Cumulative histogram unaffected.
        assert_eq!(sink.commit_latency.count(), 1);
    }

    #[test]
    fn anomaly_events_counted() {
        let mut sink = Sink::new(SinkOptions::default());
        sink.add(ev(
            EventKind::Anomaly,
            codes::ANOMALY_ABORT_STORM,
            10,
            5,
            100,
            1,
        ));
        let r = sink.into_report(&ConflictSketch::new(4));
        assert_eq!(r.anomalies[codes::ANOMALY_ABORT_STORM as usize], 1);
        assert!(r.summary().contains("abort-storm"));
    }
}
