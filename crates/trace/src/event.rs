//! The fixed-size binary event record and its code tables.
//!
//! Instrumented code emits one [`Event`] per occurrence; the record is a
//! flat 40-byte struct so a ring slot is five `u64` words and producers
//! never allocate. Meaning is carried by [`EventKind`] plus a
//! kind-specific `code` byte and three `u64` payload words whose layout
//! is documented per kind (and mirrored in README's event-schema table).

/// What an [`Event`] describes.
///
/// Payload conventions (`a`/`b`/`c` are the event's payload words;
/// `code` is the kind-specific discriminator byte):
///
/// | kind | code | a | b | c |
/// |---|---|---|---|---|
/// | `TxnBegin` | 0 | 0 | 0 | 0 |
/// | `TxnCommit` | 0 | latency ns (begin→commit) | `reads << 32 \| writes` | attempts |
/// | `TxnAbort` | abort reason | ns since attempt start | attempt index | culprit lock address (0 if unknown) |
/// | `TxnRestart` | 0 | backoff ns (abort→restart) | attempt index | 0 |
/// | `LockHold` | 0 commit / 1 abort release | hold ns | lock address | 0 |
/// | `ClockExtend` | 0 | old read version | new read version | 0 |
/// | `LevelChange` | 0 | old level | new level | round |
/// | `MonitorRound` | 0 | `round << 32 \| commits Δ` | `level << 32 \| aborts Δ` | throughput `f64` bits |
/// | `WorkerDelta` | 0 | `worker << 32 \| commits Δ` | round | aborts Δ (this worker) |
/// | `Decision` | phase | throughput `f64` bits | `level << 32 \| new level` | policy id |
/// | `RubicState` | phase | `T_p` `f64` bits | `L_max` `f64` bits | `level << 32 \| new level` |
/// | `Chaos` | chaos point | action code | spin count | 0 |
/// | `TaskSteal` | bit 0: victim gated, bit 1: cross-socket | `thief << 32 \| victim` | tasks moved | victim shard length before |
/// | `WorkerPark` | 0 park / 1 unpark | worker tid | level at transition | 0 |
/// | `SnapshotRead` | 0 | pinned snapshot timestamp (rv) | visible version stamp | 0 |
/// | `VersionPrune` | 0 | lock address | versions dropped | min active snapshot timestamp |
/// | `SnapPin` | 0 | pinned snapshot timestamp (rv) | registry slot index | 0 |
/// | `SnapExtend` | 0 | old snapshot timestamp | new snapshot timestamp | lock address that overflowed |
/// | `SnapDemote` | 0 read-only / 1 write | snapshot timestamp at demotion | 0 | lock address (write demote) |
/// | `Anomaly` | anomaly kind | observed value | configured threshold | round (0 if n/a) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A transaction (one `atomically` call) started its first attempt.
    TxnBegin = 0,
    /// A transaction committed.
    TxnCommit = 1,
    /// An attempt aborted; `code` is the abort-reason code.
    TxnAbort = 2,
    /// An aborted transaction finished backing off and restarted.
    TxnRestart = 3,
    /// A write lock was released after being held for `a` ns.
    LockHold = 4,
    /// A successful timestamp extension moved the read version forward.
    ClockExtend = 5,
    /// The pool monitor applied a new parallelism level.
    LevelChange = 6,
    /// One monitor round completed (Algorithm 1's measurement step).
    MonitorRound = 7,
    /// Per-worker completed-task delta for one monitor round.
    WorkerDelta = 8,
    /// A controller's `decide()` consumed a sample (Algorithm 2 input).
    Decision = 9,
    /// RUBIC's full CIMD state at a decision point.
    RubicState = 10,
    /// A chaos hook fired at an STM protocol point.
    Chaos = 11,
    /// A dry worker stole a batch of tasks from another worker's shard.
    TaskSteal = 12,
    /// A worker parked on the gate (code 0) or resumed from it (code 1).
    WorkerPark = 13,
    /// A multi-version snapshot read resolved through the version chain
    /// (the current version was newer than the pinned timestamp).
    SnapshotRead = 14,
    /// A writing commit pruned reclaimable entries from a version chain.
    VersionPrune = 15,
    /// A read-only transaction pinned a snapshot timestamp in the
    /// registry (mvcc mode).
    SnapPin = 16,
    /// A pinned snapshot's timestamp was refreshed in place after a
    /// bounded version chain overflowed beneath it (mvcc mode).
    SnapExtend = 17,
    /// The snapshot path gave up and fell back to the classic validated
    /// protocol (registry full, or a write inside snapshot mode).
    SnapDemote = 18,
    /// An anomaly watchdog fired (abort storm, level oscillation,
    /// latency breach); usually accompanied by a post-mortem dump.
    Anomaly = 19,
}

impl EventKind {
    /// All kinds, in discriminant order (for decode tables).
    pub const ALL: [EventKind; 20] = [
        EventKind::TxnBegin,
        EventKind::TxnCommit,
        EventKind::TxnAbort,
        EventKind::TxnRestart,
        EventKind::LockHold,
        EventKind::ClockExtend,
        EventKind::LevelChange,
        EventKind::MonitorRound,
        EventKind::WorkerDelta,
        EventKind::Decision,
        EventKind::RubicState,
        EventKind::Chaos,
        EventKind::TaskSteal,
        EventKind::WorkerPark,
        EventKind::SnapshotRead,
        EventKind::VersionPrune,
        EventKind::SnapPin,
        EventKind::SnapExtend,
        EventKind::SnapDemote,
        EventKind::Anomaly,
    ];

    /// Decodes a discriminant byte.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Self::ALL.get(v as usize).copied()
    }

    /// Stable lower-case name used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TxnBegin => "txn_begin",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnAbort => "txn_abort",
            EventKind::TxnRestart => "txn_restart",
            EventKind::LockHold => "lock_hold",
            EventKind::ClockExtend => "clock_extend",
            EventKind::LevelChange => "level_change",
            EventKind::MonitorRound => "monitor_round",
            EventKind::WorkerDelta => "worker_delta",
            EventKind::Decision => "decision",
            EventKind::RubicState => "rubic_state",
            EventKind::Chaos => "chaos",
            EventKind::TaskSteal => "task_steal",
            EventKind::WorkerPark => "worker_park",
            EventKind::SnapshotRead => "snapshot_read",
            EventKind::VersionPrune => "version_prune",
            EventKind::SnapPin => "snap_pin",
            EventKind::SnapExtend => "snap_extend",
            EventKind::SnapDemote => "snap_demote",
            EventKind::Anomaly => "anomaly",
        }
    }
}

/// One trace record. `ts_ns` is nanoseconds since the session epoch;
/// `tid` is the emitting thread's ring index (registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace session started.
    pub ts_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Kind-specific discriminator (abort reason, phase, chaos point).
    pub code: u8,
    /// Emitting thread's ring index.
    pub tid: u16,
    /// First payload word (see [`EventKind`] table).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

impl Event {
    /// Packs the event into five ring-slot words.
    #[must_use]
    pub fn encode(&self) -> [u64; 5] {
        let meta =
            u64::from(self.kind as u8) | (u64::from(self.code) << 8) | (u64::from(self.tid) << 16);
        [self.ts_ns, meta, self.a, self.b, self.c]
    }

    /// Unpacks five ring-slot words; `None` if the kind byte is invalid
    /// (torn or corrupted slot — never expected from a healthy ring).
    #[must_use]
    pub fn decode(w: [u64; 5]) -> Option<Event> {
        Some(Event {
            ts_ns: w[0],
            kind: EventKind::from_u8((w[1] & 0xFF) as u8)?,
            code: ((w[1] >> 8) & 0xFF) as u8,
            tid: ((w[1] >> 16) & 0xFFFF) as u16,
            a: w[2],
            b: w[3],
            c: w[4],
        })
    }
}

/// Stable code tables shared with the instrumented crates.
///
/// `rubic-stm`'s `AbortReason`, the controllers' phase markers and the
/// chaos points all serialise through these constants; each instrumented
/// crate asserts its own enum matches in a unit test so the exporter
/// names can never silently drift from the producers.
pub mod codes {
    /// Abort: commit-time or extension read-set validation failed.
    pub const ABORT_READ_VALIDATION: u8 = 0;
    /// Abort: a needed lock was held by a concurrent writer.
    pub const ABORT_LOCK_BUSY: u8 = 1;
    /// Abort: the contention manager killed the attempt.
    pub const ABORT_CM_KILL: u8 = 2;
    /// Abort: injected by the chaos hook.
    pub const ABORT_CHAOS: u8 = 3;
    /// Abort: the transaction body returned `Err` itself.
    pub const ABORT_EXPLICIT: u8 = 4;
    /// Abort: a snapshot read missed its version in a bounded chain
    /// (mvcc mode; transient — the retry re-pins a fresh timestamp).
    pub const ABORT_SNAPSHOT_STALE: u8 = 5;
    /// Number of distinct abort reasons.
    pub const ABORT_REASONS: usize = 6;

    /// Names for the abort-reason codes, indexed by code.
    pub const ABORT_NAMES: [&str; ABORT_REASONS] = [
        "read-validation",
        "lock-busy",
        "cm-kill",
        "chaos",
        "explicit",
        "snapshot-stale",
    ];

    /// Decodes an abort-reason code (out-of-range codes map to a fixed
    /// placeholder rather than panicking in an exporter).
    #[must_use]
    pub fn abort_name(code: u8) -> &'static str {
        ABORT_NAMES.get(code as usize).copied().unwrap_or("unknown")
    }

    /// Controller phase: growth branch, cubic round.
    pub const PHASE_GROWTH_CUBIC: u8 = 0;
    /// Controller phase: growth branch, linear (+1) round.
    pub const PHASE_GROWTH_LINEAR: u8 = 1;
    /// Controller phase: reduction branch, linear (−2) step.
    pub const PHASE_REDUCE_LINEAR: u8 = 2;
    /// Controller phase: reduction branch, multiplicative (αL) cut.
    pub const PHASE_REDUCE_MULT: u8 = 3;
    /// Controller phase: exponential start (F2C2's first phase).
    pub const PHASE_EXPONENTIAL: u8 = 4;
    /// Controller phase: static / stateless decision.
    pub const PHASE_STATIC: u8 = 5;

    /// Names for the phase codes, indexed by code.
    pub const PHASE_NAMES: [&str; 6] = [
        "growth-cubic",
        "growth-linear",
        "reduce-linear",
        "reduce-mult",
        "exponential",
        "static",
    ];

    /// Decodes a phase code.
    #[must_use]
    pub fn phase_name(code: u8) -> &'static str {
        PHASE_NAMES.get(code as usize).copied().unwrap_or("unknown")
    }

    /// Policy ids carried by `Decision` events' `c` word.
    pub const POLICY_NAMES: [&str; 10] = [
        "RUBIC",
        "EBS",
        "F2C2",
        "AIMD",
        "DirectedAIAD",
        "CIMD",
        "Greedy",
        "EqualShare",
        "Fixed",
        "AIAD",
    ];

    /// Decodes a policy id.
    #[must_use]
    pub fn policy_name(id: u64) -> &'static str {
        usize::try_from(id)
            .ok()
            .and_then(|i| POLICY_NAMES.get(i).copied())
            .unwrap_or("unknown")
    }

    /// Anomaly: the pool's stall watchdog saw zero progress for its
    /// configured number of rounds — the abort-storm signature.
    pub const ANOMALY_ABORT_STORM: u8 = 0;
    /// Anomaly: the applied parallelism level flapped direction more
    /// often than the oscillation watchdog's threshold within its window.
    pub const ANOMALY_LEVEL_OSCILLATION: u8 = 1;
    /// Anomaly: commit-latency p99 over the last drain window exceeded
    /// the configured threshold.
    pub const ANOMALY_P99_BREACH: u8 = 2;
    /// Anomaly: an operator (or test) requested a dump explicitly.
    pub const ANOMALY_MANUAL: u8 = 3;
    /// Anomaly: a benchmark repetition set's stddev/mean ratio exceeded
    /// the `--stddev-ratio` gate.
    pub const ANOMALY_BENCH_STDDEV: u8 = 4;

    /// Names for the anomaly kinds, indexed by code. These double as
    /// post-mortem bundle trigger strings.
    pub const ANOMALY_NAMES: [&str; 5] = [
        "abort-storm",
        "level-oscillation",
        "p99-breach",
        "manual",
        "bench-stddev",
    ];

    /// Decodes an anomaly code.
    #[must_use]
    pub fn anomaly_name(code: u8) -> &'static str {
        ANOMALY_NAMES
            .get(code as usize)
            .copied()
            .unwrap_or("unknown")
    }

    /// Chaos point names (`LockSample`, `PreValidate`, `PrePublish`),
    /// indexed by the engine's `ChaosPoint` discriminant.
    pub const CHAOS_POINT_NAMES: [&str; 3] = ["lock-sample", "pre-validate", "pre-publish"];

    /// Decodes a chaos-point code.
    #[must_use]
    pub fn chaos_point_name(code: u8) -> &'static str {
        CHAOS_POINT_NAMES
            .get(code as usize)
            .copied()
            .unwrap_or("unknown")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let e = Event {
            ts_ns: 123_456_789,
            kind: EventKind::TxnAbort,
            code: codes::ABORT_LOCK_BUSY,
            tid: 513,
            a: u64::MAX,
            b: 42,
            c: 7,
        };
        assert_eq!(Event::decode(e.encode()), Some(e));
    }

    #[test]
    fn every_kind_roundtrips() {
        for kind in EventKind::ALL {
            let e = Event {
                ts_ns: 1,
                kind,
                code: 2,
                tid: 3,
                a: 4,
                b: 5,
                c: 6,
            };
            assert_eq!(Event::decode(e.encode()).unwrap().kind, kind);
            assert_eq!(EventKind::from_u8(kind as u8), Some(kind));
        }
    }

    #[test]
    fn invalid_kind_rejected() {
        let mut w = Event {
            ts_ns: 0,
            kind: EventKind::TxnBegin,
            code: 0,
            tid: 0,
            a: 0,
            b: 0,
            c: 0,
        }
        .encode();
        w[1] = 0xFF; // kind byte 255: no such kind
        assert_eq!(Event::decode(w), None);
    }

    #[test]
    fn code_tables_decode() {
        assert_eq!(codes::abort_name(codes::ABORT_CHAOS), "chaos");
        assert_eq!(codes::abort_name(200), "unknown");
        assert_eq!(codes::phase_name(codes::PHASE_REDUCE_MULT), "reduce-mult");
        assert_eq!(codes::policy_name(0), "RUBIC");
        assert_eq!(codes::chaos_point_name(1), "pre-validate");
        assert_eq!(
            codes::anomaly_name(codes::ANOMALY_ABORT_STORM),
            "abort-storm"
        );
        assert_eq!(codes::anomaly_name(codes::ANOMALY_P99_BREACH), "p99-breach");
        assert_eq!(codes::anomaly_name(99), "unknown");
    }

    #[test]
    fn snapshot_kinds_have_stable_discriminants() {
        // The mvcc snapshot-protocol and anomaly kinds append after the
        // PR 6 tail; earlier discriminants are frozen by exported data.
        assert_eq!(EventKind::SnapPin as u8, 16);
        assert_eq!(EventKind::SnapExtend as u8, 17);
        assert_eq!(EventKind::SnapDemote as u8, 18);
        assert_eq!(EventKind::Anomaly as u8, 19);
        assert_eq!(EventKind::from_u8(16), Some(EventKind::SnapPin));
        assert_eq!(EventKind::from_u8(20), None);
    }
}
