//! Self-contained post-mortem bundles.
//!
//! A dump — requested by an operator, a benchmark gate, or an anomaly
//! watchdog — freezes the flight-recorder window and the session's
//! cumulative aggregates into one directory an engineer (or a later
//! tool) can read without the process that produced it:
//!
//! ```text
//! <dir>/postmortem-<seq>-<trigger>/
//!   manifest.json     schema version, trigger, config, feature extras
//!   events.jsonl      flight-recorder window (same format as to_jsonl)
//!   decisions.jsonl   controller Decision/RubicState audit (decoded:
//!                     policy, phase, throughput, T_p, L_max, levels)
//!   histograms.json   commit / abort→restart / lock-hold quantiles
//!   contention.json   top-K contention table (labels, per-reason)
//!   snapshot.json     point-in-time MetricsSnapshot at dump time
//! ```
//!
//! The bundle schema is versioned by [`BUNDLE_SCHEMA`]; every file that
//! needs self-description carries it. The writer never panics on I/O —
//! errors surface to the caller (the collector logs and drops them).

use std::io;
use std::path::{Path, PathBuf};

use rubic_sync::atomic::{AtomicU64, Ordering};

use crate::event::{codes, Event, EventKind};
use crate::hist::LogHistogram;
use crate::report::{
    contention_entry_json, escape_json, events_to_jsonl, json_f64, ContentionEntry, MetricsSnapshot,
};

/// Bundle schema identifier written into `manifest.json`,
/// `contention.json` and `histograms.json`. Bump on any layout change.
pub const BUNDLE_SCHEMA: &str = "rubic-postmortem/v1";

/// Monotone bundle sequence number, process-wide, so concurrent or
/// repeated dumps never collide on a directory name.
// ordering: Relaxed — a pure ID allocator; no data is published through it.
static BUNDLE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Everything a dump snapshots out of the session under the sink lock.
pub(crate) struct BundleInput<'a> {
    /// Trigger string (an `codes::ANOMALY_NAMES` entry or a caller tag).
    pub(crate) trigger: &'a str,
    /// Flight-recorder window, timestamp-sorted.
    pub(crate) events: &'a [Event],
    /// Cumulative commit latency.
    pub(crate) commit_latency: &'a LogHistogram,
    /// Cumulative abort→restart latency.
    pub(crate) abort_restart_latency: &'a LogHistogram,
    /// Cumulative lock-hold time.
    pub(crate) lock_hold: &'a LogHistogram,
    /// Top-K contention table at dump time.
    pub(crate) contention: &'a [ContentionEntry],
    /// Point-in-time metrics at dump time.
    pub(crate) snapshot: &'a MetricsSnapshot,
    /// Caller-supplied manifest extras (feature flags, seeds, config).
    pub(crate) manifest: &'a [(String, String)],
    /// Human-readable session-config description for the manifest.
    pub(crate) config: String,
    /// Cumulative ring-overflow drops at dump time.
    pub(crate) dropped: u64,
}

fn hist_json(name: &str, h: &LogHistogram) -> String {
    format!(
        "\"{name}\":{{\"count\":{},\"min\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
        h.count(),
        h.min(),
        json_f64(h.mean()),
        h.p50(),
        h.p99(),
        h.max()
    )
}

/// Sanitises a trigger string for use in a path component.
fn path_tag(trigger: &str) -> String {
    trigger
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes one bundle under `dir`, returning the created bundle
/// directory path.
///
/// # Errors
/// Any filesystem error creating the directory or writing a file.
pub(crate) fn write_bundle(dir: &Path, input: &BundleInput<'_>) -> io::Result<PathBuf> {
    use std::fmt::Write as _;

    // ordering: Relaxed — ID allocation only.
    let seq = BUNDLE_SEQ.fetch_add(1, Ordering::Relaxed);
    let bundle = dir.join(format!("postmortem-{seq}-{}", path_tag(input.trigger)));
    std::fs::create_dir_all(&bundle)?;

    // manifest.json
    let mut manifest = String::from("{\n");
    let _ = writeln!(manifest, "  \"schema\": \"{BUNDLE_SCHEMA}\",");
    let _ = writeln!(manifest, "  \"seq\": {seq},");
    let _ = writeln!(
        manifest,
        "  \"trigger\": \"{}\",",
        escape_json(input.trigger)
    );
    let _ = writeln!(manifest, "  \"ts_ns\": {},", input.snapshot.ts_ns);
    let _ = writeln!(
        manifest,
        "  \"config\": \"{}\",",
        escape_json(&input.config)
    );
    let _ = writeln!(manifest, "  \"dropped_events\": {},", input.dropped);
    let _ = writeln!(manifest, "  \"flight_events\": {},", input.events.len());
    manifest.push_str("  \"extras\": {");
    for (i, (k, v)) in input.manifest.iter().enumerate() {
        if i > 0 {
            manifest.push(',');
        }
        let _ = write!(
            manifest,
            "\n    \"{}\": \"{}\"",
            escape_json(k),
            escape_json(v)
        );
    }
    if !input.manifest.is_empty() {
        manifest.push_str("\n  ");
    }
    manifest.push_str("}\n}\n");
    std::fs::write(bundle.join("manifest.json"), manifest)?;

    // events.jsonl — the flight window.
    std::fs::write(bundle.join("events.jsonl"), events_to_jsonl(input.events))?;

    // decisions.jsonl — the controller audit, decoded.
    let mut decisions = String::new();
    for e in input.events {
        match e.kind {
            EventKind::Decision => {
                let _ = writeln!(
                    decisions,
                    "{{\"ts_ns\":{},\"kind\":\"decision\",\"policy\":\"{}\",\"phase\":\"{}\",\"throughput\":{},\"level\":{},\"new_level\":{}}}",
                    e.ts_ns,
                    codes::policy_name(e.c),
                    codes::phase_name(e.code),
                    json_f64(f64::from_bits(e.a)),
                    e.b >> 32,
                    e.b & 0xFFFF_FFFF,
                );
            }
            EventKind::RubicState => {
                let _ = writeln!(
                    decisions,
                    "{{\"ts_ns\":{},\"kind\":\"rubic_state\",\"phase\":\"{}\",\"t_p\":{},\"l_max\":{},\"level\":{},\"new_level\":{}}}",
                    e.ts_ns,
                    codes::phase_name(e.code),
                    json_f64(f64::from_bits(e.a)),
                    json_f64(f64::from_bits(e.b)),
                    e.c >> 32,
                    e.c & 0xFFFF_FFFF,
                );
            }
            _ => {}
        }
    }
    std::fs::write(bundle.join("decisions.jsonl"), decisions)?;

    // histograms.json
    let hists = format!(
        "{{\"schema\": \"{BUNDLE_SCHEMA}\",{},{},{}}}\n",
        hist_json("commit_latency_ns", input.commit_latency),
        hist_json("abort_restart_ns", input.abort_restart_latency),
        hist_json("lock_hold_ns", input.lock_hold),
    );
    std::fs::write(bundle.join("histograms.json"), hists)?;

    // contention.json
    let mut contention = format!("{{\"schema\": \"{BUNDLE_SCHEMA}\",\"entries\":[");
    for (i, c) in input.contention.iter().enumerate() {
        if i > 0 {
            contention.push(',');
        }
        contention.push('\n');
        contention.push_str(&contention_entry_json(c));
    }
    contention.push_str("\n]}\n");
    std::fs::write(bundle.join("contention.json"), contention)?;

    // snapshot.json
    let mut snap = input.snapshot.to_json_line();
    snap.push('\n');
    std::fs::write(bundle.join("snapshot.json"), snap)?;

    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SnapStats;

    fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            ts_ns: 1_000,
            interval_ns: 1_000,
            commits: 5,
            interval_commits: 5,
            throughput: 5_000_000.0,
            aborts_by_reason: [1, 2, 0, 0, 0, 0],
            interval_aborts: 3,
            abort_rate: 3.0 / 8.0,
            commit_p50_ns: 100,
            commit_p99_ns: 900,
            level: 2,
            snap: SnapStats::default(),
            steals_local: 4,
            steals_remote: 1,
            top_conflicts: Vec::new(),
            dropped: 0,
        }
    }

    #[test]
    fn bundle_writes_all_files_with_valid_structure() {
        let tmp = std::env::temp_dir().join(format!("rubic-bundle-test-{}", std::process::id()));
        let events = vec![
            Event {
                ts_ns: 10,
                kind: EventKind::TxnAbort,
                code: codes::ABORT_LOCK_BUSY,
                tid: 0,
                a: 5,
                b: 1,
                c: 0xAB,
            },
            Event {
                ts_ns: 20,
                kind: EventKind::Decision,
                code: codes::PHASE_GROWTH_CUBIC,
                tid: 1,
                a: 123.5f64.to_bits(),
                b: (2 << 32) | 3,
                c: 0,
            },
            Event {
                ts_ns: 30,
                kind: EventKind::RubicState,
                code: codes::PHASE_GROWTH_CUBIC,
                tid: 1,
                a: 9.5f64.to_bits(),
                b: 4.0f64.to_bits(),
                c: (2 << 32) | 3,
            },
        ];
        let hist = LogHistogram::new();
        let contention = vec![ContentionEntry {
            addr: 0xAB,
            label: Some("hot".into()),
            count: 3,
            err: 0,
            by_reason: [0, 3, 0, 0, 0, 0],
            lock_holds: 3,
            hold_p50_ns: 64,
            hold_p99_ns: 128,
            snap_extends: 0,
            version_prunes: 0,
        }];
        let snap = snapshot();
        let input = BundleInput {
            trigger: "manual",
            events: &events,
            commit_latency: &hist,
            abort_restart_latency: &hist,
            lock_hold: &hist,
            contention: &contention,
            snapshot: &snap,
            manifest: &[("features".to_string(), "trace,chaos".to_string())],
            config: "ring_capacity=16384 drain_period=5ms".to_string(),
            dropped: 0,
        };
        let bundle = write_bundle(&tmp, &input).expect("bundle written");
        for file in [
            "manifest.json",
            "events.jsonl",
            "decisions.jsonl",
            "histograms.json",
            "contention.json",
            "snapshot.json",
        ] {
            let body = std::fs::read_to_string(bundle.join(file)).expect(file);
            assert!(!body.is_empty(), "{file} empty");
            // Balanced braces: cheap structural validity without a JSON
            // parser in the tree.
            assert_eq!(
                body.matches('{').count(),
                body.matches('}').count(),
                "{file}"
            );
        }
        let manifest = std::fs::read_to_string(bundle.join("manifest.json")).unwrap();
        assert!(manifest.contains(BUNDLE_SCHEMA));
        assert!(manifest.contains("\"trigger\": \"manual\""));
        assert!(manifest.contains("\"features\": \"trace,chaos\""));
        let contention_body = std::fs::read_to_string(bundle.join("contention.json")).unwrap();
        assert!(contention_body.contains("\"label\":\"hot\""));
        assert!(contention_body.contains("\"lock-busy\":3"));
        let decisions = std::fs::read_to_string(bundle.join("decisions.jsonl")).unwrap();
        assert_eq!(decisions.lines().count(), 2);
        assert!(decisions.contains("\"t_p\":9.5"));
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn bundle_dirs_never_collide() {
        let tmp = std::env::temp_dir().join(format!("rubic-bundle-seq-{}", std::process::id()));
        let hist = LogHistogram::new();
        let snap = snapshot();
        let input = BundleInput {
            trigger: "manual",
            events: &[],
            commit_latency: &hist,
            abort_restart_latency: &hist,
            lock_hold: &hist,
            contention: &[],
            snapshot: &snap,
            manifest: &[],
            config: String::new(),
            dropped: 0,
        };
        let a = write_bundle(&tmp, &input).unwrap();
        let b = write_bundle(&tmp, &input).unwrap();
        assert_ne!(a, b);
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
