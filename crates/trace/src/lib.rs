//! `rubic-trace`: low-overhead structured event tracing for the RUBIC
//! workspace.
//!
//! The pipeline:
//!
//! 1. Instrumented code ([`rubic-stm`'s protocol sites, the pool
//!    monitor, the controllers) calls [`emit`] with a fixed-size binary
//!    [`Event`]. When no [`TraceSession`] is active this is a single
//!    relaxed atomic load.
//! 2. Each emitting thread owns a lock-free [`Ring`] with a drop-oldest
//!    overflow policy — producers never block and never allocate on the
//!    hot path.
//! 3. A collector thread drains all rings into [`LogHistogram`]s
//!    (commit latency, abort→restart latency, lock hold time), an
//!    abort-reason breakdown, a parallelism-level timeline, and —
//!    optionally — the full event log.
//! 4. [`TraceSession::finish`] returns a [`TraceReport`] exportable as
//!    JSON-lines or as a `chrome://tracing` document for Perfetto.
//!
//! On top of the pipeline sits the diagnosis layer: abort sites call
//! [`note_conflict`] to feed per-thread space-saving sketches
//! ([`ConflictSketch`]) that merge into a top-K contention table naming
//! culprit `TVars` (labelled via [`set_label`] / `TVar::labelled`); the
//! sink keeps a bounded always-on flight recorder of the last few
//! seconds of events; anomaly watchdogs (or [`request_postmortem`])
//! freeze both into a self-contained post-mortem bundle (schema
//! [`BUNDLE_SCHEMA`]); and [`TraceSession::snapshot`] exports
//! point-in-time [`MetricsSnapshot`]s as JSONL or Prometheus text.
//!
//! The instrumented crates gate their calls behind their own `trace`
//! cargo feature, compiling to nothing when it is off; this crate itself
//! is always functional.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss,
    clippy::module_name_repetitions
)]

mod bundle;
mod event;
mod hist;
mod labels;
mod recorder;
mod report;
mod ring;
mod sketch;

pub use bundle::BUNDLE_SCHEMA;
pub use event::{codes, Event, EventKind};
pub use hist::LogHistogram;
pub use labels::{label, set_label};
pub use recorder::{
    emit, is_enabled, note_conflict, now_ns, request_postmortem, TraceConfig, TraceSession,
};
pub use report::{ContentionEntry, LevelSample, MetricsSnapshot, SnapStats, TraceReport};
pub use ring::Ring;
pub use sketch::{ConflictSketch, CulpritEntry};
