//! `rubic-trace`: low-overhead structured event tracing for the RUBIC
//! workspace.
//!
//! The pipeline:
//!
//! 1. Instrumented code ([`rubic-stm`'s protocol sites, the pool
//!    monitor, the controllers) calls [`emit`] with a fixed-size binary
//!    [`Event`]. When no [`TraceSession`] is active this is a single
//!    relaxed atomic load.
//! 2. Each emitting thread owns a lock-free [`Ring`] with a drop-oldest
//!    overflow policy — producers never block and never allocate on the
//!    hot path.
//! 3. A collector thread drains all rings into [`LogHistogram`]s
//!    (commit latency, abort→restart latency, lock hold time), an
//!    abort-reason breakdown, a parallelism-level timeline, and —
//!    optionally — the full event log.
//! 4. [`TraceSession::finish`] returns a [`TraceReport`] exportable as
//!    JSON-lines or as a `chrome://tracing` document for Perfetto.
//!
//! The instrumented crates gate their calls behind their own `trace`
//! cargo feature, compiling to nothing when it is off; this crate itself
//! is always functional.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_precision_loss,
    clippy::module_name_repetitions
)]

mod event;
mod hist;
mod recorder;
mod report;
mod ring;

pub use event::{codes, Event, EventKind};
pub use hist::LogHistogram;
pub use recorder::{emit, is_enabled, now_ns, TraceConfig, TraceSession};
pub use report::{LevelSample, TraceReport};
pub use ring::Ring;
