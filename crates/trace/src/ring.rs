//! The per-thread event ring: a bounded lock-free queue with a
//! **drop-oldest** overflow policy.
//!
//! Each instrumented thread owns one `Ring` as its producer; the
//! collector thread is the consumer. The implementation is the classic
//! Vyukov bounded queue — per-slot sequence numbers arbitrate access, so
//! a push never blocks and never tears a record. On overflow the
//! *producer* dequeues (and discards) the oldest record itself, bumps
//! the [`dropped`](Ring::dropped) counter, and retries: tracing loses
//! the oldest data under pressure, never stalls a worker, and never
//! loses data silently.
//!
//! Slots store the five encoded words of an [`crate::Event`] in plain
//! `AtomicU64`s. Between winning a slot's sequence CAS and publishing
//! the new sequence, exactly one thread touches the words, so relaxed
//! word accesses are single-owner; the sequence number's Acquire/Release
//! pair carries the payload across threads. No `unsafe` anywhere.

use crossbeam_utils::CachePadded;
use rubic_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot {
    seq: AtomicUsize,
    words: [AtomicU64; 5],
}

/// A bounded lock-free event ring (drop-oldest on overflow).
pub struct Ring {
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    dropped: CachePadded<AtomicU64>,
    slots: Box<[Slot]>,
}

impl Ring {
    /// Creates a ring holding `capacity` events, rounded up to a power
    /// of two (minimum 8).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Ring {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            dropped: CachePadded::new(AtomicU64::new(0)),
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    words: Default::default(),
                })
                .collect(),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events discarded by the drop-oldest overflow policy so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) // ordering: monitoring read of a counter
    }

    /// Events currently buffered (approximate under concurrency).
    #[must_use]
    pub fn len(&self) -> usize {
        // ordering: advisory occupancy estimate — documented as
        // approximate; no caller derives ownership from it.
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when nothing is buffered (approximate under concurrency).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `words`, discarding the oldest buffered event first if
    /// the ring is full. Never blocks.
    // The Vyukov sequence comparison relies on wrapping signed
    // differences between free-running counters.
    #[allow(clippy::cast_possible_wrap)]
    pub fn push(&self, words: [u64; 5]) {
        let cap = self.slots.len();
        // ordering: Vyukov protocol — head/tail are mere position hints;
        // the per-slot `seq` Acquire/Release pair is the only edge that
        // carries payload words across threads. A stale position costs a
        // CAS retry, never a torn or lost record.
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & (cap - 1)];
            let seq = slot.seq.load(Ordering::Acquire);
            match (seq as isize).wrapping_sub(pos as isize).cmp(&0) {
                std::cmp::Ordering::Equal => {
                    // ordering: the CAS only claims a position; the slot
                    // payload is published by the `seq` Release below,
                    // so neither CAS arm needs to order anything.
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // ordering: between the CAS win and the seq
                            // Release this thread owns the slot's words
                            // exclusively; the Release fence publishes
                            // them to the consumer's Acquire.
                            for (w, &v) in slot.words.iter().zip(&words) {
                                w.store(v, Ordering::Relaxed);
                            }
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return;
                        }
                        Err(now) => pos = now,
                    }
                }
                std::cmp::Ordering::Less => {
                    // Full: evict the oldest (drop-oldest policy), retry.
                    // ordering: stat counter + position-hint reload.
                    if self.pop().is_some() {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    pos = self.tail.load(Ordering::Relaxed);
                }
                std::cmp::Ordering::Greater => {
                    // ordering: position hint reload, re-validated by the
                    // slot's Acquire `seq` load on the next iteration.
                    pos = self.tail.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Dequeues the oldest buffered event, or `None` when empty.
    // Same wrapping signed-difference idiom as `push`.
    #[allow(clippy::cast_possible_wrap)]
    pub fn pop(&self) -> Option<[u64; 5]> {
        let cap = self.slots.len();
        // ordering: position hint only, same discipline as `push` — the
        // slot's `seq` Acquire load decides whether the record is ready.
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & (cap - 1)];
            let seq = slot.seq.load(Ordering::Acquire);
            match (seq as isize)
                .wrapping_sub(pos.wrapping_add(1) as isize)
                .cmp(&0)
            {
                std::cmp::Ordering::Equal => {
                    // ordering: claims the position only; the payload was
                    // already acquired via the `seq` load above.
                    match self.head.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // ordering: the `seq` Acquire above
                            // synchronised with the producer's Release,
                            // so the word loads see the full record; the
                            // Release store below hands the slot back to
                            // a future producer.
                            let mut words = [0u64; 5];
                            for (v, w) in words.iter_mut().zip(&slot.words) {
                                *v = w.load(Ordering::Relaxed);
                            }
                            slot.seq.store(pos.wrapping_add(cap), Ordering::Release);
                            return Some(words);
                        }
                        Err(now) => pos = now,
                    }
                }
                std::cmp::Ordering::Less => return None,
                std::cmp::Ordering::Greater => {
                    // ordering: position hint reload, re-validated by the
                    // next iteration's Acquire `seq` load.
                    pos = self.head.load(Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> [u64; 5] {
        [n, n + 1, n + 2, n + 3, n + 4]
    }

    #[test]
    fn fifo_order() {
        let r = Ring::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        for i in 0..5 {
            assert_eq!(r.pop(), Some(ev(i)));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Ring::new(0).capacity(), 8);
        assert_eq!(Ring::new(9).capacity(), 16);
        assert_eq!(Ring::new(64).capacity(), 64);
    }

    #[test]
    fn wrap_around_many_laps() {
        let r = Ring::new(8);
        // Push/pop far more than the capacity so head/tail lap the ring
        // repeatedly; FIFO order and contents must survive every lap.
        for i in 0..1000u64 {
            r.push(ev(i));
            assert_eq!(r.pop(), Some(ev(i)), "lap {}", i / 8);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let r = Ring::new(8);
        for i in 0..20u64 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 12, "20 pushed into 8 slots");
        // The survivors are the *newest* 8, still in order.
        for i in 12..20u64 {
            assert_eq!(r.pop(), Some(ev(i)));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn len_tracks_occupancy() {
        let r = Ring::new(8);
        assert!(r.is_empty());
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 2);
        r.pop();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing_without_overflow() {
        use std::sync::Arc;
        let r = Arc::new(Ring::new(1 << 12));
        let n = 2000u64;
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..n {
                    r.push(ev(i));
                }
            })
        };
        let mut seen = Vec::new();
        while seen.len() < n as usize {
            if let Some(w) = r.pop() {
                seen.push(w[0]);
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(r.dropped(), 0);
        // SPSC with no overflow: exact sequence preserved.
        assert!(seen.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn concurrent_with_overflow_keeps_suffix_ordered() {
        use std::sync::Arc;
        // A tiny ring under a fast producer: drops are expected; the
        // consumer must still observe a strictly increasing subsequence
        // and accounting must add up (popped + dropped + left = pushed).
        let r = Arc::new(Ring::new(8));
        let n = 5000u64;
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..n {
                    r.push(ev(i));
                }
            })
        };
        let mut popped = Vec::new();
        loop {
            match r.pop() {
                Some(w) => popped.push(w[0]),
                None if producer.is_finished() && r.is_empty() => break,
                None => std::hint::spin_loop(),
            }
        }
        producer.join().unwrap();
        assert!(
            popped.windows(2).all(|w| w[0] < w[1]),
            "drop-oldest must preserve order of survivors"
        );
        assert_eq!(popped.len() as u64 + r.dropped(), n);
    }
}
