//! HDR-style log-bucketed latency histograms.
//!
//! Values (nanoseconds) land in buckets whose width grows with
//! magnitude: below 32 the bucket is the value itself; above, each
//! power-of-two range is split into 16 linear sub-buckets, giving a
//! worst-case quantile error of ~6% at any scale — the classic
//! `HdrHistogram` trade: fixed memory (a flat `u64` array), O(1) record,
//! full `u64` range, no allocation on the hot path.

/// Number of linear sub-buckets per power-of-two range.
const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)

/// Bucket count: values < 32 are exact (indices 0..32), then each of the
/// remaining 59 doublings contributes 16 sub-buckets.
const BUCKETS: usize = 32 + (59 * SUB_BUCKETS);

fn bucket_index(v: u64) -> usize {
    if v < 32 {
        return v as usize;
    }
    let msb = v.ilog2(); // >= 5
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    32 + ((msb - 5) as usize) * SUB_BUCKETS + sub
}

/// Lower bound of the value range covered by bucket `idx` (the value the
/// quantile queries report).
fn bucket_floor(idx: usize) -> u64 {
    if idx < 32 {
        return idx as u64;
    }
    let rel = idx - 32;
    let msb = (rel / SUB_BUCKETS) as u32 + 5;
    let sub = (rel % SUB_BUCKETS) as u64;
    (1u64 << msb) + (sub << (msb - SUB_BITS))
}

/// A log-bucketed histogram of `u64` values (latencies in nanoseconds).
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the lower bound of the
    /// bucket holding the `ceil(q · count)`-th smallest recording
    /// (within ~6% of the true order statistic). 0 when empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        self.max
    }

    /// Median latency.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 99th-percentile latency.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.value_at_quantile(1.0), 31);
    }

    #[test]
    fn bucket_floor_inverts_index() {
        // floor(bucket(v)) <= v and the floor maps back to the same
        // bucket, across the full range.
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            100,
            1_000,
            123_456,
            u64::from(u32::MAX),
            1 << 40,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} > value {v}");
            assert_eq!(bucket_index(floor), idx, "v = {v}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LogHistogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        // Each reported quantile must be within one sub-bucket (6.25%)
        // below the true value.
        let p100 = h.value_at_quantile(1.0);
        assert!(p100 <= 1_000_000 && p100 as f64 >= 1_000_000.0 * (1.0 - 1.0 / 16.0));
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((4_500..=5_500).contains(&p50), "p50 = {p50}");
        let p99 = h.p99();
        assert!((9_000..=10_000).contains(&p99), "p99 = {p99}");
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert!(h.mean().abs() < f64::EPSILON);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1_000_000);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 10);
        assert!(a.max() >= 1_000_000);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.value_at_quantile(1.0) > u64::MAX / 2);
    }
}
