//! Process-global registry mapping `TVar` lock addresses to user labels.
//!
//! `TVar::labelled` (in `rubic-stm`, behind its `trace` feature)
//! registers the variable's `lock_addr()` identity here at construction
//! so contention tables and post-mortem bundles can name culprits
//! (`"accounts"` instead of `0x7f3a…`). The registry is diagnostic
//! metadata only: it is never consulted on the transaction hot path, it
//! survives across trace sessions, and a re-registered address simply
//! overwrites (an address can be recycled by the allocator after its
//! `TVar` drops — the last label wins, which is the useful answer for a
//! live dump).

use std::collections::HashMap;

use rubic_sync::Mutex;

/// Bounds the registry so a pathological workload that labels millions
/// of short-lived `TVars` cannot grow it without limit. Past the cap new
/// labels are dropped (existing addresses still update).
const MAX_LABELS: usize = 4096;

static LABELS: Mutex<Option<HashMap<u64, String>>> = Mutex::new(None);

/// Associates `label` with a `TVar` lock address. Overwrites any previous
/// label for the address; silently ignored once [`MAX_LABELS`] distinct
/// addresses are registered.
pub fn set_label(addr: u64, label: &str) {
    let mut map = LABELS.lock();
    let map = map.get_or_insert_with(HashMap::new);
    if map.len() >= MAX_LABELS && !map.contains_key(&addr) {
        return;
    }
    map.insert(addr, label.to_string());
}

/// The label registered for `addr`, if any.
#[must_use]
pub fn label(addr: u64) -> Option<String> {
    LABELS.lock().as_ref().and_then(|m| m.get(&addr).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_overwrite() {
        set_label(0xF00, "accounts");
        assert_eq!(label(0xF00).as_deref(), Some("accounts"));
        set_label(0xF00, "accounts-v2");
        assert_eq!(label(0xF00).as_deref(), Some("accounts-v2"));
        assert_eq!(label(0xF01), None);
    }
}
