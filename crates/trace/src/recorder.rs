//! The global recorder: per-thread ring registration, the `emit` fast
//! path, and the collector-backed [`TraceSession`].
//!
//! Instrumented crates call [`emit`] (plus [`now_ns`] for latency
//! timestamps). When no session is active, `emit` is one relaxed atomic
//! load and a branch. When a session is active, the calling thread lazily
//! registers a private [`Ring`] with the session and every subsequent
//! emit is a handful of atomic stores into that ring — no locks, no
//! allocation, no syscalls on the hot path.
//!
//! A background collector thread drains all rings every few milliseconds
//! into the session's [`Sink`](crate::report::TraceReport) accumulators,
//! so rings stay shallow and the drop-oldest policy rarely engages.
//! [`TraceSession::finish`] stops the collector, performs a final drain,
//! and returns the [`TraceReport`].

use std::cell::RefCell;
use std::time::{Duration, Instant};

use rubic_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use rubic_sync::{Arc, Mutex, OnceLock};

use crate::event::{Event, EventKind};
use crate::report::{Sink, TraceReport};
use crate::ring::Ring;

/// True while a [`TraceSession`] is active. Checked (relaxed) on every
/// `emit`; instrumented code can also consult it to skip timestamp
/// capture entirely.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every session start/finish so stale thread-local rings
/// re-register instead of writing into a dead session.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Serialises sessions: only one recorder may be active per process
/// (trace data is process-global, like the chaos hook's scope lock).
static SESSION_ACTIVE: AtomicBool = AtomicBool::new(false);
/// The active session's shared state.
static STATE: Mutex<Option<Arc<SessionState>>> = Mutex::new(None);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (first use).
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// True while a trace session is recording.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    // ordering: fast-path probe only — a stale `false` skips one event,
    // a stale `true` falls into `emit_slow`, which re-checks the
    // generation under Acquire. No data is published through this flag.
    ENABLED.load(Ordering::Relaxed)
}

struct SessionState {
    generation: u64,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
}

struct LocalRing {
    generation: u64,
    tid: u16,
    ring: Arc<Ring>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

/// Emits one event into the calling thread's ring. A no-op (one relaxed
/// load) when no session is active. Never blocks, never allocates after
/// the thread's first emit of the session.
#[inline]
pub fn emit(kind: EventKind, code: u8, a: u64, b: u64, c: u64) {
    if !is_enabled() {
        return;
    }
    emit_slow(kind, code, a, b, c);
}

#[cold]
fn emit_slow(kind: EventKind, code: u8, a: u64, b: u64, c: u64) {
    let generation = GENERATION.load(Ordering::Acquire);
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let needs_register = match local.as_ref() {
            Some(l) => l.generation != generation,
            None => true,
        };
        if needs_register {
            let Some(registered) = register_thread(generation) else {
                return; // session vanished between the check and now
            };
            *local = Some(registered);
        }
        if let Some(l) = local.as_ref() {
            let event = Event {
                ts_ns: now_ns(),
                kind,
                code,
                tid: l.tid,
                a,
                b,
                c,
            };
            l.ring.push(event.encode());
        }
    });
}

fn register_thread(generation: u64) -> Option<LocalRing> {
    let state = STATE.lock().clone()?;
    if state.generation != generation {
        return None;
    }
    let ring = Arc::new(Ring::new(state.ring_capacity));
    let mut rings = state.rings.lock();
    let tid = u16::try_from(rings.len()).unwrap_or(u16::MAX);
    rings.push(Arc::clone(&ring));
    Some(LocalRing {
        generation,
        tid,
        ring,
    })
}

/// Construction parameters for a [`TraceSession`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Per-thread ring capacity in events (rounded up to a power of
    /// two). The drop-oldest policy engages past this.
    pub ring_capacity: usize,
    /// Retain the full event log (needed for the JSONL and
    /// `chrome://tracing` exporters). Histograms and the abort breakdown
    /// are always accumulated regardless.
    pub keep_events: bool,
    /// How often the collector thread drains the rings.
    pub drain_period: Duration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 1 << 14,
            keep_events: true,
            drain_period: Duration::from_millis(5),
        }
    }
}

/// An active recording: installs the global recorder on `start`, drains
/// continuously on a collector thread, and yields a [`TraceReport`] on
/// [`finish`](TraceSession::finish).
///
/// Only one session can be active per process; a second `start` blocks
/// until the first finishes (sessions are process-global, so two
/// concurrent ones would interleave their data).
///
/// ```
/// use rubic_trace::{emit, EventKind, TraceConfig, TraceSession};
/// let session = TraceSession::start(TraceConfig::default());
/// emit(EventKind::TxnCommit, 0, 1_500, 0, 1);
/// let report = session.finish();
/// assert_eq!(report.commit_latency.count(), 1);
/// ```
pub struct TraceSession {
    state: Arc<SessionState>,
    sink: Arc<Mutex<Sink>>,
    stop: Arc<AtomicBool>,
    collector: Option<rubic_sync::thread::JoinHandle<()>>,
}

impl TraceSession {
    /// Installs the recorder and starts the collector thread. Blocks if
    /// another session is still active.
    ///
    /// # Panics
    ///
    /// Panics if the collector thread cannot be spawned.
    #[must_use]
    #[allow(clippy::needless_pass_by_value)] // config structs move in
    pub fn start(cfg: TraceConfig) -> TraceSession {
        // ordering: Relaxed on failure — a losing starter learns nothing
        // from the current holder except "occupied" and retries; the
        // winning Acquire pairs with teardown's Release store.
        while SESSION_ACTIVE
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            rubic_sync::thread::sleep(Duration::from_millis(1));
        }
        let generation = GENERATION.fetch_add(1, Ordering::AcqRel) + 1;
        let state = Arc::new(SessionState {
            generation,
            ring_capacity: cfg.ring_capacity,
            rings: Mutex::new(Vec::new()),
        });
        *STATE.lock() = Some(Arc::clone(&state));
        let sink = Arc::new(Mutex::new(Sink::new(cfg.keep_events)));
        let stop = Arc::new(AtomicBool::new(false));
        let collector = {
            let state = Arc::clone(&state);
            let sink = Arc::clone(&sink);
            let stop = Arc::clone(&stop);
            let period = cfg.drain_period;
            rubic_sync::thread::Builder::new()
                .name("rubic-trace-collector".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        rubic_sync::thread::sleep(period);
                        drain_into(&state, &sink);
                    }
                })
                .expect("failed to spawn trace collector")
        };
        ENABLED.store(true, Ordering::Release);
        TraceSession {
            state,
            sink,
            stop,
            collector: Some(collector),
        }
    }

    /// Stops recording, drains every ring a final time, and builds the
    /// report.
    #[must_use]
    pub fn finish(mut self) -> TraceReport {
        self.teardown();
        let mut sink = std::mem::replace(&mut *self.sink.lock(), Sink::new(false));
        let rings = self.state.rings.lock();
        sink.dropped = rings.iter().map(|r| r.dropped()).sum();
        drop(rings);
        sink.into_report()
    }

    fn teardown(&mut self) {
        ENABLED.store(false, Ordering::Release);
        GENERATION.fetch_add(1, Ordering::AcqRel);
        self.stop.store(true, Ordering::Release);
        if let Some(c) = self.collector.take() {
            let _ = c.join();
        }
        // Final drain after every producer either finished its push or
        // will bail on the ENABLED fast path.
        drain_into(&self.state, &self.sink);
        *STATE.lock() = None;
        SESSION_ACTIVE.store(false, Ordering::Release);
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if self.collector.is_some() {
            self.teardown();
        }
    }
}

fn drain_into(state: &SessionState, sink: &Mutex<Sink>) {
    // Snapshot the ring list first so a registering thread never waits
    // on the sink lock.
    let rings: Vec<Arc<Ring>> = state.rings.lock().clone();
    let mut sink = sink.lock();
    for ring in rings {
        while let Some(words) = ring.pop() {
            if let Some(event) = Event::decode(words) {
                sink.add(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::codes;

    #[test]
    fn disabled_emit_is_a_no_op() {
        // No session: must not panic, must not register anything.
        emit(EventKind::TxnBegin, 0, 0, 0, 0);
        assert!(!is_enabled());
    }

    #[test]
    fn session_records_and_reports() {
        let session = TraceSession::start(TraceConfig::default());
        assert!(is_enabled());
        emit(EventKind::TxnBegin, 0, 0, 0, 0);
        emit(EventKind::TxnCommit, 0, 2_000, (3 << 32) | 1, 1);
        emit(EventKind::TxnAbort, codes::ABORT_LOCK_BUSY, 500, 0, 0);
        emit(EventKind::TxnRestart, 0, 800, 0, 0);
        emit(EventKind::LockHold, 0, 1_200, 0xDEAD, 0);
        let report = session.finish();
        assert!(!is_enabled());
        assert_eq!(report.commit_latency.count(), 1);
        assert_eq!(report.commit_latency.max(), 2_000);
        assert_eq!(report.abort_restart_latency.count(), 1);
        assert_eq!(report.lock_hold.count(), 1);
        assert_eq!(report.abort_breakdown[codes::ABORT_LOCK_BUSY as usize], 1);
        assert_eq!(report.total_aborts(), 1);
        assert_eq!(report.events.len(), 5);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn sessions_serialise_and_generations_isolate() {
        let s1 = TraceSession::start(TraceConfig::default());
        emit(EventKind::TxnCommit, 0, 10, 0, 1);
        let r1 = s1.finish();
        // Same thread, new session: the thread-local ring must
        // re-register (generation changed), and old data must not leak.
        let s2 = TraceSession::start(TraceConfig::default());
        emit(EventKind::TxnCommit, 0, 20, 0, 1);
        emit(EventKind::TxnCommit, 0, 30, 0, 1);
        let r2 = s2.finish();
        assert_eq!(r1.commit_latency.count(), 1);
        assert_eq!(r2.commit_latency.count(), 2);
    }

    #[test]
    fn multi_thread_emits_are_collected() {
        let session = TraceSession::start(TraceConfig::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for i in 0..100u64 {
                        emit(EventKind::TxnCommit, 0, i + 1, 0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = session.finish();
        assert_eq!(report.commit_latency.count(), 400);
        // Each thread registered its own ring => distinct tids observed.
        let tids: std::collections::HashSet<u16> = report.events.iter().map(|e| e.tid).collect();
        assert!(tids.len() >= 4, "expected >= 4 producer threads: {tids:?}");
    }

    #[test]
    fn histograms_only_mode_drops_event_log() {
        let session = TraceSession::start(TraceConfig {
            keep_events: false,
            ..TraceConfig::default()
        });
        emit(EventKind::TxnCommit, 0, 99, 0, 1);
        let report = session.finish();
        assert!(report.events.is_empty());
        assert_eq!(report.commit_latency.count(), 1);
    }
}
