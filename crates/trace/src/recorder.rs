//! The global recorder: per-thread ring registration, the `emit` fast
//! path, and the collector-backed [`TraceSession`].
//!
//! Instrumented crates call [`emit`] (plus [`now_ns`] for latency
//! timestamps) and, at abort sites, [`note_conflict`] to feed the
//! per-thread conflict sketches. When no session is active both are one
//! relaxed atomic load and a branch. When a session is active, the
//! calling thread lazily registers a private [`Ring`] (and a
//! [`ConflictSketch`]) with the session; every subsequent emit is a
//! handful of atomic stores into that ring — no locks, no allocation,
//! no syscalls on the hot path. (`note_conflict` takes the thread's own
//! uncontended sketch mutex — acceptable because aborts already are the
//! slow path.)
//!
//! A background collector thread drains all rings every few milliseconds
//! into the session's [`Sink`](crate::report::TraceReport) accumulators,
//! so rings stay shallow and the drop-oldest policy rarely engages. The
//! collector also runs the diagnosis housekeeping: the commit-latency
//! p99-breach watchdog, the periodic [`MetricsSnapshot`] export, and the
//! post-mortem requests raised via [`request_postmortem`].
//! [`TraceSession::finish`] stops the collector, performs a final drain,
//! services any pending post-mortems, and returns the [`TraceReport`].

use std::cell::RefCell;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rubic_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use rubic_sync::{Arc, Mutex, OnceLock};

use crate::bundle::{self, BundleInput};
use crate::event::{codes, Event, EventKind};
use crate::report::{MetricsSnapshot, Sink, SinkOptions, TraceReport};
use crate::ring::Ring;
use crate::sketch::ConflictSketch;

/// True while a [`TraceSession`] is active. Checked (relaxed) on every
/// `emit`; instrumented code can also consult it to skip timestamp
/// capture entirely.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every session start/finish so stale thread-local rings
/// re-register instead of writing into a dead session.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Serialises sessions: only one recorder may be active per process
/// (trace data is process-global, like the chaos hook's scope lock).
static SESSION_ACTIVE: AtomicBool = AtomicBool::new(false);
/// The active session's shared state.
static STATE: Mutex<Option<Arc<SessionState>>> = Mutex::new(None);
/// Pending post-mortem dump requests: bit `t` set means trigger code `t`
/// wants a dump. Drained by the collector (and by `finish`); set from
/// any thread without blocking.
// ordering: Relaxed — a request flag, not a publication channel; the
// dump itself reads everything under the sink lock.
static POSTMORTEM_REQUESTS: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (first use).
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// True while a trace session is recording.
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    // ordering: fast-path probe only — a stale `false` skips one event,
    // a stale `true` falls into `emit_slow`, which re-checks the
    // generation under Acquire. No data is published through this flag.
    ENABLED.load(Ordering::Relaxed)
}

struct SessionState {
    generation: u64,
    ring_capacity: usize,
    sketch_capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Per-thread conflict sketches, registered alongside the rings.
    sketches: Mutex<Vec<Arc<Mutex<ConflictSketch>>>>,
    /// Bitmask of trigger codes already auto-dumped this session (one
    /// bundle per trigger kind per session; manual dumps are unlimited).
    // ordering: Relaxed — dedup bookkeeping only.
    dumped: AtomicU64,
}

struct LocalRing {
    generation: u64,
    tid: u16,
    ring: Arc<Ring>,
    sketch: Arc<Mutex<ConflictSketch>>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

/// Emits one event into the calling thread's ring. A no-op (one relaxed
/// load) when no session is active. Never blocks, never allocates after
/// the thread's first emit of the session.
#[inline]
pub fn emit(kind: EventKind, code: u8, a: u64, b: u64, c: u64) {
    if !is_enabled() {
        return;
    }
    emit_slow(kind, code, a, b, c);
}

#[cold]
fn emit_slow(kind: EventKind, code: u8, a: u64, b: u64, c: u64) {
    with_local(|l| {
        let event = Event {
            ts_ns: now_ns(),
            kind,
            code,
            tid: l.tid,
            a,
            b,
            c,
        };
        l.ring.push(event.encode());
    });
}

/// Attributes one conflict to the `TVar` with lock address `addr` and the
/// given abort-reason code, updating the calling thread's space-saving
/// sketch. A no-op (one relaxed load) when no session is active. Called
/// from abort paths only — takes the thread's own uncontended sketch
/// mutex, never a shared lock.
#[inline]
pub fn note_conflict(addr: u64, reason: u8) {
    if !is_enabled() {
        return;
    }
    note_conflict_slow(addr, reason);
}

#[cold]
fn note_conflict_slow(addr: u64, reason: u8) {
    with_local(|l| l.sketch.lock().update(addr, reason));
}

/// Requests an automatic post-mortem dump for the given trigger code
/// (one of `codes::ANOMALY_*`). Non-blocking and allocation-free: sets
/// a bit the collector thread services on its next pass (or `finish`
/// services at teardown). At most one bundle is written per trigger
/// kind per session; requests without a configured `postmortem_dir` are
/// counted by the Anomaly event but produce no bundle.
pub fn request_postmortem(trigger: u8) {
    if !is_enabled() {
        return;
    }
    // ordering: Relaxed — see POSTMORTEM_REQUESTS.
    POSTMORTEM_REQUESTS.fetch_or(1u64 << u64::from(trigger.min(63)), Ordering::Relaxed);
}

/// Runs `f` with the calling thread's registered local state,
/// re-registering if the session generation moved.
fn with_local(f: impl FnOnce(&LocalRing)) {
    let generation = GENERATION.load(Ordering::Acquire);
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let needs_register = match local.as_ref() {
            Some(l) => l.generation != generation,
            None => true,
        };
        if needs_register {
            let Some(registered) = register_thread(generation) else {
                return; // session vanished between the check and now
            };
            *local = Some(registered);
        }
        if let Some(l) = local.as_ref() {
            f(l);
        }
    });
}

fn register_thread(generation: u64) -> Option<LocalRing> {
    let state = STATE.lock().clone()?;
    if state.generation != generation {
        return None;
    }
    let ring = Arc::new(Ring::new(state.ring_capacity));
    let sketch = Arc::new(Mutex::new(ConflictSketch::new(state.sketch_capacity)));
    let mut rings = state.rings.lock();
    let tid = u16::try_from(rings.len()).unwrap_or(u16::MAX);
    rings.push(Arc::clone(&ring));
    drop(rings);
    state.sketches.lock().push(Arc::clone(&sketch));
    Some(LocalRing {
        generation,
        tid,
        ring,
        sketch,
    })
}

/// Construction parameters for a [`TraceSession`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Per-thread ring capacity in events (rounded up to a power of
    /// two). The drop-oldest policy engages past this.
    pub ring_capacity: usize,
    /// Retain the full event log (needed for the JSONL and
    /// `chrome://tracing` exporters). Histograms, the abort breakdown
    /// and the flight recorder are always accumulated regardless.
    pub keep_events: bool,
    /// How often the collector thread drains the rings.
    pub drain_period: Duration,
    /// Per-thread conflict-sketch capacity `k` (overcount is bounded by
    /// `conflicts / k`).
    pub sketch_capacity: usize,
    /// Contention-table size in reports, snapshots and bundles.
    pub top_k: usize,
    /// Flight-recorder retention window.
    pub flight_window: Duration,
    /// Flight-recorder hard event cap (drop-oldest past this).
    pub flight_capacity: usize,
    /// Where anomaly-triggered post-mortem bundles are written. `None`
    /// disables auto-dumps (anomaly events are still recorded).
    pub postmortem_dir: Option<PathBuf>,
    /// Commit-latency p99 threshold for the collector's breach watchdog.
    /// Checked per drain over the window since the last check, once the
    /// window holds enough commits to make a p99 meaningful.
    pub p99_threshold_ns: Option<u64>,
    /// Cadence for automatic [`MetricsSnapshot`] capture. `None`
    /// disables periodic snapshots ([`TraceSession::snapshot`] still
    /// works on demand).
    pub snapshot_period: Option<Duration>,
    /// File the periodic snapshots are appended to as JSONL. `None`
    /// captures (advancing interval baselines) without exporting.
    pub snapshot_path: Option<PathBuf>,
    /// Extra key/value pairs recorded in every bundle's manifest
    /// (feature flags, seeds, workload parameters).
    pub manifest: Vec<(String, String)>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 1 << 14,
            keep_events: true,
            drain_period: Duration::from_millis(5),
            sketch_capacity: 64,
            top_k: 16,
            flight_window: Duration::from_secs(5),
            flight_capacity: 1 << 16,
            postmortem_dir: None,
            p99_threshold_ns: None,
            snapshot_period: None,
            snapshot_path: None,
            manifest: Vec::new(),
        }
    }
}

impl TraceConfig {
    fn sink_options(&self) -> SinkOptions {
        SinkOptions {
            keep_events: self.keep_events,
            flight_window_ns: u64::try_from(self.flight_window.as_nanos()).unwrap_or(u64::MAX),
            flight_capacity: self.flight_capacity,
            top_k: self.top_k,
        }
    }

    fn describe(&self) -> String {
        format!(
            "ring_capacity={} keep_events={} drain_period={:?} sketch_capacity={} top_k={} flight_window={:?} flight_capacity={}",
            self.ring_capacity,
            self.keep_events,
            self.drain_period,
            self.sketch_capacity,
            self.top_k,
            self.flight_window,
            self.flight_capacity,
        )
    }
}

/// Minimum commits in a watchdog window before its p99 is trusted.
const P99_WINDOW_MIN_COMMITS: u64 = 32;

/// An active recording: installs the global recorder on `start`, drains
/// continuously on a collector thread, and yields a [`TraceReport`] on
/// [`finish`](TraceSession::finish).
///
/// Only one session can be active per process; a second `start` blocks
/// until the first finishes (sessions are process-global, so two
/// concurrent ones would interleave their data).
///
/// ```
/// use rubic_trace::{emit, EventKind, TraceConfig, TraceSession};
/// let session = TraceSession::start(TraceConfig::default());
/// emit(EventKind::TxnCommit, 0, 1_500, 0, 1);
/// let report = session.finish();
/// assert_eq!(report.commit_latency.count(), 1);
/// ```
pub struct TraceSession {
    state: Arc<SessionState>,
    sink: Arc<Mutex<Sink>>,
    cfg: TraceConfig,
    stop: Arc<AtomicBool>,
    collector: Option<rubic_sync::thread::JoinHandle<()>>,
}

impl TraceSession {
    /// Installs the recorder and starts the collector thread. Blocks if
    /// another session is still active.
    ///
    /// # Panics
    ///
    /// Panics if the collector thread cannot be spawned.
    #[must_use]
    #[allow(clippy::needless_pass_by_value)] // config structs move in
    pub fn start(cfg: TraceConfig) -> TraceSession {
        // ordering: Relaxed on failure — a losing starter learns nothing
        // from the current holder except "occupied" and retries; the
        // winning Acquire pairs with teardown's Release store.
        while SESSION_ACTIVE
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            rubic_sync::thread::sleep(Duration::from_millis(1));
        }
        // A fresh session never inherits the previous one's requests.
        POSTMORTEM_REQUESTS.store(0, Ordering::Relaxed);
        let generation = GENERATION.fetch_add(1, Ordering::AcqRel) + 1;
        let state = Arc::new(SessionState {
            generation,
            ring_capacity: cfg.ring_capacity,
            sketch_capacity: cfg.sketch_capacity,
            rings: Mutex::new(Vec::new()),
            sketches: Mutex::new(Vec::new()),
            dumped: AtomicU64::new(0),
        });
        *STATE.lock() = Some(Arc::clone(&state));
        let sink = Arc::new(Mutex::new(Sink::new(cfg.sink_options())));
        let stop = Arc::new(AtomicBool::new(false));
        let collector = {
            let state = Arc::clone(&state);
            let sink = Arc::clone(&sink);
            let stop = Arc::clone(&stop);
            let cfg = cfg.clone();
            rubic_sync::thread::Builder::new()
                .name("rubic-trace-collector".into())
                .spawn(move || {
                    let mut last_snapshot = Instant::now();
                    while !stop.load(Ordering::Acquire) {
                        rubic_sync::thread::sleep(cfg.drain_period);
                        drain_into(&state, &sink);
                        housekeep(&state, &sink, &cfg, &mut last_snapshot);
                    }
                })
                .expect("failed to spawn trace collector")
        };
        ENABLED.store(true, Ordering::Release);
        TraceSession {
            state,
            sink,
            cfg,
            stop,
            collector: Some(collector),
        }
    }

    /// Drains the rings and captures a point-in-time [`MetricsSnapshot`]
    /// (advancing the interval baseline for throughput / abort-rate
    /// deltas).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        drain_into(&self.state, &self.sink);
        let merged = merged_sketch(&self.state);
        let mut sink = self.sink.lock();
        sink.dropped = total_dropped(&self.state);
        sink.take_snapshot(&merged, now_ns())
    }

    /// Drains the rings and writes a post-mortem bundle under `dir` with
    /// the given trigger tag, returning the bundle directory. Manual
    /// dumps bypass the once-per-trigger dedup applied to automatic
    /// ones.
    ///
    /// # Errors
    /// Any filesystem error creating or writing the bundle.
    pub fn dump_postmortem(&self, dir: &Path, trigger: &str) -> io::Result<PathBuf> {
        drain_into(&self.state, &self.sink);
        write_dump(&self.state, &self.sink, &self.cfg, dir, trigger)
    }

    /// Stops recording, drains every ring a final time, services pending
    /// post-mortem requests, and builds the report.
    #[must_use]
    pub fn finish(mut self) -> TraceReport {
        self.teardown();
        let merged = merged_sketch(&self.state);
        let mut sink = std::mem::replace(
            &mut *self.sink.lock(),
            Sink::new(SinkOptions {
                keep_events: false,
                ..SinkOptions::default()
            }),
        );
        sink.dropped = total_dropped(&self.state);
        sink.into_report(&merged)
    }

    fn teardown(&mut self) {
        ENABLED.store(false, Ordering::Release);
        GENERATION.fetch_add(1, Ordering::AcqRel);
        self.stop.store(true, Ordering::Release);
        if let Some(c) = self.collector.take() {
            let _ = c.join();
        }
        // Final drain after every producer either finished its push or
        // will bail on the ENABLED fast path; then service any requests
        // the collector never got to see.
        drain_into(&self.state, &self.sink);
        let mut last_snapshot = Instant::now();
        housekeep(&self.state, &self.sink, &self.cfg, &mut last_snapshot);
        *STATE.lock() = None;
        SESSION_ACTIVE.store(false, Ordering::Release);
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if self.collector.is_some() {
            self.teardown();
        }
    }
}

fn drain_into(state: &SessionState, sink: &Mutex<Sink>) {
    // Snapshot the ring list first so a registering thread never waits
    // on the sink lock.
    let rings: Vec<Arc<Ring>> = state.rings.lock().clone();
    let mut sink = sink.lock();
    for ring in rings {
        while let Some(words) = ring.pop() {
            if let Some(event) = Event::decode(words) {
                sink.add(event);
            }
        }
    }
}

/// Merges every registered per-thread sketch into one session sketch.
fn merged_sketch(state: &SessionState) -> ConflictSketch {
    let sketches: Vec<Arc<Mutex<ConflictSketch>>> = state.sketches.lock().clone();
    let mut merged = ConflictSketch::new(state.sketch_capacity);
    for s in sketches {
        let s = s.lock();
        if !s.is_empty() {
            merged.merge(&s);
        }
    }
    merged
}

fn total_dropped(state: &SessionState) -> u64 {
    state.rings.lock().iter().map(|r| r.dropped()).sum()
}

/// Collector housekeeping after each drain: p99-breach watchdog,
/// periodic snapshot export, pending post-mortem requests.
fn housekeep(
    state: &SessionState,
    sink: &Mutex<Sink>,
    cfg: &TraceConfig,
    last_snapshot: &mut Instant,
) {
    if let Some(threshold) = cfg.p99_threshold_ns {
        let mut s = sink.lock();
        let window = s.take_commit_window();
        if window.count() >= P99_WINDOW_MIN_COMMITS && window.p99() > threshold {
            s.add(Event {
                ts_ns: now_ns(),
                kind: EventKind::Anomaly,
                code: codes::ANOMALY_P99_BREACH,
                tid: u16::MAX,
                a: window.p99(),
                b: threshold,
                c: window.count(),
            });
            drop(s);
            // ordering: Relaxed — see POSTMORTEM_REQUESTS.
            POSTMORTEM_REQUESTS.fetch_or(
                1u64 << u64::from(codes::ANOMALY_P99_BREACH),
                Ordering::Relaxed,
            );
        }
    }

    if let Some(period) = cfg.snapshot_period {
        if last_snapshot.elapsed() >= period {
            *last_snapshot = Instant::now();
            let merged = merged_sketch(state);
            let mut s = sink.lock();
            s.dropped = total_dropped(state);
            let snap = s.take_snapshot(&merged, now_ns());
            drop(s);
            if let Some(path) = &cfg.snapshot_path {
                let mut line = snap.to_json_line();
                line.push('\n');
                if let Err(e) = append_to(path, &line) {
                    eprintln!(
                        "rubic-trace: snapshot export to {} failed: {e}",
                        path.display()
                    );
                }
            }
        }
    }

    // ordering: Relaxed — see POSTMORTEM_REQUESTS.
    let mask = POSTMORTEM_REQUESTS.swap(0, Ordering::Relaxed);
    if mask == 0 {
        return;
    }
    let Some(dir) = &cfg.postmortem_dir else {
        return;
    };
    // ordering: Relaxed — dedup bookkeeping only.
    let fresh = mask & !state.dumped.fetch_or(mask, Ordering::Relaxed);
    for code in 0..64u8 {
        if fresh & (1u64 << code) == 0 {
            continue;
        }
        let trigger = codes::anomaly_name(code);
        match write_dump(state, sink, cfg, dir, trigger) {
            Ok(path) => eprintln!(
                "rubic-trace: anomaly '{trigger}' dumped post-mortem to {}",
                path.display()
            ),
            Err(e) => eprintln!("rubic-trace: post-mortem dump for '{trigger}' failed: {e}"),
        }
    }
}

fn append_to(path: &Path, data: &str) -> io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(data.as_bytes())
}

/// Freezes the session's current view and writes one bundle.
fn write_dump(
    state: &SessionState,
    sink: &Mutex<Sink>,
    cfg: &TraceConfig,
    dir: &Path,
    trigger: &str,
) -> io::Result<PathBuf> {
    let merged = merged_sketch(state);
    let mut s = sink.lock();
    s.dropped = total_dropped(state);
    let snapshot = s.take_snapshot(&merged, now_ns());
    let events = s.flight_events();
    let contention = s.contention_table(&merged);
    let input = BundleInput {
        trigger,
        events: &events,
        commit_latency: s.commit_latency(),
        abort_restart_latency: s.abort_restart_latency(),
        lock_hold: s.lock_hold(),
        contention: &contention,
        snapshot: &snapshot,
        manifest: &cfg.manifest,
        config: cfg.describe(),
        dropped: snapshot.dropped,
    };
    bundle::write_bundle(dir, &input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::codes;

    #[test]
    fn disabled_emit_is_a_no_op() {
        // No session: must not panic, must not register anything.
        emit(EventKind::TxnBegin, 0, 0, 0, 0);
        note_conflict(0xAB, 0);
        request_postmortem(codes::ANOMALY_MANUAL);
        assert!(!is_enabled());
    }

    #[test]
    fn session_records_and_reports() {
        let session = TraceSession::start(TraceConfig::default());
        assert!(is_enabled());
        emit(EventKind::TxnBegin, 0, 0, 0, 0);
        emit(EventKind::TxnCommit, 0, 2_000, (3 << 32) | 1, 1);
        emit(EventKind::TxnAbort, codes::ABORT_LOCK_BUSY, 500, 0, 0);
        emit(EventKind::TxnRestart, 0, 800, 0, 0);
        emit(EventKind::LockHold, 0, 1_200, 0xDEAD, 0);
        let report = session.finish();
        assert!(!is_enabled());
        assert_eq!(report.commit_latency.count(), 1);
        assert_eq!(report.commit_latency.max(), 2_000);
        assert_eq!(report.abort_restart_latency.count(), 1);
        assert_eq!(report.lock_hold.count(), 1);
        assert_eq!(report.abort_breakdown[codes::ABORT_LOCK_BUSY as usize], 1);
        assert_eq!(report.total_aborts(), 1);
        assert_eq!(report.events.len(), 5);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn sessions_serialise_and_generations_isolate() {
        let s1 = TraceSession::start(TraceConfig::default());
        emit(EventKind::TxnCommit, 0, 10, 0, 1);
        let r1 = s1.finish();
        // Same thread, new session: the thread-local ring must
        // re-register (generation changed), and old data must not leak.
        let s2 = TraceSession::start(TraceConfig::default());
        emit(EventKind::TxnCommit, 0, 20, 0, 1);
        emit(EventKind::TxnCommit, 0, 30, 0, 1);
        let r2 = s2.finish();
        assert_eq!(r1.commit_latency.count(), 1);
        assert_eq!(r2.commit_latency.count(), 2);
    }

    #[test]
    fn multi_thread_emits_are_collected() {
        let session = TraceSession::start(TraceConfig::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for i in 0..100u64 {
                        emit(EventKind::TxnCommit, 0, i + 1, 0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = session.finish();
        assert_eq!(report.commit_latency.count(), 400);
        // Each thread registered its own ring => distinct tids observed.
        let tids: std::collections::HashSet<u16> = report.events.iter().map(|e| e.tid).collect();
        assert!(tids.len() >= 4, "expected >= 4 producer threads: {tids:?}");
    }

    #[test]
    fn histograms_only_mode_drops_event_log() {
        let session = TraceSession::start(TraceConfig {
            keep_events: false,
            ..TraceConfig::default()
        });
        emit(EventKind::TxnCommit, 0, 99, 0, 1);
        let report = session.finish();
        assert!(report.events.is_empty());
        assert_eq!(report.commit_latency.count(), 1);
    }

    #[test]
    fn conflicts_flow_from_threads_to_contention_table() {
        let session = TraceSession::start(TraceConfig::default());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..50 {
                        note_conflict(0xF00D, codes::ABORT_LOCK_BUSY);
                    }
                    note_conflict(0xFEED, codes::ABORT_READ_VALIDATION);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = session.finish();
        assert!(!report.contention.is_empty());
        let top = &report.contention[0];
        assert_eq!(top.addr, 0xF00D);
        assert!(top.count >= 150, "merge lost counts: {}", top.count);
        assert_eq!(top.by_reason[codes::ABORT_LOCK_BUSY as usize], 150);
    }

    #[test]
    fn snapshot_on_demand_sees_current_counts() {
        let session = TraceSession::start(TraceConfig::default());
        emit(EventKind::TxnCommit, 0, 1_000, 0, 1);
        emit(EventKind::TxnAbort, codes::ABORT_LOCK_BUSY, 100, 0, 0xAB);
        note_conflict(0xAB, codes::ABORT_LOCK_BUSY);
        let snap = session.snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.total_aborts(), 1);
        assert_eq!(snap.top_conflicts.len(), 1);
        assert_eq!(snap.top_conflicts[0].addr, 0xAB);
        let _ = session.finish();
    }

    #[test]
    fn requested_postmortem_dumps_once_per_trigger() {
        let dir = std::env::temp_dir().join(format!("rubic-rec-pm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = TraceSession::start(TraceConfig {
            postmortem_dir: Some(dir.clone()),
            ..TraceConfig::default()
        });
        emit(EventKind::TxnAbort, codes::ABORT_LOCK_BUSY, 100, 0, 0xAB);
        note_conflict(0xAB, codes::ABORT_LOCK_BUSY);
        request_postmortem(codes::ANOMALY_ABORT_STORM);
        request_postmortem(codes::ANOMALY_ABORT_STORM); // deduped
        let report = session.finish();
        let bundles: Vec<_> = std::fs::read_dir(&dir)
            .expect("postmortem dir created")
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(bundles.len(), 1, "{bundles:?}");
        let name = bundles[0]
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        assert!(name.contains("abort-storm"), "{name}");
        let manifest = std::fs::read_to_string(bundles[0].join("manifest.json")).unwrap();
        assert!(manifest.contains(bundle::BUNDLE_SCHEMA));
        let contention = std::fs::read_to_string(bundles[0].join("contention.json")).unwrap();
        assert!(contention.contains("\"addr\":171"), "{contention}");
        assert_eq!(report.total_aborts(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manual_dump_and_periodic_snapshot_export() {
        let base = std::env::temp_dir().join(format!("rubic-rec-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let snap_path = base.join("snapshots.jsonl");
        let session = TraceSession::start(TraceConfig {
            snapshot_period: Some(Duration::from_millis(10)),
            snapshot_path: Some(snap_path.clone()),
            ..TraceConfig::default()
        });
        emit(EventKind::TxnCommit, 0, 1_000, 0, 1);
        rubic_sync::thread::sleep(Duration::from_millis(60));
        let bundle_dir = session
            .dump_postmortem(&base, "manual")
            .expect("manual dump");
        assert!(bundle_dir.join("snapshot.json").exists());
        let _ = session.finish();
        let snaps = std::fs::read_to_string(&snap_path).expect("snapshot file written");
        assert!(snaps.lines().count() >= 1, "{snaps}");
        assert!(snaps
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn p99_breach_watchdog_fires_anomaly() {
        let dir = std::env::temp_dir().join(format!("rubic-rec-p99-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = TraceSession::start(TraceConfig {
            p99_threshold_ns: Some(1_000),
            postmortem_dir: Some(dir.clone()),
            drain_period: Duration::from_millis(2),
            ..TraceConfig::default()
        });
        for _ in 0..P99_WINDOW_MIN_COMMITS + 8 {
            emit(EventKind::TxnCommit, 0, 50_000, 0, 1);
        }
        rubic_sync::thread::sleep(Duration::from_millis(40));
        let report = session.finish();
        assert!(
            report.anomalies[codes::ANOMALY_P99_BREACH as usize] >= 1,
            "watchdog never fired: {:?}",
            report.anomalies
        );
        let bundles = std::fs::read_dir(&dir).map_or(0, std::iter::Iterator::count);
        assert_eq!(bundles, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
