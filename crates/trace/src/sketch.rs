//! Fixed-size space-saving (heavy-hitter) sketches for conflict
//! attribution.
//!
//! Every abort carries a culprit `TVar` identity (its lock address). The
//! recorder keeps one [`ConflictSketch`] per producer thread and updates
//! it at abort time — a linear scan over at most `capacity` entries, no
//! allocation, no hashing — then the collector merges the per-thread
//! sketches into the session's top-K contention table.
//!
//! The sketch is the classic *space-saving* summary (Metwally et al.):
//! at most `capacity` `(key, count, err)` entries; an update to a
//! missing key when full evicts the minimum-count entry and inherits its
//! count as the new entry's overestimate `err`. Guarantees, with `N` =
//! total updates and `k` = capacity:
//!
//! - **No undercount:** for a tracked key, `count >= true`.
//! - **Bounded overcount:** `count - true <= err <= N / k`.
//! - **Heavy hitters tracked:** any key with true count `> N / k` is in
//!   the sketch.
//! - **Merge keeps heavy hitters:** after [`merge`](ConflictSketch::merge)
//!   (which compensates keys absent from one side by the other side's
//!   minimum count, then keeps the top `k`), any key whose true combined
//!   count exceeds `2 N / k` is still present, and the overcount bound
//!   `err <= N / k` still holds. Both bounds are pinned by property
//!   tests against an exact oracle.
//!
//! Each entry also carries per-[`AbortReason`] sub-counts for the hits
//! observed *while the entry was resident* (`by_reason` sums to
//! `count - err`), which is what the contention table reports as the
//! per-reason breakdown.
//!
//! [`AbortReason`]: crate::codes::ABORT_NAMES

use crate::event::codes;

/// One tracked culprit: a `TVar` lock address with its estimated conflict
/// count, overestimate bound, and per-abort-reason breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CulpritEntry {
    /// The culprit `TVar`'s `lock_addr()` identity (the same identity
    /// `LockHold` events carry in their `b` word).
    pub addr: u64,
    /// Estimated conflict count (never an undercount).
    pub count: u64,
    /// Overestimate bound: `count - err <= true count <= count`.
    pub err: u64,
    /// Conflicts by abort-reason code observed while this entry was
    /// resident; sums to `count - err`.
    pub by_reason: [u64; codes::ABORT_REASONS],
}

impl CulpritEntry {
    fn new(addr: u64, reason: u8, inherited: u64) -> CulpritEntry {
        let mut by_reason = [0u64; codes::ABORT_REASONS];
        by_reason[(reason as usize).min(codes::ABORT_REASONS - 1)] = 1;
        CulpritEntry {
            addr,
            count: inherited + 1,
            err: inherited,
            by_reason,
        }
    }
}

/// A fixed-capacity space-saving sketch over `TVar` lock addresses.
#[derive(Debug, Clone)]
pub struct ConflictSketch {
    /// At most `capacity` entries; order is insertion-driven, not sorted.
    entries: Vec<CulpritEntry>,
    capacity: usize,
    total: u64,
}

impl ConflictSketch {
    /// An empty sketch tracking at most `capacity` culprits (clamped to
    /// at least 1). All entry storage is allocated up front so updates
    /// never allocate.
    #[must_use]
    pub fn new(capacity: usize) -> ConflictSketch {
        let capacity = capacity.max(1);
        ConflictSketch {
            entries: Vec::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Total updates this sketch has absorbed (including merged ones).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Configured capacity `k`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one conflict attributed to `addr` with the given
    /// abort-reason code. Allocation-free; O(capacity) linear scan.
    pub fn update(&mut self, addr: u64, reason: u8) {
        self.total += 1;
        let reason_idx = (reason as usize).min(codes::ABORT_REASONS - 1);
        if let Some(e) = self.entries.iter_mut().find(|e| e.addr == addr) {
            e.count += 1;
            e.by_reason[reason_idx] += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(CulpritEntry::new(addr, reason, 0));
            return;
        }
        // Full and missing: evict the minimum-count entry, inheriting
        // its count as the newcomer's overestimate (space-saving step).
        // `capacity >= 1` (clamped in `new`), so the scan always finds
        // a minimum.
        if let Some((min_idx, inherited)) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.count)
            .map(|(i, e)| (i, e.count))
        {
            self.entries[min_idx] = CulpritEntry::new(addr, reason, inherited);
        }
    }

    /// The estimated count for `addr` (0 when untracked — only possible
    /// for keys whose true count is at most `total / capacity`).
    #[must_use]
    pub fn estimate(&self, addr: u64) -> u64 {
        self.entries
            .iter()
            .find(|e| e.addr == addr)
            .map_or(0, |e| e.count)
    }

    /// The minimum tracked count when full, else 0 — the upper bound on
    /// any untracked key's true count.
    fn min_count(&self) -> u64 {
        if self.entries.len() < self.capacity {
            0
        } else {
            self.entries.iter().map(|e| e.count).min().unwrap_or(0)
        }
    }

    /// Folds `other` into this sketch (collector-side; may allocate).
    ///
    /// Keys present in both sides sum their counts, errors, and reason
    /// breakdowns. A key present on only one side gets the other side's
    /// [`min_count`](Self::min_count) added to both its count and its
    /// error (the tightest upper bound on what the other side may have
    /// seen of it). If the union exceeds capacity, only the top
    /// `capacity` entries by count survive.
    pub fn merge(&mut self, other: &ConflictSketch) {
        let min_self = self.min_count();
        let min_other = other.min_count();
        // Compensate survivors on this side for what `other` may have
        // silently absorbed of them.
        for e in &mut self.entries {
            if !other.entries.iter().any(|o| o.addr == e.addr) {
                e.count += min_other;
                e.err += min_other;
            }
        }
        for o in &other.entries {
            if let Some(e) = self.entries.iter_mut().find(|e| e.addr == o.addr) {
                e.count += o.count;
                e.err += o.err;
                for (a, b) in e.by_reason.iter_mut().zip(o.by_reason.iter()) {
                    *a += b;
                }
            } else {
                let mut e = o.clone();
                e.count += min_self;
                e.err += min_self;
                self.entries.push(e);
            }
        }
        self.total += other.total;
        if self.entries.len() > self.capacity {
            self.entries.sort_by_key(|e| std::cmp::Reverse(e.count));
            self.entries.truncate(self.capacity);
        }
    }

    /// The top `k` entries by estimated count, descending (ties broken
    /// by address for determinism).
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<CulpritEntry> {
        let mut sorted = self.entries.clone();
        sorted.sort_by(|a, b| b.count.cmp(&a.count).then(a.addr.cmp(&b.addr)));
        sorted.truncate(k);
        sorted
    }

    /// True when no update has ever been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = ConflictSketch::new(8);
        for _ in 0..5 {
            s.update(0xA, 1);
        }
        for _ in 0..3 {
            s.update(0xB, 0);
        }
        assert_eq!(s.estimate(0xA), 5);
        assert_eq!(s.estimate(0xB), 3);
        assert_eq!(s.total(), 8);
        let top = s.top(2);
        assert_eq!(top[0].addr, 0xA);
        assert_eq!(top[0].err, 0);
        assert_eq!(top[0].by_reason[1], 5);
        assert_eq!(top[1].by_reason[0], 3);
    }

    #[test]
    fn eviction_inherits_min_count() {
        let mut s = ConflictSketch::new(2);
        s.update(1, 0);
        s.update(1, 0);
        s.update(2, 0); // full: {1: 2, 2: 1}
        s.update(3, 0); // evicts 2 (min=1): {1: 2, 3: 2 (err 1)}
        assert_eq!(s.estimate(2), 0);
        assert_eq!(s.estimate(3), 2);
        let three = s.top(2).into_iter().find(|e| e.addr == 3).unwrap();
        assert_eq!(three.err, 1);
        // by_reason sums to count - err.
        assert_eq!(three.by_reason.iter().sum::<u64>(), three.count - three.err);
    }

    #[test]
    fn heavy_hitter_never_untracked() {
        // One key gets half of 1000 updates into a 10-slot sketch amid
        // 100 rotating decoys: true(hot) = 500 > N/k = 100 ⇒ tracked,
        // with overshoot at most N/k.
        let mut s = ConflictSketch::new(10);
        let mut n = 0u64;
        for i in 0..1000u64 {
            if i % 2 == 0 {
                s.update(0xB00F, 1);
            } else {
                s.update(100 + (i % 100), 0);
            }
            n += 1;
        }
        let est = s.estimate(0xB00F);
        assert!(est >= 500, "undercount: {est}");
        assert!(est <= 500 + n / 10, "overshoot past N/k: {est}");
    }

    #[test]
    fn merge_sums_common_keys_and_totals() {
        let mut a = ConflictSketch::new(4);
        let mut b = ConflictSketch::new(4);
        for _ in 0..6 {
            a.update(1, 0);
        }
        for _ in 0..4 {
            b.update(1, 2);
        }
        b.update(2, 0);
        a.merge(&b);
        assert_eq!(a.total(), 11);
        assert_eq!(a.estimate(1), 10);
        assert_eq!(a.estimate(2), 1);
        let one = a.top(1).remove(0);
        assert_eq!(one.by_reason[0], 6);
        assert_eq!(one.by_reason[2], 4);
    }

    #[test]
    fn merge_compensates_one_sided_keys() {
        // Both sketches full: a key present only in `a` must absorb
        // `b`'s min count as extra err (b may have seen and evicted it).
        let mut a = ConflictSketch::new(2);
        let mut b = ConflictSketch::new(2);
        a.update(1, 0);
        a.update(2, 0);
        for _ in 0..3 {
            b.update(3, 0);
        }
        b.update(4, 0); // b full, min_count = 1
        a.merge(&b);
        let est1 = a.estimate(1);
        // Key 1 kept or evicted by the top-k cut; if kept its estimate
        // grew by b's min count.
        assert!(est1 == 0 || est1 == 2, "estimate(1) = {est1}");
    }
}
