//! Property tests pinning the space-saving sketch's guarantees against
//! an exact-count oracle: per-key estimate bounds, heavy-hitter
//! retention, the per-reason breakdown invariant, and the merge bounds
//! the module documentation promises (`crates/trace/src/sketch.rs`).

use std::collections::HashMap;

use proptest::prelude::*;
use rubic_trace::ConflictSketch;

/// Exact per-key counts for an update stream.
fn exact(stream: &[(u64, u8)]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &(addr, _) in stream {
        *m.entry(addr).or_insert(0u64) += 1;
    }
    m
}

fn stream(keys: u64, len: usize) -> impl Strategy<Value = Vec<(u64, u8)>> {
    proptest::collection::vec((0..keys, 0u8..6), 0..len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Space-saving bounds vs the exact oracle: tracked keys never
    /// undercount and overshoot by at most `N/k`; a key missing from
    /// the sketch has true count at most `N/k`; every entry's
    /// per-reason breakdown sums to `count - err` with `err <= N/k`.
    #[test]
    fn estimates_bound_true_counts(
        updates in stream(24, 400),
        cap in 1usize..12,
    ) {
        let mut s = ConflictSketch::new(cap);
        for &(addr, reason) in &updates {
            s.update(addr, reason);
        }
        let truth = exact(&updates);
        let n = updates.len() as u64;
        prop_assert_eq!(s.total(), n);
        let bound = n / cap as u64;
        for (&addr, &t) in &truth {
            let est = s.estimate(addr);
            if est > 0 {
                prop_assert!(est >= t, "undercount: {} < {} for {:#x}", est, t, addr);
                prop_assert!(est - t <= bound, "overshoot {} > N/k = {}", est - t, bound);
            } else {
                prop_assert!(t <= bound, "heavy hitter {:#x} (true {}) untracked", addr, t);
            }
        }
        for e in s.top(cap) {
            prop_assert_eq!(e.by_reason.iter().sum::<u64>(), e.count - e.err);
            prop_assert!(e.err <= bound);
        }
    }

    /// Merging two per-thread sketches keeps every key whose true
    /// combined count exceeds `2N/k`, without undercounting it, and
    /// totals add up.
    #[test]
    fn merge_never_drops_a_true_heavy_hitter(
        left in stream(16, 300),
        right in stream(16, 300),
        cap in 2usize..10,
    ) {
        let mut a = ConflictSketch::new(cap);
        for &(addr, reason) in &left {
            a.update(addr, reason);
        }
        let mut b = ConflictSketch::new(cap);
        for &(addr, reason) in &right {
            b.update(addr, reason);
        }
        a.merge(&b);

        let n = (left.len() + right.len()) as u64;
        prop_assert_eq!(a.total(), n);
        let mut truth = exact(&left);
        for (addr, t) in exact(&right) {
            *truth.entry(addr).or_insert(0) += t;
        }
        let threshold = 2 * n / cap as u64;
        for (&addr, &t) in &truth {
            if t > threshold {
                let est = a.estimate(addr);
                prop_assert!(
                    est >= t,
                    "combined heavy hitter {:#x} (true {}) dropped or undercounted to {}",
                    addr, t, est
                );
            }
        }
        // The no-undercount property survives the merge for every key
        // still tracked.
        for e in a.top(cap) {
            let t = truth.get(&e.addr).copied().unwrap_or(0);
            prop_assert!(e.count >= t);
            prop_assert_eq!(e.by_reason.iter().sum::<u64>(), e.count - e.err);
        }
    }

    /// Merging an empty sketch is the identity, both ways.
    #[test]
    fn merge_with_empty_is_identity(
        updates in stream(12, 200),
        cap in 1usize..8,
    ) {
        let mut s = ConflictSketch::new(cap);
        for &(addr, reason) in &updates {
            s.update(addr, reason);
        }
        let before = s.top(cap);

        let mut merged = s.clone();
        merged.merge(&ConflictSketch::new(cap));
        prop_assert_eq!(&merged.top(cap), &before);

        let mut empty = ConflictSketch::new(cap);
        empty.merge(&s);
        prop_assert_eq!(&empty.top(cap), &before);
        prop_assert_eq!(empty.total(), s.total());
    }
}
