//! Tenants — co-located "processes" hosted in one OS process.
//!
//! The paper co-locates multiple multi-threaded TM *OS processes*; RUBIC
//! needs no cross-process state, so hosting each process as an isolated
//! **tenant** (own thread pool, own monitor, own controller, own STM
//! runtime) inside one OS process preserves the decentralisation
//! property exactly while keeping the harness portable (DESIGN.md §1).
//! The tenants' worker threads contend for the host's CPUs through the
//! OS scheduler, just as separate processes would.

use std::time::Duration;

use rubic_controllers::{Policy, PolicyConfig};
use rubic_runtime::{MalleablePool, PoolConfig, RunReport, Workload};

/// Description of one tenant: its pool shape and allocation policy.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name.
    pub name: String,
    /// Thread-pool size `S`.
    pub pool_size: u32,
    /// Allocation policy.
    pub policy: Policy,
    /// Controller construction parameters.
    pub policy_cfg: PolicyConfig,
    /// Monitoring period (paper: 10 ms).
    pub period: Duration,
    /// Delay after the co-location run starts before this tenant
    /// arrives.
    pub arrival: Duration,
}

impl TenantSpec {
    /// A tenant with `pool_size` workers under `policy`, arriving at
    /// t = 0, 10 ms monitoring.
    #[must_use]
    pub fn new(name: impl Into<String>, pool_size: u32, policy: Policy) -> Self {
        TenantSpec {
            name: name.into(),
            pool_size,
            policy,
            policy_cfg: PolicyConfig {
                pool_size,
                ..PolicyConfig::paper(1)
            },
            period: Duration::from_millis(10),
            arrival: Duration::ZERO,
        }
    }

    /// Sets the arrival delay.
    #[must_use]
    pub fn arrives_after(mut self, delay: Duration) -> Self {
        self.arrival = delay;
        self
    }

    /// Sets the monitoring period.
    #[must_use]
    pub fn monitor_period(mut self, period: Duration) -> Self {
        self.period = period;
        self
    }

    /// Overrides the controller construction parameters (hardware
    /// contexts, EqualShare split, RUBIC constants, tolerance).
    #[must_use]
    pub fn policy_config(mut self, cfg: PolicyConfig) -> Self {
        self.policy_cfg = cfg;
        self
    }
}

/// A tenant ready to start: a spec plus its (type-erased) workload.
pub struct Tenant {
    spec: TenantSpec,
    starter: Box<dyn FnOnce(&TenantSpec) -> MalleablePool + Send>,
}

impl Tenant {
    /// Pairs `spec` with `workload`.
    #[must_use]
    pub fn new<W: Workload>(spec: TenantSpec, workload: W) -> Self {
        Tenant {
            spec,
            starter: Box::new(move |spec: &TenantSpec| {
                let controller = spec.policy.build(&spec.policy_cfg);
                MalleablePool::start(
                    PoolConfig::new(spec.pool_size)
                        .monitor_period(spec.period)
                        .name(spec.name.clone()),
                    workload,
                    controller,
                )
            }),
        }
    }

    /// The tenant's spec.
    #[must_use]
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    pub(crate) fn start(self) -> (TenantSpec, MalleablePool) {
        let pool = (self.starter)(&self.spec);
        (self.spec, pool)
    }
}

/// Runs a single tenant for `duration` and reports.
///
/// The simplest end-to-end entry point: build a workload, pick a
/// policy, observe the level trace the controller produced.
#[must_use]
pub fn run_tenant(tenant: Tenant, duration: Duration) -> TenantReport {
    let (spec, pool) = tenant.start();
    rubic_sync::thread::sleep(duration);
    let report = pool.stop();
    TenantReport {
        name: spec.name,
        policy: spec.policy.label(),
        arrival: spec.arrival,
        period: spec.period,
        report,
    }
}

/// Outcome of one tenant's run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Policy label.
    pub policy: &'static str,
    /// Arrival delay the tenant was configured with.
    pub arrival: Duration,
    /// Monitoring period in force.
    pub period: Duration,
    /// The pool's run report (task counts, level trace).
    pub report: RunReport,
}

impl TenantReport {
    /// Mean task throughput (tasks/second).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.report.throughput()
    }

    /// Mean parallelism level over the run.
    #[must_use]
    pub fn mean_level(&self) -> f64 {
        self.report.trace.mean_level()
    }

    /// Speed-up relative to a measured sequential throughput.
    #[must_use]
    pub fn speedup(&self, seq_throughput: f64) -> f64 {
        rubic_metrics::speedup(self.throughput(), seq_throughput)
    }
}

/// Measures a workload's sequential throughput (1 fixed thread for
/// `duration`) — the `T_seq(ω)` baseline of §4.1.
#[must_use]
pub fn measure_sequential<W: Workload>(workload: W, duration: Duration) -> f64 {
    let pool = MalleablePool::start(
        PoolConfig::new(1).name("seq-baseline"),
        workload,
        Box::new(rubic_controllers::Fixed::new(1, 1)),
    );
    rubic_sync::thread::sleep(duration);
    pool.stop().throughput()
}

/// Sweeps fixed parallelism levels and returns `(level, throughput)`
/// points — the in-vivo scalability graph of Fig. 1 / Fig. 6. The
/// workload is shared across sweep points (wrap it in an `Arc`).
#[must_use]
pub fn scalability_sweep<W: Workload + Clone>(
    workload: W,
    levels: &[u32],
    duration_per_level: Duration,
) -> Vec<(u32, f64)> {
    levels
        .iter()
        .map(|&l| {
            let pool = MalleablePool::start(
                PoolConfig::new(l.max(1))
                    .initial_level(l.max(1))
                    .name(format!("sweep-{l}")),
                workload.clone(),
                Box::new(rubic_controllers::Fixed::new(l.max(1), l.max(1))),
            );
            rubic_sync::thread::sleep(duration_per_level);
            let report = pool.stop();
            (l, report.throughput())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone)]
    struct Spin;
    impl Workload for Spin {
        type WorkerState = ();
        fn init_worker(&self, _tid: usize) {}
        fn run_task(&self, (): &mut ()) {
            std::hint::black_box((0..200u64).fold(0u64, |a, b| a.wrapping_add(b)));
        }
    }

    #[test]
    fn run_tenant_produces_report() {
        let spec = TenantSpec::new("t", 2, Policy::Ebs).monitor_period(Duration::from_millis(2));
        let rep = run_tenant(Tenant::new(spec, Spin), Duration::from_millis(30));
        assert_eq!(rep.name, "t");
        assert_eq!(rep.policy, "EBS");
        assert!(rep.throughput() > 0.0);
        assert!(rep.mean_level() >= 1.0);
    }

    #[test]
    fn sequential_baseline_positive() {
        let t = measure_sequential(Spin, Duration::from_millis(20));
        assert!(t > 0.0);
    }

    #[test]
    fn sweep_returns_requested_levels() {
        let w = Arc::new(Spin);
        let points = scalability_sweep(w, &[1, 2], Duration::from_millis(15));
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, 1);
        assert!(points.iter().all(|&(_, t)| t > 0.0));
    }

    #[test]
    fn speedup_uses_baseline() {
        let spec = TenantSpec::new("t", 1, Policy::Fixed(1));
        let rep = run_tenant(Tenant::new(spec, Spin), Duration::from_millis(20));
        let s = rep.speedup(rep.throughput());
        assert!((s - 1.0).abs() < 1e-9);
    }
}
