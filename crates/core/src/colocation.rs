//! The co-location harness: several tenants sharing one machine, with
//! staggered arrivals — the in-vivo counterpart of the paper's
//! multi-process experiments (§4.5.1 pairwise runs, §4.6 convergence).

use std::time::{Duration, Instant};

use rubic_metrics::LevelTrace;

use crate::tenant::{Tenant, TenantReport};

/// A set of tenants to run together for a fixed duration.
pub struct Colocation {
    tenants: Vec<Tenant>,
    duration: Duration,
}

impl Colocation {
    /// Creates a co-location run lasting `duration` (the paper's
    /// experiments run for 10 s).
    #[must_use]
    pub fn new(duration: Duration) -> Self {
        Colocation {
            tenants: Vec::new(),
            duration,
        }
    }

    /// Adds a tenant.
    #[must_use]
    pub fn tenant(mut self, tenant: Tenant) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// Number of tenants registered so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Runs the co-location: starts each tenant at its arrival time,
    /// stops everything at the end, and reports.
    ///
    /// Starting a pool only spawns threads (it does not block), so one
    /// orchestration thread walking the arrival timeline is exact
    /// enough at monitoring-period granularity.
    #[must_use]
    pub fn run(self) -> ColocationReport {
        let mut tenants = self.tenants;
        // Stable order by arrival so the timeline walk is a single pass.
        tenants.sort_by_key(|t| t.spec().arrival);
        let start = Instant::now();
        let mut running = Vec::new();
        for tenant in tenants {
            let arrival = tenant.spec().arrival.min(self.duration);
            let now = start.elapsed();
            if arrival > now {
                rubic_sync::thread::sleep(arrival - now);
            }
            running.push(tenant.start());
        }
        let elapsed = start.elapsed();
        if self.duration > elapsed {
            rubic_sync::thread::sleep(self.duration - elapsed);
        }
        let reports = running
            .into_iter()
            .map(|(spec, pool)| TenantReport {
                name: spec.name,
                policy: spec.policy.label(),
                arrival: spec.arrival,
                period: spec.period,
                report: pool.stop(),
            })
            .collect();
        ColocationReport {
            duration: self.duration,
            tenants: reports,
        }
    }
}

/// Outcome of a co-location run.
#[derive(Debug, Clone)]
pub struct ColocationReport {
    /// Configured run duration.
    pub duration: Duration,
    /// Per-tenant reports, in arrival order.
    pub tenants: Vec<TenantReport>,
}

impl ColocationReport {
    /// Nash product of tenant speed-ups, given each tenant's sequential
    /// baseline throughput (same order as `tenants`).
    ///
    /// # Panics
    /// Panics if `seq_baselines.len() != tenants.len()`.
    #[must_use]
    pub fn nash_product(&self, seq_baselines: &[f64]) -> f64 {
        assert_eq!(seq_baselines.len(), self.tenants.len());
        self.tenants
            .iter()
            .zip(seq_baselines)
            .map(|(t, &seq)| t.speedup(seq))
            .product()
    }

    /// Total active threads across tenants sampled on a common wall-
    /// clock grid of `step` — the Fig. 7b / Fig. 10 system view.
    /// Each tenant's trace rounds are offset by its arrival.
    #[must_use]
    pub fn total_threads_series(&self, step: Duration) -> Vec<(Duration, u32)> {
        let steps = (self.duration.as_nanos() / step.as_nanos().max(1)) as u64;
        (0..steps)
            .map(|i| {
                let t = step * u32::try_from(i).unwrap_or(u32::MAX);
                let mut total = 0u32;
                for tenant in &self.tenants {
                    if t < tenant.arrival {
                        continue;
                    }
                    let round =
                        ((t - tenant.arrival).as_nanos() / tenant.period.as_nanos().max(1)) as u64;
                    if let Some(p) = tenant
                        .report
                        .trace
                        .points()
                        .iter()
                        .find(|p| p.round == round)
                    {
                        total += p.level;
                    }
                }
                (t, total)
            })
            .collect()
    }

    /// Convenience access to one tenant's level trace by name.
    #[must_use]
    pub fn trace(&self, name: &str) -> Option<&LevelTrace> {
        self.tenants
            .iter()
            .find(|t| t.name == name)
            .map(|t| &t.report.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantSpec;
    use rubic_controllers::Policy;
    use rubic_runtime::Workload;

    #[derive(Clone)]
    struct Spin;
    impl Workload for Spin {
        type WorkerState = ();
        fn init_worker(&self, _tid: usize) {}
        fn run_task(&self, (): &mut ()) {
            std::hint::black_box((0..200u64).fold(0u64, |a, b| a.wrapping_add(b)));
        }
    }

    fn fast_spec(name: &str, policy: Policy) -> TenantSpec {
        TenantSpec::new(name, 2, policy).monitor_period(Duration::from_millis(2))
    }

    #[test]
    fn two_tenants_both_run() {
        let report = Colocation::new(Duration::from_millis(50))
            .tenant(Tenant::new(fast_spec("a", Policy::Ebs), Spin))
            .tenant(Tenant::new(fast_spec("b", Policy::Ebs), Spin))
            .run();
        assert_eq!(report.tenants.len(), 2);
        for t in &report.tenants {
            assert!(t.report.total_tasks > 0, "{} did no work", t.name);
        }
    }

    #[test]
    fn staggered_arrival_shortens_trace() {
        let report = Colocation::new(Duration::from_millis(60))
            .tenant(Tenant::new(fast_spec("first", Policy::Ebs), Spin))
            .tenant(Tenant::new(
                fast_spec("late", Policy::Ebs).arrives_after(Duration::from_millis(40)),
                Spin,
            ))
            .run();
        let first = report.trace("first").unwrap().len();
        let late = report.trace("late").unwrap().len();
        assert!(
            late < first,
            "late tenant should record fewer rounds: {late} vs {first}"
        );
    }

    #[test]
    fn nash_product_needs_matching_baselines() {
        let report = Colocation::new(Duration::from_millis(30))
            .tenant(Tenant::new(fast_spec("a", Policy::Fixed(1)), Spin))
            .run();
        let thr = report.tenants[0].throughput();
        let nash = report.nash_product(&[thr]);
        assert!((nash - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_threads_series_has_grid_shape() {
        let report = Colocation::new(Duration::from_millis(40))
            .tenant(Tenant::new(fast_spec("a", Policy::Fixed(2)), Spin))
            .run();
        let series = report.total_threads_series(Duration::from_millis(10));
        assert_eq!(series.len(), 4);
        assert!(series.iter().any(|&(_, total)| total > 0));
    }

    #[test]
    fn empty_colocation() {
        let c = Colocation::new(Duration::from_millis(1));
        assert!(c.is_empty());
        let report = c.run();
        assert!(report.tenants.is_empty());
    }
}
