//! # RUBIC — online parallelism tuning for co-located TM applications
//!
//! A from-scratch Rust reproduction of *RUBIC: Online Parallelism
//! Tuning for Co-located Transactional Memory Applications* (Mohtasham
//! & Barreto, SPAA 2016), including every substrate the paper builds
//! on. This crate is the facade: it re-exports the subsystem crates and
//! adds the tenant/co-location harness that glues them into end-to-end
//! runs.
//!
//! ## The system at a glance
//!
//! Many transactional-memory applications stop scaling — and then
//! *anti-scale* — past a workload-specific thread count (STAMP's
//! Intruder peaks at 7 threads on a 64-core machine and ends below
//! half its sequential throughput at 64). RUBIC is a feedback
//! controller that retunes each process's active thread count every
//! 10 ms from its own commit-rate, using **cubic growth** and
//! **hybrid linear/multiplicative decrease** borrowed from TCP CUBIC
//! congestion control. Because multiplicative decrease equalises and
//! cubic growth re-saturates, co-located processes converge to a fair,
//! efficient space-sharing of the machine **with zero coordination** —
//! no shared state, no central broker.
//!
//! ## Crate map
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | metrics | [`metrics`] | speed-up, efficiency, Nash product, Jain index, summaries, traces |
//! | controllers | [`controllers`] | RUBIC (Algorithm 2), EBS, F2C2, AIMD, CIMD, Greedy, EqualShare |
//! | STM | [`stm`] | SwissTM-flavoured TM runtime: versioned locks, timestamp extension, epoch reclamation |
//! | runtime | [`runtime`] | malleable thread pool with semaphore gating + monitor (Algorithm 1) |
//! | workloads | [`workloads`] | STAMP-style Vacation, Intruder, red-black-tree micro |
//! | simulator | [`sim`] | 64-context machine model + the paper's experiment protocol |
//! | facade | this crate | [`Tenant`], [`Colocation`], sweeps, prelude |
//!
//! ## Quick start: tune a TM workload in-process
//!
//! ```
//! use std::time::Duration;
//! use rubic::prelude::*;
//!
//! // A transactional red-black tree, 98% look-ups (the paper's micro).
//! let stm = Stm::default();
//! let workload = RbTreeWorkload::new(RbTreeConfig::small(), stm);
//!
//! // One tenant, tuned by RUBIC, monitored every 5 ms.
//! let spec = TenantSpec::new("rbt", 4, Policy::Rubic)
//!     .monitor_period(Duration::from_millis(5));
//! let report = run_tenant(Tenant::new(spec, workload), Duration::from_millis(80));
//! assert!(report.throughput() > 0.0);
//! ```
//!
//! ## Quick start: reproduce a paper experiment in simulation
//!
//! ```
//! use rubic::prelude::*;
//!
//! // Fig. 7a (one pair): Intruder + Vacation under RUBIC vs Greedy.
//! let run = |policy| {
//!     rubic_sim::Experiment::paper(
//!         vec![
//!             WorkloadSpec::new("Intruder", rubic_sim::curves::intruder_like()),
//!             WorkloadSpec::new("Vacation", rubic_sim::curves::vacation_like()),
//!         ],
//!         policy,
//!     )
//!     .repetitions(5)
//!     .run()
//! };
//! assert!(run(Policy::Rubic).nash.mean() > run(Policy::Greedy).nash.mean());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod colocation;
pub mod tenant;

pub use colocation::{Colocation, ColocationReport};
pub use tenant::{
    measure_sequential, run_tenant, scalability_sweep, Tenant, TenantReport, TenantSpec,
};

pub use rubic_controllers as controllers;
pub use rubic_metrics as metrics;
pub use rubic_runtime as runtime;
pub use rubic_sim as sim;
pub use rubic_stm as stm;
pub use rubic_workloads as workloads;

/// Structured event tracing (`rubic-trace`), available with the
/// **`trace`** feature: start a [`trace::TraceSession`], run any
/// instrumented code, and `finish()` into a
/// [`trace::TraceReport`] with latency histograms, abort attribution,
/// and JSONL / `chrome://tracing` exporters.
#[cfg(feature = "trace")]
pub use rubic_trace as trace;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use crate::colocation::{Colocation, ColocationReport};
    pub use crate::tenant::{
        measure_sequential, run_tenant, scalability_sweep, Tenant, TenantReport, TenantSpec,
    };
    pub use rubic_controllers::{
        Aimd, Cimd, Controller, CubicKConvention, Ebs, EqualShare, F2c2, Fixed, Greedy, Policy,
        PolicyConfig, Rubic, RubicConfig, Sample,
    };
    pub use rubic_metrics::{
        efficiency, geometric_mean, jain_index, nash_product, speedup, LevelTrace, Summary,
    };
    pub use rubic_runtime::{
        ChannelWorkload, MalleablePool, PoolConfig, PoolView, RunReport, ShardSender,
        ShardedHandle, ShardedWorkload, WorkerPlacement, Workload,
    };
    pub use rubic_sim::{curves, Experiment, Machine, ProcessSpec, SimConfig, WorkloadSpec};
    pub use rubic_stm::{Stm, StmError, TVar, Transaction, TxResult};
    pub use rubic_workloads::{
        ConflictCounter, GenomeConfig, GenomeWorkload, IntruderConfig, IntruderWorkload,
        KMeansConfig, KMeansWorkload, LabyrinthConfig, LabyrinthWorkload, Manager, Maze, OpMix,
        RbTreeConfig, RbTreeWorkload, StripedCounter, TMap, VacationConfig, VacationWorkload,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_names_resolve() {
        // Compile-time re-export sanity plus a smoke use of each layer.
        let s = speedup(20.0, 10.0);
        assert_eq!(s, 2.0);
        let stm = Stm::default();
        let v = TVar::new(1u32);
        stm.atomically(|tx| tx.write(&v, 2));
        assert_eq!(v.snapshot(), 2);
        assert_eq!(Policy::parse("rubic"), Some(Policy::Rubic));
        assert_eq!(Machine::paper().contexts, 64);
    }
}
