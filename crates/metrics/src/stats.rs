//! Summary statistics used throughout the paper's evaluation: means and
//! standard deviations across the 50 repetitions of each experiment
//! (Fig. 8b, Fig. 9c) and geometric means across workload pairs (Fig. 7a).

/// Streaming summary statistics (Welford's online algorithm).
///
/// Numerically stable for long traces; `O(1)` memory. The standard
/// deviation reported is the *sample* standard deviation (n − 1 in the
/// denominator), matching what one reports over repeated experiments.
///
/// ```
/// let mut s = rubic_metrics::Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n − 1); `0.0` with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population variance (n in the denominator).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `NaN` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation; `NaN` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Coefficient of variation (stddev / mean); `0.0` when the mean is 0.
    #[must_use]
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }
}

impl std::iter::FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

/// Geometric mean of a slice of positive values, used by the paper to
/// average the three pairwise experiments ("GeoAvg" in Fig. 7a).
///
/// Computed in log space for robustness. Returns `0.0` if any value is
/// non-positive (a zero factor annihilates a geometric mean) and `0.0`
/// for an empty slice.
///
/// ```
/// let g = rubic_metrics::geometric_mean(&[1.0, 8.0]);
/// assert!((g - 2.8284271247461903).abs() < 1e-12);
/// ```
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for &v in values {
        if v <= 0.0 {
            return 0.0;
        }
        acc += v.ln();
    }
    (acc / values.len() as f64).exp()
}

/// The `p`-th percentile (nearest-rank with linear interpolation,
/// `p ∈ [0, 100]`). Returns `NaN` for an empty slice. Not streaming;
/// clones and sorts.
///
/// ```
/// let xs = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(rubic_metrics::stats::percentile(&xs, 0.0), 10.0);
/// assert_eq!(rubic_metrics::stats::percentile(&xs, 100.0), 40.0);
/// assert_eq!(rubic_metrics::stats::percentile(&xs, 50.0), 25.0);
/// ```
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median of a slice (averaging the two middle elements for even lengths).
/// Returns `NaN` for an empty slice. Not streaming; clones and sorts.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn single_value() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn known_variance() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.variance() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let whole = Summary::from_slice(&data);
        let mut a = Summary::from_slice(&data[..37]);
        let b = Summary::from_slice(&data[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn from_iterator() {
        let s: Summary = (1..=4).map(f64::from).collect();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[2.0, 0.0]), 0.0);
        assert_eq!(geometric_mean(&[2.0, -1.0]), 0.0);
    }

    #[test]
    fn geometric_le_arithmetic() {
        let v = [1.5, 2.0, 9.0, 0.4];
        let g = geometric_mean(&v);
        let a = v.iter().sum::<f64>() / v.len() as f64;
        assert!(g <= a + 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn percentile_edges_and_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert!((percentile(&xs, 25.0) - 2.0).abs() < 1e-12);
        assert!((percentile(&xs, 90.0) - 4.6).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
        // Median agreement.
        let ys = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&ys, 50.0), median(&ys));
        // Out-of-range p clamps.
        assert_eq!(percentile(&xs, -5.0), 1.0);
        assert_eq!(percentile(&xs, 150.0), 5.0);
    }

    #[test]
    fn cv_zero_mean() {
        let s = Summary::from_slice(&[-1.0, 1.0]);
        assert_eq!(s.cv(), 0.0);
    }
}
