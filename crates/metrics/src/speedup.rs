//! Speed-up and efficiency functions (paper §4.1–§4.2).
//!
//! Throughput in the paper is the transaction commit-rate (commits per
//! second). All functions here are unit-agnostic: any throughput measure is
//! fine as long as the parallel and sequential measurements use the same
//! unit.

/// Speed-up of a process: `S = T_parallel / T_sequential` (paper §4.1).
///
/// `t_seq` is the throughput of a *sequential* (single-thread,
/// single-process) execution of the same workload.
///
/// Returns `0.0` when `t_seq` is non-positive, rather than propagating a
/// meaningless division; a workload with no sequential baseline has no
/// defined speed-up.
///
/// ```
/// assert_eq!(rubic_metrics::speedup(30.0, 10.0), 3.0);
/// assert_eq!(rubic_metrics::speedup(30.0, 0.0), 0.0);
/// ```
#[must_use]
pub fn speedup(t_parallel: f64, t_seq: f64) -> f64 {
    if t_seq <= 0.0 {
        0.0
    } else {
        t_parallel / t_seq
    }
}

/// Efficiency of a process: `E = S / L` (paper §4.2, after Creech et al.'s
/// SCAF), i.e. speed-up per allocated thread.
///
/// An efficiency of `1.0` means perfect linear scaling at the current
/// allocation; values below `1.0` quantify how much hardware the process
/// wastes. Returns `0.0` for a non-positive level.
///
/// ```
/// // 12x speed-up on 16 threads => 75% efficient.
/// assert_eq!(rubic_metrics::efficiency(12.0, 16.0), 0.75);
/// ```
#[must_use]
pub fn efficiency(speedup: f64, level: f64) -> f64 {
    if level <= 0.0 {
        0.0
    } else {
        speedup / level
    }
}

/// The system's overall performance: the product of all processes'
/// speed-ups (Nash's solution to the bargaining problem, paper §4.1).
///
/// This is an alias of [`crate::fairness::nash_product`] under the name
/// the paper uses in its figures ("total speed-up", Fig. 7a).
#[must_use]
pub fn total_speedup(speedups: &[f64]) -> f64 {
    crate::fairness::nash_product(speedups)
}

/// The system's total efficiency: the product of all processes'
/// efficiencies (paper §4.2, Fig. 7c).
///
/// Each element of `pairs` is a `(speedup, level)` tuple for one process.
///
/// ```
/// let total = rubic_metrics::total_efficiency(&[(16.0, 32.0), (3.0, 4.0)]);
/// assert!((total - 0.375).abs() < 1e-12); // 0.5 * 0.75
/// ```
#[must_use]
pub fn total_efficiency(pairs: &[(f64, f64)]) -> f64 {
    pairs.iter().map(|&(s, l)| efficiency(s, l)).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_basic() {
        assert_eq!(speedup(100.0, 25.0), 4.0);
        assert_eq!(speedup(10.0, 20.0), 0.5);
    }

    #[test]
    fn speedup_degenerate_baseline() {
        assert_eq!(speedup(10.0, 0.0), 0.0);
        assert_eq!(speedup(10.0, -1.0), 0.0);
    }

    #[test]
    fn efficiency_basic() {
        assert_eq!(efficiency(8.0, 8.0), 1.0);
        assert_eq!(efficiency(8.0, 16.0), 0.5);
    }

    #[test]
    fn efficiency_degenerate_level() {
        assert_eq!(efficiency(8.0, 0.0), 0.0);
        assert_eq!(efficiency(8.0, -3.0), 0.0);
    }

    #[test]
    fn total_speedup_is_product() {
        assert_eq!(total_speedup(&[2.0, 3.0, 4.0]), 24.0);
        assert_eq!(total_speedup(&[]), 1.0);
    }

    #[test]
    fn total_efficiency_is_product_of_ratios() {
        let t = total_efficiency(&[(4.0, 8.0), (2.0, 2.0)]);
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn starved_process_sinks_total() {
        // NSBP: a starved process (speed-up ~0) drives the system metric
        // to ~0 no matter how well the others do.
        let healthy = total_speedup(&[16.0, 16.0]);
        let starved = total_speedup(&[32.0, 0.01]);
        assert!(starved < healthy);
    }
}
