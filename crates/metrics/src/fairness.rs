//! Fairness metrics: Nash bargaining product, proportional-fairness
//! utility, and Jain's fairness index.
//!
//! The RUBIC paper adopts Nash's solution to the bargaining problem (NSBP,
//! Nash 1950) as the system-wide objective: the *product* of the processes'
//! speed-ups (§4.1). Maximising a product of utilities is equivalent to
//! maximising the sum of their logarithms, which is exactly the
//! *proportional fairness* objective of Kelly et al. used in network rate
//! control — the same lineage as the AIMD/CUBIC congestion-control ideas
//! that RUBIC borrows.
//!
//! Jain's index is provided as an auxiliary, scale-independent fairness
//! measure for allocation vectors (not used by the paper's figures
//! directly, but useful for convergence analytics and tests).

/// Nash bargaining product: `∏ S_ρ` over all processes (paper §4.1).
///
/// The empty product is `1.0` (neutral element), matching the convention
/// that a system with no processes is trivially "optimal".
///
/// ```
/// assert_eq!(rubic_metrics::nash_product(&[2.0, 8.0]), 16.0);
/// ```
#[must_use]
pub fn nash_product(utilities: &[f64]) -> f64 {
    utilities.iter().product()
}

/// Proportional-fairness utility: `Σ ln(S_ρ)` (Kelly et al. 1998).
///
/// This is the logarithm of [`nash_product`]; the two are maximised by the
/// same allocation, but the log form is numerically robust for many
/// processes and makes the "sacrifice a little of a scalable process for a
/// big gain of a poorly scalable one" trade-off explicit: moving 1% of
/// speed-up from a process is worth it whenever it buys more than 1%
/// (relative) elsewhere — the exact behaviour the paper observes from
/// RUBIC in Fig. 8a.
///
/// Non-positive utilities contribute `f64::NEG_INFINITY`, mirroring the
/// bargaining-problem rule that a starved participant vetoes the outcome.
#[must_use]
pub fn proportional_fairness_utility(utilities: &[f64]) -> f64 {
    utilities
        .iter()
        .map(|&u| if u > 0.0 { u.ln() } else { f64::NEG_INFINITY })
        .sum()
}

/// Jain's fairness index for an allocation vector:
/// `(Σ x)² / (n · Σ x²)`.
///
/// Ranges in `(0, 1]`; `1.0` iff all allocations are equal, `1/n` when a
/// single process holds everything. Returns `1.0` for an empty or all-zero
/// vector (vacuously fair).
///
/// ```
/// let even = rubic_metrics::jain_index(&[32.0, 32.0]);
/// assert!((even - 1.0).abs() < 1e-12);
/// let skewed = rubic_metrics::jain_index(&[63.0, 1.0]);
/// assert!(skewed < 0.6);
/// ```
#[must_use]
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len() as f64;
    let sum: f64 = allocations.iter().sum();
    let sq_sum: f64 = allocations.iter().map(|x| x * x).sum();
    if n == 0.0 || sq_sum == 0.0 {
        1.0
    } else {
        (sum * sum) / (n * sq_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nash_product_basics() {
        assert_eq!(nash_product(&[]), 1.0);
        assert_eq!(nash_product(&[5.0]), 5.0);
        assert_eq!(nash_product(&[2.0, 3.0]), 6.0);
    }

    #[test]
    fn nash_prefers_equal_split_for_identical_processes() {
        // §4.1: "in a contended system running identical processes,
        // equally sharing the hardware maximizes the system's overall
        // performance". With a concave speed-up curve S(l) = sqrt(l) and
        // 64 contexts, check the equal split beats skewed splits.
        let s = |l: f64| l.sqrt();
        let even = nash_product(&[s(32.0), s(32.0)]);
        for skew in [1.0, 8.0, 16.0, 24.0] {
            let uneven = nash_product(&[s(32.0 - skew), s(32.0 + skew)]);
            assert!(even > uneven, "skew {skew}: {even} vs {uneven}");
        }
    }

    #[test]
    fn log_utility_matches_product_ordering() {
        let a = [2.0, 8.0];
        let b = [4.0, 4.0];
        assert_eq!(
            nash_product(&a) < nash_product(&b),
            proportional_fairness_utility(&a) < proportional_fairness_utility(&b)
        );
    }

    #[test]
    fn log_utility_starvation_is_neg_infinity() {
        assert_eq!(
            proportional_fairness_utility(&[4.0, 0.0]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn jain_bounds() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        let single = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((single - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
