//! Time-series analytics for convergence experiments.
//!
//! The paper's Figures 3, 5 and 10 plot the *parallelism level over time*
//! of each process and reason about the series' average (the dashed lines
//! in Fig. 3/5), how quickly it converges after a disturbance (a process
//! arrival in Fig. 10), and how hard it oscillates around the optimum.
//! [`LevelTrace`] captures one process's `(round, level, throughput)`
//! samples and computes those quantities.

/// One monitoring-round sample of a process.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TracePoint {
    /// Monitoring round index (one round = one `TIME_PERIOD`, 10 ms in the
    /// paper's setup).
    pub round: u64,
    /// Parallelism level (active threads) chosen for this round.
    pub level: u32,
    /// Throughput observed during this round (commits per second, or any
    /// consistent unit).
    pub throughput: f64,
    /// Transaction aborts observed during this round (0 when the
    /// producer does not account aborts — e.g. the analytic simulator).
    pub aborts: u64,
}

/// A process's recorded control trace: level and throughput per round.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LevelTrace {
    points: Vec<TracePoint>,
}

impl LevelTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        LevelTrace { points: Vec::new() }
    }

    /// Creates an empty trace with capacity for `rounds` samples.
    #[must_use]
    pub fn with_capacity(rounds: usize) -> Self {
        LevelTrace {
            points: Vec::with_capacity(rounds),
        }
    }

    /// Appends a sample with no abort information (aborts = 0).
    pub fn push(&mut self, round: u64, level: u32, throughput: f64) {
        self.push_with_aborts(round, level, throughput, 0);
    }

    /// Appends a sample carrying the round's abort count alongside its
    /// throughput — the full per-interval record the malleable pool's
    /// monitor produces.
    pub fn push_with_aborts(&mut self, round: u64, level: u32, throughput: f64, aborts: u64) {
        self.points.push(TracePoint {
            round,
            level,
            throughput,
            aborts,
        });
    }

    /// All recorded samples, in insertion order.
    #[must_use]
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The mean parallelism level over the whole trace — the dashed line
    /// of the paper's Fig. 3/5. `0.0` when empty.
    #[must_use]
    pub fn mean_level(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| f64::from(p.level)).sum::<f64>() / self.points.len() as f64
    }

    /// Mean level over a round window `[from, to)`. `0.0` if no samples
    /// fall in the window.
    #[must_use]
    pub fn mean_level_in(&self, from: u64, to: u64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in &self.points {
            if p.round >= from && p.round < to {
                sum += f64::from(p.level);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean throughput over the whole trace. `0.0` when empty.
    #[must_use]
    pub fn mean_throughput(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.throughput).sum::<f64>() / self.points.len() as f64
    }

    /// Hardware utilisation implied by the trace: mean level divided by
    /// the number of hardware contexts. The paper quotes 75% for AIMD and
    /// ~94% for cubic growth on a 64-core machine (§2.2).
    #[must_use]
    pub fn utilization(&self, hw_contexts: u32) -> f64 {
        if hw_contexts == 0 {
            0.0
        } else {
            self.mean_level() / f64::from(hw_contexts)
        }
    }

    /// First round index (not sample index) from which the level stays
    /// within `target ± tolerance` for the remainder of the trace, or
    /// `None` if it never settles. This is the "convergence time" used to
    /// compare policies in Fig. 10.
    #[must_use]
    pub fn convergence_round(&self, target: f64, tolerance: f64) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        // Walk backwards: find the last point *outside* the band; the
        // convergence point is the next sample after it.
        let mut candidate: Option<u64> = None;
        for p in self.points.iter().rev() {
            if (f64::from(p.level) - target).abs() <= tolerance {
                candidate = Some(p.round);
            } else {
                break;
            }
        }
        candidate
    }

    /// Peak-to-trough amplitude of the level within the round window
    /// `[from, to)` — the size of the steady-state oscillation. `0.0` if
    /// fewer than two samples fall in the window.
    #[must_use]
    pub fn oscillation_amplitude(&self, from: u64, to: u64) -> f64 {
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        let mut n = 0usize;
        for p in &self.points {
            if p.round >= from && p.round < to {
                lo = lo.min(p.level);
                hi = hi.max(p.level);
                n += 1;
            }
        }
        if n < 2 {
            0.0
        } else {
            f64::from(hi - lo)
        }
    }

    /// Standard deviation of the level over the whole trace (a stability
    /// measure analogous to Fig. 8b's cross-repetition std-dev, but within
    /// a single run).
    #[must_use]
    pub fn level_stddev(&self) -> f64 {
        crate::stats::Summary::from_iter(self.points.iter().map(|p| f64::from(p.level))).stddev()
    }

    /// Total aborts recorded across all samples.
    #[must_use]
    pub fn total_aborts(&self) -> u64 {
        self.points.iter().map(|p| p.aborts).sum()
    }

    /// Total committed work implied by the trace, assuming each sample's
    /// throughput held for `round_secs` seconds. This is how experiment
    /// harnesses turn round-granularity traces into the paper's
    /// whole-run commit counts.
    #[must_use]
    pub fn total_work(&self, round_secs: f64) -> f64 {
        self.points.iter().map(|p| p.throughput * round_secs).sum()
    }
}

impl std::iter::FromIterator<TracePoint> for LevelTrace {
    fn from_iter<I: IntoIterator<Item = TracePoint>>(iter: I) -> Self {
        LevelTrace {
            points: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(levels: &[u32]) -> LevelTrace {
        let mut t = LevelTrace::new();
        for (i, &l) in levels.iter().enumerate() {
            t.push(i as u64, l, f64::from(l) * 100.0);
        }
        t
    }

    #[test]
    fn empty_trace() {
        let t = LevelTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.mean_level(), 0.0);
        assert_eq!(t.mean_throughput(), 0.0);
        assert_eq!(t.convergence_round(32.0, 1.0), None);
    }

    #[test]
    fn mean_level_and_utilization() {
        let t = trace(&[32, 64, 48]);
        assert!((t.mean_level() - 48.0).abs() < 1e-12);
        assert!((t.utilization(64) - 0.75).abs() < 1e-12);
        assert_eq!(t.utilization(0), 0.0);
    }

    #[test]
    fn windowed_mean() {
        let t = trace(&[10, 20, 30, 40]);
        assert!((t.mean_level_in(1, 3) - 25.0).abs() < 1e-12);
        assert_eq!(t.mean_level_in(10, 20), 0.0);
    }

    #[test]
    fn convergence_detection() {
        // Levels: climb, overshoot, then settle at 32 +/- 1 from round 5.
        let t = trace(&[1, 8, 40, 50, 20, 31, 32, 33, 32, 31]);
        assert_eq!(t.convergence_round(32.0, 1.0), Some(5));
    }

    #[test]
    fn convergence_never() {
        let t = trace(&[1, 64, 1, 64]);
        assert_eq!(t.convergence_round(32.0, 1.0), None);
    }

    #[test]
    fn convergence_whole_trace_inside_band() {
        let t = trace(&[32, 32, 32]);
        assert_eq!(t.convergence_round(32.0, 1.0), Some(0));
    }

    #[test]
    fn oscillation_amplitude_window() {
        let t = trace(&[10, 60, 40, 50, 45]);
        assert_eq!(t.oscillation_amplitude(2, 5), 10.0);
        assert_eq!(t.oscillation_amplitude(0, 5), 50.0);
        assert_eq!(t.oscillation_amplitude(4, 5), 0.0); // single sample
    }

    #[test]
    fn total_work_integrates_throughput() {
        let t = trace(&[10, 20]); // throughputs 1000, 2000
        assert!((t.total_work(0.01) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn level_stddev_constant_is_zero() {
        assert_eq!(trace(&[5, 5, 5]).level_stddev(), 0.0);
        assert!(trace(&[1, 9]).level_stddev() > 0.0);
    }

    #[test]
    fn aborts_accumulate_per_sample() {
        let mut t = LevelTrace::new();
        t.push(0, 1, 100.0); // no abort info => 0
        t.push_with_aborts(1, 2, 200.0, 7);
        t.push_with_aborts(2, 2, 150.0, 3);
        assert_eq!(t.points()[0].aborts, 0);
        assert_eq!(t.points()[1].aborts, 7);
        assert_eq!(t.total_aborts(), 10);
    }
}
