//! Performance, efficiency and fairness metrics for parallelism-tuning
//! experiments, as defined in Sections 4.1 and 4.2 of the RUBIC paper
//! (Mohtasham & Barreto, SPAA '16).
//!
//! The paper evaluates allocation policies with three families of metrics:
//!
//! * **Speed-up** of a process `ρ` running workload `ω`:
//!   `S_ρ(ω) = T_ρ(ω) / T_seq(ω)` — the ratio between the throughput the
//!   process obtains and the throughput of a sequential (1-thread,
//!   single-process) execution of the same workload
//!   ([`speedup::speedup`]).
//! * **System-wide performance** via Nash's solution to the bargaining
//!   problem (NSBP): the *product* of all processes' speed-ups
//!   ([`fairness::nash_product`]). Maximising the product simultaneously
//!   rewards overall throughput and fairness (a starved process drives the
//!   product towards zero), and is equivalent to proportional fairness.
//! * **Efficiency** `E_ρ(ω) = S_ρ(ω) / L_ρ(ω)` — speed-up per allocated
//!   thread ([`speedup::efficiency`]) — and the system's total efficiency,
//!   again as a product ([`speedup::total_efficiency`]).
//!
//! On top of those paper-defined metrics this crate provides the summary
//! statistics used throughout the evaluation (mean / standard deviation
//! across 50 repetitions, geometric means across workload pairs — see
//! [`stats`]) and time-series analytics for convergence experiments such
//! as the paper's Figure 10 (average parallelism level, utilisation,
//! convergence time, oscillation amplitude — see [`timeseries`]).
//!
//! # Example
//!
//! ```
//! use rubic_metrics::{speedup, fairness};
//!
//! // Two co-located processes: throughputs relative to their own
//! // sequential executions.
//! let s1 = speedup::speedup(40_000.0, 2_500.0); // 16x
//! let s2 = speedup::speedup(9_000.0, 3_000.0); // 3x
//! let system = fairness::nash_product(&[s1, s2]);
//! assert!((system - 48.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fairness;
pub mod speedup;
pub mod stats;
pub mod timeseries;

pub use fairness::{jain_index, nash_product, proportional_fairness_utility};
pub use speedup::{efficiency, speedup, total_efficiency, total_speedup};
pub use stats::{geometric_mean, median, percentile, Summary};
pub use timeseries::{LevelTrace, TracePoint};
