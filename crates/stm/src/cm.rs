//! Contention managers: what an aborted transaction does before
//! retrying.
//!
//! Our STM resolves every conflict by aborting the transaction that
//! *detected* it (self-abort, like SwissTM's "timid" first phase), so
//! the contention manager's job reduces to spacing retries out in time.
//! Three policies are provided:
//!
//! * [`Backoff`] — capped exponential backoff (spin, then yield).
//!   The default; the standard choice for invisible-read STMs, where an
//!   aborted reader cannot identify its enemy to arbitrate against.
//! * [`Polite`] — linear backoff with yields; gentler under heavy
//!   oversubscription (it surrenders the time slice early, which matters
//!   when more software threads than hardware contexts are runnable —
//!   precisely the regime the RUBIC paper studies).
//! * [`Aggressive`] — retry immediately; useful as a baseline in the
//!   contention-manager ablation bench and for very short transactions.

/// Decides how long an aborted transaction waits before retrying.
///
/// `attempt` is the number of consecutive aborts of the current
/// operation (1 on the first abort). Implementations must be cheap and
/// callable from any thread.
pub trait ContentionManager: Send + Sync {
    /// Blocks/spins the calling thread appropriately for the `attempt`-th
    /// consecutive abort.
    fn backoff(&self, attempt: u32);

    /// Policy name for diagnostics and bench labels.
    fn name(&self) -> &'static str;
}

/// Capped exponential backoff: spin `base << min(attempt, max_exp)`
/// iterations, and additionally yield the time slice once past
/// `yield_after` consecutive aborts.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_spins: u32,
    max_exp: u32,
    yield_after: u32,
}

impl Backoff {
    /// Creates an exponential backoff policy.
    #[must_use]
    pub fn new(base_spins: u32, max_exp: u32, yield_after: u32) -> Self {
        Backoff {
            base_spins: base_spins.max(1),
            max_exp,
            yield_after: yield_after.max(1),
        }
    }
}

impl Default for Backoff {
    /// 32 base spins, doubling up to 2^10×, yielding from the 4th
    /// consecutive abort — a reasonable middle ground measured on the
    /// counter and red-black-tree microbenches.
    fn default() -> Self {
        Backoff::new(32, 10, 4)
    }
}

impl ContentionManager for Backoff {
    fn backoff(&self, attempt: u32) {
        let exp = attempt.min(self.max_exp);
        let spins = self.base_spins.saturating_shl(exp);
        for _ in 0..spins {
            std::hint::spin_loop();
        }
        if attempt >= self.yield_after {
            rubic_sync::thread::yield_now();
        }
    }

    fn name(&self) -> &'static str {
        "backoff"
    }
}

/// Linear, yield-first backoff.
#[derive(Debug, Clone, Default)]
pub struct Polite;

impl ContentionManager for Polite {
    fn backoff(&self, attempt: u32) {
        // Yield once per abort, plus a short linear spin to avoid
        // hammering the scheduler for micro-conflicts.
        for _ in 0..(attempt.min(64) * 16) {
            std::hint::spin_loop();
        }
        rubic_sync::thread::yield_now();
    }

    fn name(&self) -> &'static str {
        "polite"
    }
}

/// No backoff at all: retry immediately.
#[derive(Debug, Clone, Default)]
pub struct Aggressive;

impl ContentionManager for Aggressive {
    fn backoff(&self, _attempt: u32) {}

    fn name(&self) -> &'static str {
        "aggressive"
    }
}

trait SaturatingShl {
    fn saturating_shl(self, exp: u32) -> Self;
}

impl SaturatingShl for u32 {
    fn saturating_shl(self, exp: u32) -> u32 {
        // `checked_shl` only rejects shift amounts >= 32, not shifted-out
        // bits, so test the leading zeros explicitly.
        if exp >= 32 || self.leading_zeros() < exp {
            u32::MAX
        } else {
            self << exp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_terminates() {
        let b = Backoff::default();
        for attempt in [0, 1, 5, 50, u32::MAX] {
            b.backoff(attempt); // must not hang or overflow
        }
    }

    #[test]
    fn polite_and_aggressive_terminate() {
        Polite.backoff(u32::MAX);
        Aggressive.backoff(u32::MAX);
    }

    #[test]
    fn names() {
        assert_eq!(Backoff::default().name(), "backoff");
        assert_eq!(Polite.name(), "polite");
        assert_eq!(Aggressive.name(), "aggressive");
    }

    #[test]
    fn saturating_shl_caps() {
        assert_eq!(1u32.saturating_shl(40), u32::MAX);
        assert_eq!(2u32.saturating_shl(3), 16);
        assert_eq!(u32::MAX.saturating_shl(1), u32::MAX);
    }

    #[test]
    fn backoff_grows_with_attempts() {
        // Indirect check: higher attempts spin at least as many
        // iterations (we time it loosely; just assert no panic and
        // monotone configured spins).
        let b = Backoff::new(1, 4, 100);
        // spins: attempt 0 -> 1, 1 -> 2, ..., capped at 2^4.
        b.backoff(0);
        b.backoff(4);
        b.backoff(9);
    }
}
