//! A SwissTM-flavoured software transactional memory substrate.
//!
//! The RUBIC paper runs its workloads on the RSTM framework with SwissTM
//! as the underlying TM runtime. No mature Rust STM exists, so this crate
//! implements the substrate from scratch with the same design DNA:
//!
//! * **Time-based validation** — a process-global version clock
//!   ([`clock`]) stamps every writing commit; transactions validate reads
//!   against their *read version* and **extend** it lazily (TinySTM /
//!   SwissTM style) instead of aborting on every stale-but-consistent
//!   read the way TL2 does.
//! * **Invisible reads** — readers leave no trace in shared memory. A
//!   read samples the variable's versioned lock, loads the value, and
//!   re-samples the lock ([`txn`]); inconsistent interleavings retry or
//!   conflict.
//! * **Eager write locking, lazy write-back** — the first write to a
//!   [`TVar`] acquires its versioned lock (eager write/write conflict
//!   detection, as in SwissTM); the new value is buffered privately and
//!   published only at commit.
//! * **Epoch-based reclamation** — values are immutable once published;
//!   a commit swaps in a freshly allocated value and retires the old one
//!   through `crossbeam-epoch`. This is what makes invisible reads sound
//!   in Rust's memory model: readers clone an immutable snapshot instead
//!   of racing on bytes the way C-style word-based STMs do.
//! * **Pluggable contention management** ([`cm`]) — bounded exponential
//!   backoff by default, with polite (wait-then-abort) and aggressive
//!   variants.
//!
//! # Quick start
//!
//! ```
//! use rubic_stm::{Stm, TVar};
//!
//! let stm = Stm::default();
//! let account_a = TVar::new(100i64);
//! let account_b = TVar::new(0i64);
//!
//! // Transfer atomically: either both updates happen or neither.
//! stm.atomically(|tx| {
//!     let a = tx.read(&account_a)?;
//!     let b = tx.read(&account_b)?;
//!     tx.write(&account_a, a - 30)?;
//!     tx.write(&account_b, b + 30)?;
//!     Ok(())
//! });
//!
//! assert_eq!(stm.atomically(|tx| tx.read(&account_a)), 70);
//! assert_eq!(stm.atomically(|tx| tx.read(&account_b)), 30);
//! assert_eq!(stm.stats().commits(), 3);
//! ```
//!
//! # Relation to the paper
//!
//! The malleable runtime (`rubic-runtime`) counts *task* completions for
//! the controller's throughput signal, exactly as §3.1 prescribes
//! (thread-local counters, no atomics). This crate's [`stats`] module
//! additionally tracks per-`Stm` commit/abort totals so workloads can
//! report commit-rate — the throughput metric of the paper's evaluation.

#![warn(missing_docs)]
// `unsafe` is confined to `tvar.rs` (epoch-pointer dereferences) and
// justified inline at each site; any future `unsafe fn` must spell its
// internal unsafety out block by block.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod abort;
pub mod chaos;
pub mod clock;
pub mod cm;
mod index;
#[cfg(feature = "mvcc")]
mod snap;
pub mod stats;
pub mod stm;
mod trc;
pub mod tvar;
pub mod txn;
pub mod vlock;

pub use abort::AbortReason;
pub use cm::{Aggressive, Backoff, ContentionManager, Polite};
pub use stats::{take_thread_aborts, StatsSnapshot, StmStats};
pub use stm::{Stm, StmBuilder};
pub use trc::trace_footprint;
pub use tvar::TVar;
pub use txn::{StmError, Transaction, TxFootprint, TxResult};

/// Marker alias for types storable in a [`TVar`]: cloneable, shareable
/// across threads, and owning (`'static`, since committed values outlive
/// the creating transaction inside the epoch garbage collector).
pub trait TxValue: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> TxValue for T {}
