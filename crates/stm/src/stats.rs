//! Commit/abort accounting.
//!
//! Each [`crate::Stm`] instance owns one [`StmStats`]: cache-padded
//! atomic totals updated once per transaction attempt with `Relaxed`
//! ordering. That is deliberately *not* the paper's throughput path —
//! §3.1's thread-local task counters live in `rubic-runtime`, and this
//! module only provides the commit-rate diagnostics the evaluation
//! reports (and the abort-rate visibility useful when tuning contention
//! managers).

use rubic_sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

use crate::abort::AbortReason;

/// Cumulative transaction statistics for one [`crate::Stm`] instance.
#[derive(Debug, Default)]
pub struct StmStats {
    commits: CachePadded<AtomicU64>,
    aborts: CachePadded<AtomicU64>,
    reads: CachePadded<AtomicU64>,
    writes: CachePadded<AtomicU64>,
    /// Aborts broken down by [`AbortReason`], indexed by reason code.
    /// One shared cache line: reason counters are bumped on the abort
    /// path only, where a miss is already amortised by the backoff.
    by_reason: [AtomicU64; AbortReason::COUNT],
    /// Commits by [`crate::Stm::read_only`] transactions (a subset of
    /// `commits`). Unconditional — a plain counter is cheaper than a
    /// cfg'd hole in the snapshot type, and the mvcc abort-freedom claim
    /// (`ro_aborts == 0` under snapshot mode) is benchmarked off it.
    ro_commits: CachePadded<AtomicU64>,
    /// Aborted attempts inside `read_only` (a subset of `aborts`).
    ro_aborts: CachePadded<AtomicU64>,
    /// Snapshot transactions demoted to the classic validated protocol
    /// (registry exhaustion, repeated chain-overflow staleness, or a
    /// body that wrote). Unconditional for the same reason as
    /// `ro_commits`: a plain counter beats a cfg'd hole in the
    /// snapshot type, and it stays 0 in non-mvcc builds.
    snap_demotions: CachePadded<AtomicU64>,
}

impl StmStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        StmStats::default()
    }

    // ordering: pure monotonic counters — no reader derives ownership
    // or publication from them, so Relaxed increments suffice.
    #[inline]
    pub(crate) fn record_commit(&self, reads: u64, writes: u64) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.reads.fetch_add(reads, Ordering::Relaxed);
        self.writes.fetch_add(writes, Ordering::Relaxed);
    }

    // ordering: same counter discipline as `record_commit`.
    #[inline]
    pub(crate) fn record_abort(&self, reason: AbortReason) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
        self.by_reason[reason.code() as usize].fetch_add(1, Ordering::Relaxed);
    }

    // ordering: same counter discipline as `record_commit`.
    #[inline]
    pub(crate) fn record_ro_commit(&self) {
        self.ro_commits.fetch_add(1, Ordering::Relaxed);
    }

    // ordering: same counter discipline as `record_commit`.
    #[inline]
    pub(crate) fn record_ro_abort(&self) {
        self.ro_aborts.fetch_add(1, Ordering::Relaxed);
    }

    // ordering: same counter discipline as `record_commit`. Only called
    // from the mvcc snapshot fallback path; allowed to be dead elsewhere.
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn record_snap_demotion(&self) {
        self.snap_demotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Total committed transactions.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed) // ordering: monitoring read of a counter
    }

    /// Total aborted attempts.
    #[must_use]
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed) // ordering: monitoring read of a counter
    }

    /// Aborts attributed to one [`AbortReason`].
    #[must_use]
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        // ordering: monitoring read of a counter
        self.by_reason[reason.code() as usize].load(Ordering::Relaxed)
    }

    /// The full abort breakdown, indexed by reason code. The entries sum
    /// to [`aborts`](Self::aborts) (up to relaxed-load skew while other
    /// threads are mid-abort).
    #[must_use]
    pub fn aborts_by_reason(&self) -> [u64; AbortReason::COUNT] {
        let mut out = [0; AbortReason::COUNT];
        for (slot, counter) in out.iter_mut().zip(&self.by_reason) {
            *slot = counter.load(Ordering::Relaxed); // ordering: monitoring read
        }
        out
    }

    /// Total transactional reads performed by committed transactions.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed) // ordering: monitoring read of a counter
    }

    /// Total transactional writes performed by committed transactions.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed) // ordering: monitoring read of a counter
    }

    /// Commits by [`crate::Stm::read_only`] transactions (a subset of
    /// [`commits`](Self::commits)).
    #[must_use]
    pub fn ro_commits(&self) -> u64 {
        self.ro_commits.load(Ordering::Relaxed) // ordering: monitoring read of a counter
    }

    /// Aborted attempts inside [`crate::Stm::read_only`] (a subset of
    /// [`aborts`](Self::aborts)). Exactly `0` when every read-only
    /// transaction ran in mvcc snapshot mode.
    #[must_use]
    pub fn ro_aborts(&self) -> u64 {
        self.ro_aborts.load(Ordering::Relaxed) // ordering: monitoring read of a counter
    }

    /// Snapshot transactions that fell back to the classic validated
    /// protocol (mvcc mode only; always `0` otherwise).
    #[must_use]
    pub fn snap_demotions(&self) -> u64 {
        self.snap_demotions.load(Ordering::Relaxed) // ordering: monitoring read of a counter
    }

    /// Fraction of attempts that aborted: `aborts / (commits + aborts)`.
    /// `0.0` before any attempt finishes.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let c = self.commits();
        let a = self.aborts();
        if c + a == 0 {
            0.0
        } else {
            a as f64 / (c + a) as f64
        }
    }

    /// Takes a point-in-time snapshot (the individual loads are relaxed
    /// and not mutually atomic; fine for monitoring).
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits(),
            aborts: self.aborts(),
            reads: self.reads(),
            writes: self.writes(),
            abort_reasons: self.aborts_by_reason(),
            ro_commits: self.ro_commits(),
            ro_aborts: self.ro_aborts(),
            snap_demotions: self.snap_demotions(),
        }
    }
}

/// A point-in-time copy of [`StmStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Reads by committed transactions.
    pub reads: u64,
    /// Writes by committed transactions.
    pub writes: u64,
    /// Aborts by [`AbortReason`], indexed by reason code.
    pub abort_reasons: [u64; AbortReason::COUNT],
    /// Commits by read-only transactions (a subset of `commits`).
    pub ro_commits: u64,
    /// Aborted attempts inside read-only transactions (a subset of
    /// `aborts`).
    pub ro_aborts: u64,
    /// Snapshot transactions demoted to the classic protocol.
    pub snap_demotions: u64,
}

impl StatsSnapshot {
    /// Element-wise difference (`self` must be the later snapshot); used
    /// to compute per-interval commit rates.
    #[must_use]
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut abort_reasons = [0; AbortReason::COUNT];
        for ((slot, &now), &then) in abort_reasons
            .iter_mut()
            .zip(&self.abort_reasons)
            .zip(&earlier.abort_reasons)
        {
            *slot = now.saturating_sub(then);
        }
        StatsSnapshot {
            commits: self.commits.saturating_sub(earlier.commits),
            aborts: self.aborts.saturating_sub(earlier.aborts),
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            abort_reasons,
            ro_commits: self.ro_commits.saturating_sub(earlier.ro_commits),
            ro_aborts: self.ro_aborts.saturating_sub(earlier.ro_aborts),
            snap_demotions: self.snap_demotions.saturating_sub(earlier.snap_demotions),
        }
    }
}

thread_local! {
    /// Aborts experienced by *this thread* since the last drain — the
    /// runtime's per-worker abort attribution (mirrors the paper's
    /// thread-local task counters: no shared-memory traffic on the hot
    /// path, the monitor drains at interval boundaries).
    static THREAD_ABORTS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

#[inline]
pub(crate) fn note_thread_abort() {
    THREAD_ABORTS.with(|c| c.set(c.get() + 1));
}

/// Returns and resets the calling thread's abort count (aborts observed
/// by any [`crate::Stm`] on this thread since the previous call).
/// Worker loops call this once per task so the pool can account aborts
/// per worker and per monitoring interval.
#[must_use]
pub fn take_thread_aborts() -> u64 {
    THREAD_ABORTS.with(|c| c.replace(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let s = StmStats::new();
        s.record_commit(3, 1);
        s.record_commit(2, 0);
        s.record_abort(AbortReason::LockBusy);
        assert_eq!(s.commits(), 2);
        assert_eq!(s.aborts(), 1);
        assert_eq!(s.reads(), 5);
        assert_eq!(s.writes(), 1);
    }

    #[test]
    fn abort_rate() {
        let s = StmStats::new();
        assert_eq!(s.abort_rate(), 0.0);
        s.record_commit(0, 0);
        s.record_abort(AbortReason::ReadValidation);
        s.record_abort(AbortReason::LockBusy);
        s.record_commit(0, 0);
        assert!((s.abort_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_delta() {
        let s = StmStats::new();
        s.record_commit(1, 1);
        let a = s.snapshot();
        s.record_commit(1, 1);
        s.record_abort(AbortReason::Chaos);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.commits, 1);
        assert_eq!(d.aborts, 1);
        assert_eq!(d.abort_reasons[AbortReason::Chaos.code() as usize], 1);
        assert_eq!(d.abort_reasons.iter().sum::<u64>(), 1);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let s = StmStats::new();
        s.record_abort(AbortReason::ReadValidation);
        s.record_abort(AbortReason::ReadValidation);
        s.record_abort(AbortReason::LockBusy);
        s.record_abort(AbortReason::Explicit);
        assert_eq!(s.aborts(), 4);
        let by = s.aborts_by_reason();
        assert_eq!(by.iter().sum::<u64>(), s.aborts());
        assert_eq!(s.aborts_for(AbortReason::ReadValidation), 2);
        assert_eq!(s.aborts_for(AbortReason::LockBusy), 1);
        assert_eq!(s.aborts_for(AbortReason::CmKill), 0);
        assert_eq!(s.aborts_for(AbortReason::Explicit), 1);
    }

    #[test]
    fn concurrent_updates_sum() {
        use std::sync::Arc;
        let s = Arc::new(StmStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_commit(1, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.commits(), 4000);
        assert_eq!(s.reads(), 4000);
    }
}
