//! Transaction-private access-set indices with a small-set fast path.
//!
//! A transaction's read and write sets are keyed by lock address. The
//! seed implementation used `std::collections::HashMap` with its
//! DoS-resistant SipHash default — two multi-round hash computations on
//! *every* transactional read (read-your-writes probe + read-set
//! record) for keys that are process-private pointers an attacker never
//! chooses. This module replaces it with a [`VarIndex`] tuned to the
//! footprint STAMP-style transactions actually have:
//!
//! * **Small sets (≤ [`SPILL_THRESHOLD`] entries)** — the common case;
//!   the index is a dense `Vec<(addr, value)>` probed by linear scan.
//!   For a handful of entries a scan over one cache line beats any hash
//!   map: no hashing, no bucket indirection, no empty-slot probing.
//! * **Large sets** — the index *spills*: an [`fxhash`]-keyed map from
//!   address to entry position is built once and maintained alongside
//!   the dense vector, restoring O(1) probes. FxHash on a `usize` key
//!   is three ALU instructions, not SipHash's permutation rounds.
//!
//! `clear()` keeps every allocation (the dense vector's and the spilled
//! map's), so a transaction that retries — exactly when contention is
//! highest — re-indexes into memory it already owns.

use fxhash::FxHashMap;

/// Entry count above which a [`VarIndex`] builds its hashed view.
///
/// Tuned empirically with `stmbench` on the CI container class: the
/// counter workloads (1–3 locations) run ~50 % faster linear-scanned
/// than always-hashed, while rbtree-sized footprints (~13+ locations,
/// which cross any small threshold every transaction and so always pay
/// the spill backfill) lose ~15 % to long absence-scans when the
/// threshold is 8–16. Four keeps the full small-set win and caps both
/// the scan length and the one-time backfill at spill.
///
/// The per-node B-tree (`rubic-workloads::btree`, branch fanout 16,
/// leaf capacity 32) was sized with this threshold in mind: a
/// root-to-leaf descent at the
/// stmbench instance size (4 K entries) reads 3–4 node `TVar`s and a
/// non-structural update writes one, so both access sets stay inline.
/// Only split/merge transactions (a few percent of write-heavy ops)
/// spill, and those already pay for node reconstruction.
pub(crate) const SPILL_THRESHOLD: usize = 4;

/// An insert-only map from lock address to a `Copy` payload, optimised
/// for small cardinalities and allocation reuse across `clear()`.
#[derive(Debug)]
pub(crate) struct VarIndex<V> {
    /// Dense entries in insertion order; always the source of truth.
    entries: Vec<(usize, V)>,
    /// Hashed view (`addr -> entries position`), maintained only while
    /// [`spilled`](Self::spilled) — kept allocated across `clear()`.
    map: FxHashMap<usize, usize>,
    /// True once `entries` outgrew the linear-scan fast path.
    spilled: bool,
}

impl<V: Copy> VarIndex<V> {
    pub(crate) fn new() -> Self {
        VarIndex {
            entries: Vec::new(),
            map: FxHashMap::default(),
            spilled: false,
        }
    }

    /// Number of recorded entries.
    #[allow(dead_code)] // exercised by unit tests; kept for API symmetry
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `addr`, returning its payload by value.
    #[inline]
    pub(crate) fn get(&self, addr: usize) -> Option<V> {
        if self.spilled {
            self.map.get(&addr).map(|&pos| self.entries[pos].1)
        } else {
            self.entries
                .iter()
                .find(|&&(a, _)| a == addr)
                .map(|&(_, v)| v)
        }
    }

    /// True if `addr` is present.
    #[inline]
    pub(crate) fn contains(&self, addr: usize) -> bool {
        if self.spilled {
            self.map.contains_key(&addr)
        } else {
            self.entries.iter().any(|&(a, _)| a == addr)
        }
    }

    /// Records `addr -> value`.
    ///
    /// The caller must have established absence (via [`get`](Self::get)
    /// or [`contains`](Self::contains)) first — the transaction engine
    /// always probes before recording, so `insert` never needs to.
    #[inline]
    pub(crate) fn insert(&mut self, addr: usize, value: V) {
        debug_assert!(!self.contains(addr), "duplicate access-set entry");
        let pos = self.entries.len();
        self.entries.push((addr, value));
        if self.spilled {
            self.map.insert(addr, pos);
        } else if self.entries.len() > SPILL_THRESHOLD {
            self.map.clear();
            self.map.reserve(self.entries.len() * 2);
            self.map
                .extend(self.entries.iter().enumerate().map(|(i, &(a, _))| (a, i)));
            self.spilled = true;
        }
    }

    /// Empties the index, returning to the linear-scan representation
    /// while keeping both the dense vector's and the hashed view's
    /// allocations for the next attempt.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        if self.spilled {
            self.map.clear();
            self.spilled = false;
        }
    }

    /// True while the hashed view is active (diagnostics/tests).
    pub(crate) fn spilled(&self) -> bool {
        self.spilled
    }

    /// Capacity of the dense entry vector (diagnostics/tests).
    pub(crate) fn capacity(&self) -> usize {
        self.entries.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip_small() {
        let mut idx: VarIndex<u64> = VarIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.get(0x40), None);
        idx.insert(0x40, 7);
        idx.insert(0x80, 9);
        assert_eq!(idx.get(0x40), Some(7));
        assert_eq!(idx.get(0x80), Some(9));
        assert!(idx.contains(0x80));
        assert!(!idx.contains(0xC0));
        assert_eq!(idx.len(), 2);
        assert!(!idx.spilled());
    }

    #[test]
    fn spills_past_threshold_and_stays_consistent() {
        let mut idx: VarIndex<usize> = VarIndex::new();
        let n = SPILL_THRESHOLD * 4;
        for i in 0..n {
            idx.insert(i * 64, i);
            // Every entry stays reachable through every representation
            // switch.
            for j in 0..=i {
                assert_eq!(idx.get(j * 64), Some(j), "lost key after {i} inserts");
            }
        }
        assert!(idx.spilled());
        assert_eq!(idx.len(), n);
        assert!(!idx.contains(n * 64));
    }

    #[test]
    fn clear_returns_to_small_mode_and_keeps_capacity() {
        let mut idx: VarIndex<u64> = VarIndex::new();
        for i in 0..SPILL_THRESHOLD * 2 {
            idx.insert(i * 8, i as u64);
        }
        assert!(idx.spilled());
        let cap = idx.capacity();
        assert!(cap >= SPILL_THRESHOLD * 2);
        idx.clear();
        assert!(idx.is_empty());
        assert!(!idx.spilled());
        assert_eq!(idx.capacity(), cap, "clear must not release the entries");
        // Stale keys from before the clear are gone in both modes.
        assert_eq!(idx.get(0), None);
        idx.insert(0xAA, 1);
        assert_eq!(idx.get(0xAA), Some(1));
        assert_eq!(idx.capacity(), cap);
    }
}
