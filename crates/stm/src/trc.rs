//! Feature-gated bridge to `rubic-trace`.
//!
//! With the **`trace`** feature on, the engine emits structured events
//! (transaction lifecycle, lock hold times, clock extensions) through
//! [`rubic_trace::emit`]; each emit is still gated at runtime on an
//! active trace session, so even a `trace` build pays only a relaxed
//! atomic load per site while no session records.
//!
//! With the feature off, everything here is a zero-sized no-op and the
//! call sites compile away entirely — [`crate::trace_footprint`] lets
//! tests assert the per-transaction state really is 0 bytes.

use crate::abort::AbortReason;

#[cfg(feature = "trace")]
pub(crate) use enabled::*;

#[cfg(not(feature = "trace"))]
pub(crate) use disabled::*;

/// Per-transaction trace state carried by the retry loop: timestamps of
/// the transaction's first attempt and of the current attempt, so commit
/// latency (begin→commit) and per-attempt abort latency can be derived
/// without touching the clock when tracing is inactive.
#[cfg(feature = "trace")]
mod enabled {
    use super::AbortReason;
    use rubic_trace::{emit, is_enabled, now_ns, EventKind};

    /// Timestamp bundle for one `atomically` call.
    pub(crate) struct TxTrace {
        /// When the first attempt started (0 when no session was active
        /// at begin — such transactions stay invisible to the trace).
        begin_ns: u64,
        /// When the current attempt started.
        attempt_ns: u64,
        /// When the current attempt aborted (feeds restart latency).
        abort_ns: u64,
    }

    impl TxTrace {
        #[inline]
        pub(crate) fn begin() -> TxTrace {
            if !is_enabled() {
                return TxTrace {
                    begin_ns: 0,
                    attempt_ns: 0,
                    abort_ns: 0,
                };
            }
            let now = now_ns();
            emit(EventKind::TxnBegin, 0, 0, 0, 0);
            TxTrace {
                begin_ns: now,
                attempt_ns: now,
                abort_ns: 0,
            }
        }

        #[inline]
        pub(crate) fn on_commit(&self, reads: u64, writes: u64, attempts: u32) {
            if self.begin_ns == 0 || !is_enabled() {
                return;
            }
            emit(
                EventKind::TxnCommit,
                0,
                now_ns().saturating_sub(self.begin_ns),
                (reads << 32) | (writes & 0xFFFF_FFFF),
                u64::from(attempts),
            );
        }

        #[inline]
        pub(crate) fn on_abort(&mut self, reason: AbortReason, attempt: u32, addr: usize) {
            if self.begin_ns == 0 || !is_enabled() {
                return;
            }
            let now = now_ns();
            emit(
                EventKind::TxnAbort,
                reason.code(),
                now.saturating_sub(self.attempt_ns),
                u64::from(attempt),
                addr as u64,
            );
            if addr != 0 {
                // Conflict attribution: feed the per-thread space-saving
                // sketch with the culprit TVar's lock identity.
                rubic_trace::note_conflict(addr as u64, reason.code());
            }
            self.abort_ns = now;
        }

        #[inline]
        pub(crate) fn on_restart(&mut self, attempt: u32) {
            if self.begin_ns == 0 || !is_enabled() {
                return;
            }
            let now = now_ns();
            emit(
                EventKind::TxnRestart,
                0,
                now.saturating_sub(self.abort_ns),
                u64::from(attempt),
                0,
            );
            self.attempt_ns = now;
        }
    }

    /// Current trace timestamp, or 0 when no session records (callers
    /// use 0 as "don't measure").
    #[inline]
    pub(crate) fn stamp() -> u64 {
        if is_enabled() {
            now_ns()
        } else {
            0
        }
    }

    /// Emits a `LockHold` event for a lock held since `locked_at`
    /// (skipped when the lock was taken outside a session).
    #[inline]
    pub(crate) fn lock_hold(locked_at: u64, addr: usize, on_abort: bool) {
        if locked_at == 0 || !is_enabled() {
            return;
        }
        emit(
            EventKind::LockHold,
            u8::from(on_abort),
            now_ns().saturating_sub(locked_at),
            addr as u64,
            0,
        );
    }

    /// Emits a `ClockExtend` event after a successful extension.
    #[inline]
    pub(crate) fn clock_extend(old_rv: u64, new_rv: u64) {
        if is_enabled() {
            emit(EventKind::ClockExtend, 0, old_rv, new_rv, 0);
        }
    }

    /// Emits a `SnapshotRead` event: an mvcc snapshot read resolved
    /// through the version chain (no caller in non-mvcc builds).
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn snapshot_read(rv: u64, stamp: u64) {
        if is_enabled() {
            emit(EventKind::SnapshotRead, 0, rv, stamp, 0);
        }
    }

    /// Emits a `VersionPrune` event: a writing commit drained
    /// reclaimable entries from a version chain (no caller in non-mvcc
    /// builds).
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn version_prune(addr: usize, dropped: u64, min_active: u64) {
        if is_enabled() {
            emit(EventKind::VersionPrune, 0, addr as u64, dropped, min_active);
        }
    }

    /// Emits a `SnapPin` event: a snapshot transaction pinned `rv` in
    /// registry slot `slot` (no caller in non-mvcc builds).
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn snap_pin(rv: u64, slot: usize) {
        if is_enabled() {
            emit(EventKind::SnapPin, 0, rv, slot as u64, 0);
        }
    }

    /// Emits a `SnapExtend` event: a chain overflow forced a snapshot
    /// to re-pin from `old_rv` to `new_rv`; `addr` identifies the
    /// variable whose bounded chain dropped the needed version (no
    /// caller in non-mvcc builds).
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn snap_extend(old_rv: u64, new_rv: u64, addr: usize) {
        if is_enabled() {
            emit(EventKind::SnapExtend, 0, old_rv, new_rv, addr as u64);
        }
    }

    /// Emits a `SnapDemote` event: a snapshot transaction fell back to
    /// the classic validated protocol. `code` 0 = read-only fallback
    /// (registry exhaustion or repeated staleness), 1 = the body wrote;
    /// `addr` names the written variable in the write case (no caller
    /// in non-mvcc builds).
    #[inline]
    #[allow(dead_code)]
    pub(crate) fn snap_demote(code: u8, rv: u64, addr: usize) {
        if is_enabled() {
            emit(EventKind::SnapDemote, code, rv, 0, addr as u64);
        }
    }
}

#[cfg(not(feature = "trace"))]
mod disabled {
    use super::AbortReason;

    /// Zero-sized stand-in: every method compiles to nothing.
    pub(crate) struct TxTrace;

    impl TxTrace {
        #[inline(always)]
        pub(crate) fn begin() -> TxTrace {
            TxTrace
        }

        #[inline(always)]
        pub(crate) fn on_commit(&self, _reads: u64, _writes: u64, _attempts: u32) {}

        #[inline(always)]
        pub(crate) fn on_abort(&mut self, _reason: AbortReason, _attempt: u32, _addr: usize) {}

        #[inline(always)]
        pub(crate) fn on_restart(&mut self, _attempt: u32) {}
    }

    // `stamp`/`lock_hold` have no callers in a no-trace build (their
    // call sites are cfg-gated out alongside the `locked_at` field they
    // read); kept so the shim's surface matches the enabled module.
    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn stamp() -> u64 {
        0
    }

    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn lock_hold(_locked_at: u64, _addr: usize, _on_abort: bool) {}

    #[inline(always)]
    pub(crate) fn clock_extend(_old_rv: u64, _new_rv: u64) {}

    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn snapshot_read(_rv: u64, _stamp: u64) {}

    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn version_prune(_addr: usize, _dropped: u64, _min_active: u64) {}

    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn snap_pin(_rv: u64, _slot: usize) {}

    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn snap_extend(_old_rv: u64, _new_rv: u64, _addr: usize) {}

    #[inline(always)]
    #[allow(dead_code)]
    pub(crate) fn snap_demote(_code: u8, _rv: u64, _addr: usize) {}
}

/// Size in bytes of the per-transaction trace state. **0 when the
/// `trace` feature is off** — the no-op recorder is a ZST and the
/// instrumentation carries no data; a feature-gated test in the
/// workspace root pins this guarantee.
#[must_use]
pub fn trace_footprint() -> usize {
    std::mem::size_of::<TxTrace>()
}
