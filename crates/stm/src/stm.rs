//! The `Stm` handle: retry loop, contention management, statistics.

use std::sync::Arc;

use crate::cm::{Backoff, ContentionManager};
use crate::stats::StmStats;
use crate::txn::{Transaction, TxResult};

/// An STM runtime handle: owns the contention manager and statistics and
/// drives the transaction retry loop.
///
/// `Stm` is `Send + Sync` and cheap to share (`Arc` fields); worker
/// threads typically share one instance per logical process/tenant so
/// commit-rates are accounted per tenant.
///
/// ```
/// use rubic_stm::{Stm, TVar};
/// let stm = Stm::default();
/// let v = TVar::new(0u64);
/// for _ in 0..10 {
///     stm.atomically(|tx| tx.modify(&v, |x| x + 1));
/// }
/// assert_eq!(v.snapshot(), 10);
/// assert_eq!(stm.stats().commits(), 10);
/// ```
pub struct Stm {
    cm: Arc<dyn ContentionManager>,
    stats: Arc<StmStats>,
    /// Multi-version mode: writing commits append the displaced value to
    /// the variable's version chain and [`Stm::read_only`] pins a
    /// snapshot timestamp instead of validating. Off by default — the
    /// single-version protocol is untouched unless a builder opts in.
    #[cfg(feature = "mvcc")]
    mvcc: bool,
}

impl Stm {
    /// Creates an `Stm` with the default (exponential-backoff)
    /// contention manager.
    #[must_use]
    pub fn new() -> Self {
        StmBuilder::new().build()
    }

    /// Starts building a customised `Stm`.
    #[must_use]
    pub fn builder() -> StmBuilder {
        StmBuilder::new()
    }

    /// Runs `f` transactionally until it commits, returning its result.
    ///
    /// `f` may run multiple times (once per attempt); it must be free of
    /// non-transactional side effects. Conflicts inside `f` should be
    /// propagated with `?` — returning `Err` aborts the attempt,
    /// backs off per the contention manager, and retries.
    ///
    /// # Panics
    /// Propagates panics from `f` after releasing all locks, so a
    /// panicking transaction never wedges other threads.
    pub fn atomically<R>(&self, mut f: impl FnMut(&mut Transaction) -> TxResult<R>) -> R {
        self.run(false, &mut f)
    }

    /// The classic validated retry loop shared by [`atomically`]
    /// (`Self::atomically`) and the non-snapshot paths of
    /// [`read_only`](Self::read_only); `read_only` only adds the
    /// ro-commit/abort accounting.
    fn run<R>(&self, read_only: bool, f: &mut impl FnMut(&mut Transaction) -> TxResult<R>) -> R {
        let mut tx = Transaction::begin();
        #[cfg(feature = "mvcc")]
        tx.set_mvcc(self.mvcc);
        let mut trace = crate::trc::TxTrace::begin();
        let mut attempt: u32 = 0;
        loop {
            let outcome = {
                // Run the body, guarding against panics so held write
                // locks are always released.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut tx)));
                match result {
                    Ok(body) => body,
                    Err(payload) => {
                        tx.abort();
                        std::panic::resume_unwind(payload);
                    }
                }
            };
            match outcome.and_then(|r| tx.commit().map(|()| r)) {
                Ok(r) => {
                    let (reads, writes) = tx.op_counts();
                    self.stats.record_commit(reads, writes);
                    if read_only {
                        self.stats.record_ro_commit();
                    }
                    trace.on_commit(reads, writes, attempt + 1);
                    return r;
                }
                Err(_) => {
                    let reason = tx.conflict_reason();
                    tx.abort();
                    self.stats.record_abort(reason);
                    if read_only {
                        self.stats.record_ro_abort();
                    }
                    crate::stats::note_thread_abort();
                    attempt += 1;
                    trace.on_abort(reason, attempt, tx.conflict_addr());
                    // Unpinned while backing off: a sleeping loser must
                    // not hold the epoch (and hence reclamation) back.
                    tx.unpinned(|| self.cm.backoff(attempt));
                    tx.restart();
                    trace.on_restart(attempt);
                }
            }
        }
    }

    /// Runs a read-only transaction.
    ///
    /// Without mvcc mode this is [`atomically`](Self::atomically) plus
    /// read-only commit/abort accounting (writes are not prevented by
    /// the type system). With [`StmBuilder::mvcc`] enabled, the
    /// transaction pins a snapshot timestamp and reads the version
    /// visible at it: no read-set, no validation, and — outside the
    /// transient bounded-chain fallback — no aborts. A body that does
    /// write demotes itself and reruns under the classic protocol.
    pub fn read_only<R>(&self, mut f: impl FnMut(&mut Transaction) -> TxResult<R>) -> R {
        #[cfg(feature = "mvcc")]
        if self.mvcc {
            return self.read_only_snapshot(&mut f);
        }
        self.run(true, &mut f)
    }

    /// The mvcc snapshot path of [`read_only`](Self::read_only): pin,
    /// read at the pinned timestamp, commit abort-free. Falls back to
    /// the always-correct classic loop on registry exhaustion, repeated
    /// chain-overflow staleness, or demotion (the body wrote).
    #[cfg(feature = "mvcc")]
    fn read_only_snapshot<R>(&self, f: &mut impl FnMut(&mut Transaction) -> TxResult<R>) -> R {
        /// Consecutive `SnapshotStale` re-pins tolerated before giving
        /// the classic protocol the job: staleness needs a variable to
        /// outrun its bounded version chain mid-snapshot, so one retry
        /// almost always suffices and eight means pathological churn.
        const STALE_LIMIT: u32 = 8;
        let mut trace = crate::trc::TxTrace::begin();
        let mut attempt: u32 = 0;
        let mut demoted_write = false;
        for _ in 0..STALE_LIMIT {
            let Some(mut tx) = Transaction::begin_snapshot() else {
                // Registry full (or writers outran pinning): classic
                // mode is a correctness-neutral fallback.
                break;
            };
            let outcome = {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut tx)));
                match result {
                    Ok(body) => body,
                    Err(payload) => {
                        tx.abort();
                        std::panic::resume_unwind(payload);
                    }
                }
            };
            match outcome.and_then(|r| tx.commit().map(|()| r)) {
                Ok(r) => {
                    let (reads, writes) = tx.op_counts();
                    self.stats.record_commit(reads, writes);
                    self.stats.record_ro_commit();
                    trace.on_commit(reads, writes, attempt + 1);
                    return r;
                }
                Err(_) => {
                    let reason = tx.conflict_reason();
                    let demoted = tx.snapshot_demoted();
                    tx.abort();
                    self.stats.record_abort(reason);
                    crate::stats::note_thread_abort();
                    attempt += 1;
                    trace.on_abort(reason, attempt, tx.conflict_addr());
                    if demoted {
                        // The body wrote — not read-only after all. Not
                        // charged as a read-only abort: demotion is a
                        // mode switch, not a data conflict.
                        demoted_write = true;
                        break;
                    }
                    // Transient `SnapshotStale` (a chain hit its hard
                    // cap and dropped the version this snapshot
                    // needed): re-pin at a fresh timestamp and retry.
                    self.stats.record_ro_abort();
                }
            }
        }
        // Every path out of the loop is a demotion to the classic
        // protocol; count it. The write case already emitted its
        // `SnapDemote` (code 1, with the written variable's address) at
        // the write site, so only the read-only fallbacks emit here.
        self.stats.record_snap_demotion();
        if !demoted_write {
            crate::trc::snap_demote(0, 0, 0);
        }
        self.run(true, f)
    }

    /// This runtime's statistics.
    #[must_use]
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// The active contention manager's name.
    #[must_use]
    pub fn contention_manager(&self) -> &'static str {
        self.cm.name()
    }

    /// Whether this runtime runs in multi-version (snapshot) mode.
    #[cfg(feature = "mvcc")]
    #[must_use]
    pub fn is_mvcc(&self) -> bool {
        self.mvcc
    }
}

impl Default for Stm {
    fn default() -> Self {
        Stm::new()
    }
}

impl Clone for Stm {
    /// Clones share the contention manager *and* the statistics — a
    /// clone is another handle to the same logical runtime.
    fn clone(&self) -> Self {
        Stm {
            cm: Arc::clone(&self.cm),
            stats: Arc::clone(&self.stats),
            #[cfg(feature = "mvcc")]
            mvcc: self.mvcc,
        }
    }
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("cm", &self.cm.name())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

/// Builder for [`Stm`].
pub struct StmBuilder {
    cm: Arc<dyn ContentionManager>,
    #[cfg(feature = "mvcc")]
    mvcc: bool,
}

impl StmBuilder {
    /// Starts with the default exponential-backoff contention manager.
    #[must_use]
    pub fn new() -> Self {
        StmBuilder {
            cm: Arc::new(Backoff::default()),
            #[cfg(feature = "mvcc")]
            mvcc: false,
        }
    }

    /// Selects a contention manager.
    #[must_use]
    pub fn contention_manager(mut self, cm: impl ContentionManager + 'static) -> Self {
        self.cm = Arc::new(cm);
        self
    }

    /// Enables multi-version mode: writing commits keep a bounded chain
    /// of displaced versions per variable and [`Stm::read_only`] runs as
    /// an abort-free snapshot transaction. Off by default.
    #[cfg(feature = "mvcc")]
    #[must_use]
    pub fn mvcc(mut self, on: bool) -> Self {
        self.mvcc = on;
        self
    }

    /// Finalises the runtime.
    #[must_use]
    pub fn build(self) -> Stm {
        Stm {
            cm: self.cm,
            stats: Arc::new(StmStats::new()),
            #[cfg(feature = "mvcc")]
            mvcc: self.mvcc,
        }
    }
}

impl Default for StmBuilder {
    fn default() -> Self {
        StmBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::{Aggressive, Polite};
    use crate::TVar;

    #[test]
    fn atomically_commits() {
        let stm = Stm::default();
        let v = TVar::new(5);
        let doubled = stm.atomically(|tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x * 2)?;
            Ok(x * 2)
        });
        assert_eq!(doubled, 10);
        assert_eq!(v.snapshot(), 10);
    }

    #[test]
    fn stats_count_commits_and_results() {
        let stm = Stm::default();
        let v = TVar::new(0);
        for _ in 0..7 {
            stm.atomically(|tx| tx.modify(&v, |x| x + 1));
        }
        assert_eq!(stm.stats().commits(), 7);
        assert_eq!(stm.stats().aborts(), 0);
        assert_eq!(v.snapshot(), 7);
    }

    #[test]
    fn clone_shares_stats() {
        let stm = Stm::default();
        let stm2 = stm.clone();
        let v = TVar::new(0);
        stm2.atomically(|tx| tx.write(&v, 1));
        assert_eq!(stm.stats().commits(), 1);
    }

    #[test]
    fn builder_selects_cm() {
        let stm = Stm::builder().contention_manager(Polite).build();
        assert_eq!(stm.contention_manager(), "polite");
        let stm = Stm::builder().contention_manager(Aggressive).build();
        assert_eq!(stm.contention_manager(), "aggressive");
    }

    #[test]
    fn panicking_transaction_releases_locks() {
        let stm = Stm::default();
        let v = TVar::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stm.atomically(|tx| {
                tx.write(&v, 1)?;
                panic!("boom");
                #[allow(unreachable_code)]
                Ok(())
            })
        }));
        assert!(result.is_err());
        // The lock must be free: another transaction can write.
        stm.atomically(|tx| tx.write(&v, 2));
        assert_eq!(v.snapshot(), 2);
    }

    #[test]
    fn aborted_attempts_do_not_inflate_op_stats() {
        // Regression: `Transaction::restart` used to carry `n_reads` /
        // `n_writes` across attempts, so a transaction that conflicted
        // once reported its operations twice to `StmStats`.
        use crate::txn::StmError;
        let stm = Stm::default();
        let v = TVar::new(7u32);
        let mut first = true;
        let got = stm.atomically(|tx| {
            let x = tx.read(&v)?;
            if first {
                // Simulate a conflict after the read: the attempt
                // aborts, restarts, and succeeds on the second pass.
                first = false;
                return Err(StmError::Conflict);
            }
            Ok(x)
        });
        assert_eq!(got, 7);
        assert_eq!(stm.stats().commits(), 1);
        assert_eq!(stm.stats().aborts(), 1);
        assert_eq!(
            stm.stats().reads(),
            1,
            "the aborted attempt's read leaked into the committed stats"
        );
        assert_eq!(stm.stats().writes(), 0);
    }

    #[test]
    fn concurrent_counter_no_lost_updates() {
        use std::sync::Arc;
        let stm = Stm::default();
        let v = Arc::new(TVar::new(0u64));
        let threads = 4;
        let per_thread = 500;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let stm = stm.clone();
                let v = Arc::clone(&v);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        stm.atomically(|tx| tx.modify(&v, |x| x + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(v.snapshot(), threads * per_thread);
        assert_eq!(stm.stats().commits(), threads * per_thread);
    }

    #[cfg(feature = "mvcc")]
    #[test]
    fn mvcc_read_only_commits_abort_free() {
        let stm = Stm::builder().mvcc(true).build();
        assert!(stm.is_mvcc());
        let v = TVar::new(0u64);
        for i in 0..16 {
            stm.atomically(|tx| tx.write(&v, i));
            let got = stm.read_only(|tx| tx.read(&v));
            assert_eq!(got, i);
        }
        assert_eq!(stm.stats().ro_commits(), 16);
        assert_eq!(stm.stats().ro_aborts(), 0);
        assert_eq!(stm.stats().aborts(), 0);
    }

    #[cfg(feature = "mvcc")]
    #[test]
    fn mvcc_read_only_that_writes_demotes_to_classic() {
        let stm = Stm::builder().mvcc(true).build();
        let v = TVar::new(1u64);
        // A "read-only" body that writes anyway: the snapshot attempt
        // demotes itself and the classic rerun commits the write.
        let got = stm.read_only(|tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)?;
            Ok(x + 1)
        });
        assert_eq!(got, 2);
        assert_eq!(v.snapshot(), 2);
        // Demotion is not charged as a read-only abort.
        assert_eq!(stm.stats().ro_aborts(), 0);
        assert_eq!(stm.stats().ro_commits(), 1);
    }

    #[cfg(feature = "mvcc")]
    #[test]
    fn mvcc_snapshots_observe_invariants_under_writers() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let stm = Stm::builder().mvcc(true).build();
        let a = Arc::new(TVar::new(500i64));
        let b = Arc::new(TVar::new(500i64));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stm = stm.clone();
            let (a, b, stop) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut k = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let amount = k % 9 - 4;
                    stm.atomically(|tx| {
                        let x = tx.read(&a)?;
                        let y = tx.read(&b)?;
                        tx.write(&a, x - amount)?;
                        tx.write(&b, y + amount)?;
                        Ok(())
                    });
                    k += 1;
                }
            })
        };
        for _ in 0..2000 {
            let sum = stm.read_only(|tx| {
                let x = tx.read(&a)?;
                let y = tx.read(&b)?;
                Ok(x + y)
            });
            assert_eq!(sum, 1000, "snapshot saw a torn transfer");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert_eq!(stm.stats().ro_commits(), 2000);
    }

    #[test]
    fn concurrent_invariant_preservation() {
        // Transfer between two cells: the sum must be invariant in every
        // committed state and at the end.
        use std::sync::Arc;
        let stm = Stm::default();
        let a = Arc::new(TVar::new(1000i64));
        let b = Arc::new(TVar::new(1000i64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let stm = stm.clone();
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for k in 0..300 {
                        let amount = ((i * 7 + k) % 13) as i64 - 6;
                        stm.atomically(|tx| {
                            let x = tx.read(&a)?;
                            let y = tx.read(&b)?;
                            tx.write(&a, x - amount)?;
                            tx.write(&b, y + amount)?;
                            Ok(())
                        });
                        // Concurrent consistent snapshot: the sum seen by
                        // a read-only transaction is always the invariant.
                        let sum = stm.atomically(|tx| {
                            let x = tx.read(&a)?;
                            let y = tx.read(&b)?;
                            Ok(x + y)
                        });
                        assert_eq!(sum, 2000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.snapshot() + b.snapshot(), 2000);
    }
}
