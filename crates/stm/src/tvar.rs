//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared, transactionally updated cell. Internally it
//! pairs a [`crate::vlock::VLock`] with an epoch-managed pointer
//! to an **immutable** heap value:
//!
//! * Committing writers allocate a fresh `T`, swap the pointer, and
//!   retire the old allocation through `crossbeam-epoch`.
//! * Readers pin the epoch, dereference, and clone. Because a published
//!   value is never mutated in place, the dereference is data-race-free —
//!   the versioned lock protocol only has to establish *which* snapshot
//!   was read, not protect its bytes.
//!
//! This module is the only home of `unsafe` in the crate; each use is a
//! guard-protected epoch dereference or the uniquely-owned drop.

use std::sync::Arc;

// crossbeam-epoch's pointer API takes `std` orderings directly; the
// reclamation protocol itself is modeled by `rubic-check`'s epoch model
// rather than swapped at compile time, so the raw import stays.
use std::sync::atomic::Ordering as EpochOrdering; // lint: allow-std-sync — epoch API

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};

use crate::vlock::VLock;
use crate::TxValue;

/// Internal state shared by all handles to one transactional variable.
pub(crate) struct TVarCore<T> {
    vlock: VLock,
    data: Atomic<T>,
}

impl<T: TxValue> TVarCore<T> {
    fn new(value: T) -> Self {
        TVarCore {
            // Version 0: the initial value is the only snapshot ever
            // published for this variable, so it validates against any
            // read version.
            vlock: VLock::new(0),
            data: Atomic::new(value),
        }
    }

    #[inline]
    pub(crate) fn vlock(&self) -> &VLock {
        &self.vlock
    }

    /// Clones the currently published value.
    ///
    /// The caller is responsible for the versioned-lock consistency
    /// protocol (sample → load → re-sample); this method only guarantees
    /// the clone itself is safe.
    #[inline]
    pub(crate) fn load_clone(&self, guard: &Guard) -> T {
        let shared = self.data.load(EpochOrdering::Acquire, guard);
        // SAFETY: `shared` was published by `TVarCore::new` or `publish`,
        // both of which store a valid, initialized `T`. The pointer is
        // retired only through `guard`-deferred destruction, and we hold
        // a pinned guard, so it cannot be freed during this call.
        // Published values are never mutated in place, so the shared
        // borrow cannot race with a write.
        unsafe { shared.deref() }.clone()
    }

    /// Applies `f` to the currently published value without cloning it.
    ///
    /// Same caller contract as [`load_clone`](Self::load_clone): the
    /// versioned-lock protocol around this call decides whether the
    /// observation was consistent.
    #[inline]
    pub(crate) fn with_value<R>(&self, guard: &Guard, f: impl FnOnce(&T) -> R) -> R {
        let shared = self.data.load(EpochOrdering::Acquire, guard);
        // SAFETY: identical argument to `load_clone` — valid initialized
        // pointer, pinned guard prevents reclamation, published values
        // are immutable.
        f(unsafe { shared.deref() })
    }

    /// Publishes `value` as the new current snapshot and retires the old
    /// one.
    ///
    /// # Contract
    /// The caller must hold this variable's write lock (so no concurrent
    /// `publish` runs) and must release it with the new version
    /// afterwards.
    pub(crate) fn publish(&self, value: T, guard: &Guard) {
        let old: Shared<'_, T> = self
            .data
            .swap(Owned::new(value), EpochOrdering::Release, guard);
        debug_assert!(!old.is_null());
        // SAFETY: `old` was the uniquely published snapshot; after the
        // swap no new reader can acquire it, and existing readers hold
        // epoch guards. Deferring destruction until all current guards
        // are dropped is exactly the epoch-reclamation contract.
        unsafe { guard.defer_destroy(old) };
    }
}

impl<T> Drop for TVarCore<T> {
    fn drop(&mut self) {
        // SAFETY: having `&mut self` proves no other handle or reader
        // exists (the last `Arc` is being dropped), so the current
        // pointer is uniquely owned and can be reclaimed immediately.
        let ptr = std::mem::replace(&mut self.data, Atomic::null());
        unsafe {
            let owned = ptr.try_into_owned();
            drop(owned);
        }
    }
}

/// A shared transactional variable holding a `T`.
///
/// `TVar` is a cheap clonable handle (an `Arc` internally); clones refer
/// to the same underlying cell. Values must implement [`TxValue`]
/// (`Clone + Send + Sync + 'static`).
///
/// ```
/// use rubic_stm::{Stm, TVar};
/// let stm = Stm::default();
/// let v = TVar::new(vec![1, 2, 3]);
/// stm.atomically(|tx| {
///     let mut cur = tx.read(&v)?;
///     cur.push(4);
///     tx.write(&v, cur)
/// });
/// assert_eq!(v.snapshot(), vec![1, 2, 3, 4]);
/// ```
pub struct TVar<T: TxValue> {
    core: Arc<TVarCore<T>>,
}

impl<T: TxValue> TVar<T> {
    /// Creates a new transactional variable holding `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        TVar {
            core: Arc::new(TVarCore::new(value)),
        }
    }

    #[inline]
    pub(crate) fn core(&self) -> &Arc<TVarCore<T>> {
        &self.core
    }

    /// Returns a consistent copy of the current committed value without
    /// running a transaction.
    ///
    /// Spins while a committer holds the write lock (commit windows are
    /// a few instructions long). Intended for post-run inspection and
    /// monitoring, not for composing with transactional logic — a
    /// snapshot taken outside a transaction has no atomicity relative to
    /// anything else.
    #[must_use]
    pub fn snapshot(&self) -> T {
        let guard = epoch::pin();
        loop {
            let w1 = self.core.vlock.sample();
            if w1.is_locked() {
                std::hint::spin_loop();
                continue;
            }
            let value = self.core.load_clone(&guard);
            if self.core.vlock.sample() == w1 {
                return value;
            }
        }
    }

    /// The commit timestamp of the currently published value (0 for a
    /// never-written variable). Diagnostic.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.core.vlock.sample().version()
    }

    /// True while a transaction holds this variable's write lock.
    ///
    /// Diagnostic only — the answer can be stale by the time the caller
    /// acts on it. Its intended use is *quiescence* checks: once every
    /// transaction has finished (threads joined), any variable still
    /// reporting `true` has leaked its lock, which the harness's
    /// lock-leak oracle turns into a test failure.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.core.vlock.sample().is_locked()
    }

    /// Stable address of this variable's versioned lock — the same
    /// identity `LockHold` trace events carry in their address word, so
    /// a leaked lock found at quiescence can be cross-referenced with
    /// the hold-time events of the transactions that touched it.
    #[must_use]
    pub fn lock_addr(&self) -> usize {
        self.core.vlock.addr()
    }

    /// True if `self` and `other` are handles to the same variable.
    #[must_use]
    pub fn ptr_eq(&self, other: &TVar<T>) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }
}

impl<T: TxValue> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: TxValue + std::fmt::Debug> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TVar")
            .field("value", &self.snapshot())
            .field("version", &self.version())
            .finish()
    }
}

impl<T: TxValue + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_snapshot_roundtrip() {
        let v = TVar::new(41);
        assert_eq!(v.snapshot(), 41);
        assert_eq!(v.version(), 0);
    }

    #[test]
    fn clone_shares_identity() {
        let a = TVar::new(String::from("x"));
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        let c = TVar::new(String::from("x"));
        assert!(!a.ptr_eq(&c));
    }

    #[test]
    fn publish_swaps_value() {
        let v = TVar::new(1);
        let guard = epoch::pin();
        let w = v.core.vlock().sample();
        assert!(v.core.vlock().try_lock(w));
        v.core.publish(2, &guard);
        v.core.vlock().release_commit(7);
        drop(guard);
        assert_eq!(v.snapshot(), 2);
        assert_eq!(v.version(), 7);
    }

    #[test]
    fn drop_reclaims_value() {
        // Drop a TVar holding an Arc and check the refcount falls — i.e.
        // the inner allocation was actually freed, not leaked.
        let tracker = Arc::new(());
        let v = TVar::new(Arc::clone(&tracker));
        assert_eq!(Arc::strong_count(&tracker), 2);
        drop(v);
        assert_eq!(Arc::strong_count(&tracker), 1);
    }

    #[test]
    fn snapshot_spins_past_held_lock() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let v = Arc::new(TVar::new(10));
        let locked = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let v2 = Arc::clone(&v);
        let locked2 = Arc::clone(&locked);
        let release2 = Arc::clone(&release);
        let h = std::thread::spawn(move || {
            let w = v2.core.vlock().sample();
            assert!(v2.core.vlock().try_lock(w));
            locked2.store(true, Ordering::Release);
            while !release2.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            let guard = epoch::pin();
            v2.core.publish(20, &guard);
            v2.core.vlock().release_commit(3);
        });
        while !locked.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // Snapshot must not observe a half-committed state; let the
        // writer finish while we spin.
        release.store(true, Ordering::Release);
        let got = v.snapshot();
        assert!(got == 10 || got == 20);
        h.join().unwrap();
        assert_eq!(v.snapshot(), 20);
    }

    #[test]
    fn debug_format_mentions_value() {
        let v = TVar::new(5);
        let s = format!("{v:?}");
        assert!(s.contains('5'), "{s}");
    }

    #[test]
    fn default_uses_value_default() {
        let v: TVar<u64> = TVar::default();
        assert_eq!(v.snapshot(), 0);
    }
}
