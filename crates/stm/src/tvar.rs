//! Transactional variables.
//!
//! A [`TVar<T>`] is a shared, transactionally updated cell. Internally it
//! pairs a [`crate::vlock::VLock`] with an epoch-managed pointer
//! to an **immutable** heap value:
//!
//! * Committing writers allocate a fresh `T`, swap the pointer, and
//!   retire the old allocation through `crossbeam-epoch`.
//! * Readers pin the epoch, dereference, and clone. Because a published
//!   value is never mutated in place, the dereference is data-race-free —
//!   the versioned lock protocol only has to establish *which* snapshot
//!   was read, not protect its bytes.
//!
//! This module is the only home of `unsafe` in the crate; each use is a
//! guard-protected epoch dereference or the uniquely-owned drop.

use std::sync::Arc;

// crossbeam-epoch's pointer API takes `std` orderings directly; the
// reclamation protocol itself is modeled by `rubic-check`'s epoch model
// rather than swapped at compile time, so the raw import stays.
use std::sync::atomic::Ordering as EpochOrdering; // lint: allow-std-sync — epoch API

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};

use crate::vlock::VLock;
use crate::TxValue;

/// Inline chain capacity: the `index::VarIndex` small-set trick applied
/// to version chains — counter-sized histories (a handful of retained
/// versions) live in a dense in-place array and never allocate; only
/// genuinely deep chains spill to the heap.
#[cfg(feature = "mvcc")]
const INLINE_VERSIONS: usize = 4;

/// Hard cap on retained old versions per variable. Pruning against the
/// snapshot registry's minimum keeps chains near-empty in steady state;
/// the cap bounds memory when a long-lived snapshot pins versions while
/// writers churn. Overflow drops the *oldest* entries, and a snapshot
/// that later needs one observes [`SnapshotMiss`] and re-pins — the
/// transient `AbortReason::SnapshotStale`.
#[cfg(feature = "mvcc")]
const MAX_CHAIN: usize = 16;

/// Returned by [`TVarCore::read_at_with`] when the version visible at
/// the pinned timestamp has been dropped from the bounded chain.
#[cfg(feature = "mvcc")]
pub(crate) struct SnapshotMiss;

/// One displaced version in a variable's chain: the boxed value that
/// was current for timestamps `stamp ..= succ - 1`.
#[cfg(feature = "mvcc")]
struct OldVersion<T> {
    /// Commit stamp of this version (the vlock version while current).
    stamp: u64,
    /// Stamp of the version that displaced it. Visibility rule: this
    /// entry is the snapshot at `rv` iff `stamp <= rv < succ`.
    succ: u64,
    /// The displaced box, owned by the chain until pruned. Pruned
    /// entries are retired through the epoch (never freed inline):
    /// concurrent classic readers may still hold guard-protected
    /// references from before the displacing swap.
    ptr: *const T,
}

// SAFETY: `ptr` is an ownership handle to a heap `T` that is never
// aliased mutably (published values are immutable); moving or sharing
// the handle across threads is as safe as moving/sharing `Box<T>`,
// which `T: Send + Sync` (from `TxValue`) provides.
#[cfg(feature = "mvcc")]
unsafe impl<T: Send + Sync> Send for OldVersion<T> {}
// SAFETY: same argument; `&OldVersion<T>` only exposes `&T`.
#[cfg(feature = "mvcc")]
unsafe impl<T: Send + Sync> Sync for OldVersion<T> {}

/// A variable's displaced-version chain, oldest first. Invariant: the
/// inline array is only populated while the spill vector is empty (once
/// spilled, entries stay spilled until the chain fully drains — the
/// same representation discipline as `index::VarIndex`).
#[cfg(feature = "mvcc")]
struct History<T> {
    inline: [Option<OldVersion<T>>; INLINE_VERSIONS],
    inline_len: usize,
    spill: Vec<OldVersion<T>>,
}

#[cfg(feature = "mvcc")]
impl<T> History<T> {
    const fn new() -> Self {
        History {
            inline: [None, None, None, None],
            inline_len: 0,
            spill: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    fn iter(&self) -> impl Iterator<Item = &OldVersion<T>> {
        self.inline[..self.inline_len]
            .iter()
            .map(|slot| slot.as_ref().expect("inline prefix is dense"))
            .chain(self.spill.iter())
    }

    /// Appends the newest displaced version (stamps are pushed in
    /// strictly increasing order — writers serialise on the vlock).
    fn push(&mut self, v: OldVersion<T>) {
        if !self.spill.is_empty() {
            self.spill.push(v);
        } else if self.inline_len < INLINE_VERSIONS {
            self.inline[self.inline_len] = Some(v);
            self.inline_len += 1;
        } else {
            // Spill: migrate the dense prefix, keeping order.
            self.spill.reserve(INLINE_VERSIONS + 1);
            for slot in &mut self.inline {
                self.spill
                    .push(slot.take().expect("inline prefix is dense"));
            }
            self.inline_len = 0;
            self.spill.push(v);
        }
    }

    /// The entry visible at snapshot timestamp `rv`, if still chained.
    fn find(&self, rv: u64) -> Option<&OldVersion<T>> {
        self.iter().find(|v| v.stamp <= rv && rv < v.succ)
    }

    /// The most recently pushed entry. Its `succ` is the stamp of the
    /// *current* value as of the last publish of this variable — the
    /// slow path uses it to recognise a swapped-but-unreleased commit.
    fn newest(&self) -> Option<&OldVersion<T>> {
        self.spill.last().or_else(|| {
            self.inline_len
                .checked_sub(1)
                .and_then(|i| self.inline[i].as_ref())
        })
    }

    /// Removes the single oldest entry, handing its box to `retire`.
    fn drop_front(&mut self, retire: &mut impl FnMut(*const T)) {
        if self.inline_len > 0 {
            let v = self.inline[0].take().expect("inline prefix is dense");
            retire(v.ptr);
            // Re-densify: [None, a, b, c] -> [a, b, c, None].
            self.inline.rotate_left(1);
            self.inline_len -= 1;
        } else {
            let v = self.spill.remove(0);
            retire(v.ptr);
        }
    }

    /// The prefix-drain reclamation path: drops every leading entry no
    /// registered snapshot can need (`succ <= min_active`), then
    /// enforces [`MAX_CHAIN`] by dropping further oldest entries.
    /// Chains are stamp-ordered, so the droppable set is a prefix.
    /// Returns the number of entries handed to `retire`.
    fn prune(&mut self, min_active: u64, mut retire: impl FnMut(*const T)) -> usize {
        let mut dropped = 0;
        loop {
            let droppable = match self.iter().next() {
                Some(front) => front.succ <= min_active || self.len() > MAX_CHAIN,
                None => false,
            };
            if !droppable {
                break;
            }
            self.drop_front(&mut retire);
            dropped += 1;
        }
        dropped
    }
}

#[cfg(feature = "mvcc")]
impl<T> Drop for History<T> {
    fn drop(&mut self) {
        let ptrs: Vec<*const T> = self.iter().map(|v| v.ptr).collect();
        for ptr in ptrs {
            // SAFETY: the chain owns its boxes, and `Drop` runs with
            // `&mut self` through `TVarCore`'s drop — the last handle is
            // going away, so no guard-holding reader can reference a
            // chained (never-current) version anymore.
            unsafe { drop(Box::from_raw(ptr.cast_mut())) };
        }
    }
}

/// Internal state shared by all handles to one transactional variable.
pub(crate) struct TVarCore<T> {
    vlock: VLock,
    data: Atomic<T>,
    /// Displaced-version chain (mvcc mode). The mutex excludes chain
    /// mutation against slow-path snapshot reads; writers already
    /// serialise on the vlock, and snapshot reads only take it when the
    /// current version is not the visible one, so it is uncontended in
    /// steady state. `rubic_sync::Mutex` so checker builds can model it.
    #[cfg(feature = "mvcc")]
    history: rubic_sync::Mutex<History<T>>,
}

impl<T: TxValue> TVarCore<T> {
    fn new(value: T) -> Self {
        TVarCore {
            // Version 0: the initial value is the only snapshot ever
            // published for this variable, so it validates against any
            // read version.
            vlock: VLock::new(0),
            data: Atomic::new(value),
            #[cfg(feature = "mvcc")]
            history: rubic_sync::Mutex::new(History::new()),
        }
    }

    #[inline]
    pub(crate) fn vlock(&self) -> &VLock {
        &self.vlock
    }

    /// Clones the currently published value.
    ///
    /// The caller is responsible for the versioned-lock consistency
    /// protocol (sample → load → re-sample); this method only guarantees
    /// the clone itself is safe.
    #[inline]
    pub(crate) fn load_clone(&self, guard: &Guard) -> T {
        let shared = self.data.load(EpochOrdering::Acquire, guard);
        // SAFETY: `shared` was published by `TVarCore::new` or `publish`,
        // both of which store a valid, initialized `T`. The pointer is
        // retired only through `guard`-deferred destruction, and we hold
        // a pinned guard, so it cannot be freed during this call.
        // Published values are never mutated in place, so the shared
        // borrow cannot race with a write.
        unsafe { shared.deref() }.clone()
    }

    /// Applies `f` to the currently published value without cloning it.
    ///
    /// Same caller contract as [`load_clone`](Self::load_clone): the
    /// versioned-lock protocol around this call decides whether the
    /// observation was consistent.
    #[inline]
    pub(crate) fn with_value<R>(&self, guard: &Guard, f: impl FnOnce(&T) -> R) -> R {
        let shared = self.data.load(EpochOrdering::Acquire, guard);
        // SAFETY: identical argument to `load_clone` — valid initialized
        // pointer, pinned guard prevents reclamation, published values
        // are immutable.
        f(unsafe { shared.deref() })
    }

    /// Publishes `value` as the new current snapshot and retires the old
    /// one.
    ///
    /// # Contract
    /// The caller must hold this variable's write lock (so no concurrent
    /// `publish` runs) and must release it with the new version
    /// afterwards.
    pub(crate) fn publish(&self, value: T, guard: &Guard) {
        let old: Shared<'_, T> = self
            .data
            .swap(Owned::new(value), EpochOrdering::Release, guard);
        debug_assert!(!old.is_null());
        // SAFETY: `old` was the uniquely published snapshot; after the
        // swap no new reader can acquire it, and existing readers hold
        // epoch guards. Deferring destruction until all current guards
        // are dropped is exactly the epoch-reclamation contract.
        unsafe { guard.defer_destroy(old) };
    }

    /// The mvcc sibling of [`publish`](Self::publish): publishes
    /// `value` stamped `wv` and chains the displaced version instead of
    /// retiring it, so snapshots pinned before `wv` can still read it.
    /// Then runs the prefix-drain reclamation: entries no registered
    /// snapshot can need (`succ <= min_active`, plus cap overflow) are
    /// retired through the epoch. Returns the number of pruned entries.
    ///
    /// # Contract
    /// Same as `publish` (write lock held, release with `wv` after),
    /// plus: `min_active` must come from `crate::snap::min_active`
    /// *after* the commit's clock tick — the registry's fence protocol
    /// is what makes dropping `succ <= min_active` entries safe.
    #[cfg(feature = "mvcc")]
    pub(crate) fn publish_versioned(
        &self,
        value: T,
        wv: u64,
        min_active: u64,
        guard: &Guard,
    ) -> usize {
        let mut history = self.history.lock();
        // Holding the write lock, the sampled word is ours and
        // `version()` is the displaced version's stamp.
        let stamp = self.vlock.sample().version();
        let old: Shared<'_, T> = self
            .data
            .swap(Owned::new(value), EpochOrdering::Release, guard);
        debug_assert!(!old.is_null());
        history.push(OldVersion {
            stamp,
            succ: wv,
            ptr: old.as_raw(),
        });
        history.prune(min_active, |ptr| {
            // SAFETY: the entry was just unchained under the history
            // mutex, so no snapshot read can hand out a reference to it
            // anymore; classic readers from before the displacing swap
            // may still hold guard-protected references, so the box is
            // retired through the epoch rather than freed inline.
            unsafe { guard.defer_destroy(Shared::from(ptr)) };
        })
    }

    /// Reads the version visible at snapshot timestamp `rv` (visibility
    /// rule: the newest version with `stamp <= rv`), applying `f`
    /// without cloning. Returns the projection plus the chain stamp when
    /// the read resolved through the chain (`None` = current value).
    ///
    /// No validation, no conflicts: writers are invisible to this path.
    ///
    /// # Errors
    /// [`SnapshotMiss`] when the needed version was dropped by a
    /// bounded chain (cap overflow) — the caller re-pins and retries.
    #[cfg(feature = "mvcc")]
    pub(crate) fn read_at_with<R>(
        &self,
        rv: u64,
        guard: &Guard,
        f: &mut impl FnMut(&T) -> R,
    ) -> Result<(R, Option<u64>), SnapshotMiss> {
        // Fast path: the current version is visible and stable. No
        // commit during this snapshot's lifetime can stamp `<= rv`
        // (write stamps are drawn from the clock after `rv` was
        // pinned), so a current version with `stamp <= rv` *is* the
        // newest one visible.
        loop {
            let w1 = self.vlock.sample();
            if w1.is_locked() || w1.version() > rv {
                break;
            }
            let result = self.with_value(guard, &mut *f);
            if self.vlock.sample() == w1 {
                return Ok((result, None));
            }
            // A commit raced between the two samples; resample.
        }
        // Slow path: locked or too new — resolve through the chain. The
        // history mutex excludes the publish critical section, so the
        // (current value, chain) pair is a consistent cut.
        //
        // The chain must be consulted *before* trusting the lock word: a
        // locked word carries the pre-lock version, so `version() <= rv`
        // alone cannot distinguish a writer that has not swapped yet
        // (current data is still the visible version) from one that
        // swapped and published but has not released the vlock (current
        // data is the too-new value).
        //
        // When the variable is locked and the chain does not cover `rv`,
        // there is one genuinely ambiguous state: the pre-lock version
        // is `<= rv`, the owner may either be encounter-locked inside
        // its body (its eventual write stamp will exceed every already
        // pinned `rv`, so the current value is the visible one) or
        // mid-publication of a commit stamped `<= rv` (the current value
        // is about to be displaced, and sibling variables of that commit
        // may already answer with their new values). Guessing either way
        // can tear the snapshot across one atomic commit, so the reader
        // *waits the lock out* — publication is bounded, lock-holders
        // never wait on snapshot readers, and the reader holds no lock
        // while spinning, so this cannot deadlock. Abort-freedom is
        // preserved: waiting is not an abort.
        loop {
            {
                let history = self.history.lock();
                if let Some(v) = history.find(rv) {
                    // SAFETY: the entry is still chained and
                    // removal/retire only happen under the history mutex
                    // we hold, so the box is live; chained values are
                    // immutable.
                    let result = f(unsafe { &*v.ptr });
                    return Ok((result, Some(v.stamp)));
                }
                let w = self.vlock.sample();
                if w.version() > rv {
                    // Neither the chain nor the current lineage has a
                    // version visible at `rv`: it was pruned (or never
                    // existed). The caller re-pins or aborts.
                    return Err(SnapshotMiss);
                }
                if !w.is_locked() {
                    // Unlocked with `stamp <= rv` under the mutex: the
                    // current value is the newest visible version.
                    let result = self.with_value(guard, &mut *f);
                    return Ok((result, None));
                }
                // Locked, pre-lock version <= rv. If the owner already
                // swapped this variable's new value in (`newest().succ`
                // moved past the pre-lock stamp) and that stamp is
                // visible, the current value is the right answer even
                // though the vlock is still held.
                if let Some(top) = history.newest() {
                    if top.succ > w.version() && top.succ <= rv {
                        let result = self.with_value(guard, &mut *f);
                        return Ok((result, None));
                    }
                }
                // Ambiguous body-vs-publication state: fall through to
                // wait (mutex dropped first so the owner can publish).
            }
            for _ in 0..32 {
                std::hint::spin_loop();
            }
            rubic_sync::thread::yield_now();
        }
    }
}

impl<T> Drop for TVarCore<T> {
    fn drop(&mut self) {
        // SAFETY: having `&mut self` proves no other handle or reader
        // exists (the last `Arc` is being dropped), so the current
        // pointer is uniquely owned and can be reclaimed immediately.
        let ptr = std::mem::replace(&mut self.data, Atomic::null());
        unsafe {
            let owned = ptr.try_into_owned();
            drop(owned);
        }
    }
}

/// A shared transactional variable holding a `T`.
///
/// `TVar` is a cheap clonable handle (an `Arc` internally); clones refer
/// to the same underlying cell. Values must implement [`TxValue`]
/// (`Clone + Send + Sync + 'static`).
///
/// ```
/// use rubic_stm::{Stm, TVar};
/// let stm = Stm::default();
/// let v = TVar::new(vec![1, 2, 3]);
/// stm.atomically(|tx| {
///     let mut cur = tx.read(&v)?;
///     cur.push(4);
///     tx.write(&v, cur)
/// });
/// assert_eq!(v.snapshot(), vec![1, 2, 3, 4]);
/// ```
pub struct TVar<T: TxValue> {
    core: Arc<TVarCore<T>>,
}

impl<T: TxValue> TVar<T> {
    /// Creates a new transactional variable holding `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        TVar {
            core: Arc::new(TVarCore::new(value)),
        }
    }

    /// Creates a new transactional variable and registers `label` as the
    /// human-readable name for its lock identity. With the `trace`
    /// feature on, contention tables and post-mortem bundles report this
    /// name next to [`lock_addr`](Self::lock_addr); without it the label
    /// is dropped and this is exactly [`new`](Self::new).
    #[must_use]
    pub fn labelled(value: T, label: &str) -> Self {
        let var = Self::new(value);
        #[cfg(feature = "trace")]
        rubic_trace::set_label(var.lock_addr() as u64, label);
        #[cfg(not(feature = "trace"))]
        let _ = label;
        var
    }

    #[inline]
    pub(crate) fn core(&self) -> &Arc<TVarCore<T>> {
        &self.core
    }

    /// Returns a consistent copy of the current committed value without
    /// running a transaction.
    ///
    /// Spins while a committer holds the write lock (commit windows are
    /// a few instructions long). Intended for post-run inspection and
    /// monitoring, not for composing with transactional logic — a
    /// snapshot taken outside a transaction has no atomicity relative to
    /// anything else.
    #[must_use]
    pub fn snapshot(&self) -> T {
        let guard = epoch::pin();
        loop {
            let w1 = self.core.vlock.sample();
            if w1.is_locked() {
                std::hint::spin_loop();
                continue;
            }
            let value = self.core.load_clone(&guard);
            if self.core.vlock.sample() == w1 {
                return value;
            }
        }
    }

    /// The commit timestamp of the currently published value (0 for a
    /// never-written variable). Diagnostic.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.core.vlock.sample().version()
    }

    /// True while a transaction holds this variable's write lock.
    ///
    /// Diagnostic only — the answer can be stale by the time the caller
    /// acts on it. Its intended use is *quiescence* checks: once every
    /// transaction has finished (threads joined), any variable still
    /// reporting `true` has leaked its lock, which the harness's
    /// lock-leak oracle turns into a test failure.
    #[must_use]
    pub fn is_locked(&self) -> bool {
        self.core.vlock.sample().is_locked()
    }

    /// Stable address of this variable's versioned lock — the same
    /// identity `LockHold` trace events carry in their address word, so
    /// a leaked lock found at quiescence can be cross-referenced with
    /// the hold-time events of the transactions that touched it.
    #[must_use]
    pub fn lock_addr(&self) -> usize {
        self.core.vlock.addr()
    }

    /// True if `self` and `other` are handles to the same variable.
    #[must_use]
    pub fn ptr_eq(&self, other: &TVar<T>) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }
}

impl<T: TxValue> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: TxValue + std::fmt::Debug> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TVar")
            .field("value", &self.snapshot())
            .field("version", &self.version())
            .finish()
    }
}

impl<T: TxValue + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_snapshot_roundtrip() {
        let v = TVar::new(41);
        assert_eq!(v.snapshot(), 41);
        assert_eq!(v.version(), 0);
    }

    #[test]
    fn clone_shares_identity() {
        let a = TVar::new(String::from("x"));
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        let c = TVar::new(String::from("x"));
        assert!(!a.ptr_eq(&c));
    }

    #[test]
    fn publish_swaps_value() {
        let v = TVar::new(1);
        let guard = epoch::pin();
        let w = v.core.vlock().sample();
        assert!(v.core.vlock().try_lock(w));
        v.core.publish(2, &guard);
        v.core.vlock().release_commit(7);
        drop(guard);
        assert_eq!(v.snapshot(), 2);
        assert_eq!(v.version(), 7);
    }

    #[test]
    fn drop_reclaims_value() {
        // Drop a TVar holding an Arc and check the refcount falls — i.e.
        // the inner allocation was actually freed, not leaked.
        let tracker = Arc::new(());
        let v = TVar::new(Arc::clone(&tracker));
        assert_eq!(Arc::strong_count(&tracker), 2);
        drop(v);
        assert_eq!(Arc::strong_count(&tracker), 1);
    }

    #[test]
    fn snapshot_spins_past_held_lock() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let v = Arc::new(TVar::new(10));
        let locked = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let v2 = Arc::clone(&v);
        let locked2 = Arc::clone(&locked);
        let release2 = Arc::clone(&release);
        let h = std::thread::spawn(move || {
            let w = v2.core.vlock().sample();
            assert!(v2.core.vlock().try_lock(w));
            locked2.store(true, Ordering::Release);
            while !release2.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            let guard = epoch::pin();
            v2.core.publish(20, &guard);
            v2.core.vlock().release_commit(3);
        });
        while !locked.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        // Snapshot must not observe a half-committed state; let the
        // writer finish while we spin.
        release.store(true, Ordering::Release);
        let got = v.snapshot();
        assert!(got == 10 || got == 20);
        h.join().unwrap();
        assert_eq!(v.snapshot(), 20);
    }

    #[test]
    fn debug_format_mentions_value() {
        let v = TVar::new(5);
        let s = format!("{v:?}");
        assert!(s.contains('5'), "{s}");
    }

    #[test]
    fn default_uses_value_default() {
        let v: TVar<u64> = TVar::default();
        assert_eq!(v.snapshot(), 0);
    }
}
