//! The snapshot-timestamp registry for mvcc read-only transactions.
//!
//! A snapshot transaction reads at a *pinned* timestamp `rv` with zero
//! validation, which is only sound if no writer reclaims a version the
//! snapshot still needs. The registry is how readers and writers agree
//! on that without readers ever taking locks:
//!
//! * **Readers** claim a slot and publish their `rv` in it, then
//!   confirm the clock has not moved past `rv` (bounded retries).
//! * **Writers** (mvcc-mode commits), after drawing their write stamp
//!   `wv`, scan the slots for the minimum registered timestamp and only
//!   prune chain entries whose successor stamp is `<=` that minimum
//!   (clamped to `wv`).
//!
//! # Why no needed version is ever pruned (the Dekker handshake)
//!
//! Reader: `store slot(rv)` → `fence(SeqCst)` → `load clock`.
//! Writer: `tick` (clock RMW) → `fence(SeqCst)` → `scan slots`.
//!
//! SC fences guarantee at least one side observes the other. If the
//! writer's scan saw the slot, its minimum is `<= rv` and every version
//! with `succ > rv` survives. If it did not, the reader's clock load
//! saw the writer's tick — so the reader's confirmation `clock == rv`
//! failed for every `rv < wv` and it re-pinned at `rv >= wv`; versions
//! pruned with `succ <= wv <= rv` are exactly the ones a snapshot at
//! `rv` cannot need (`rv < succ` is required for visibility).
//!
//! Registration is best-effort by design: slot exhaustion or a clock
//! that outruns the bounded confirmation loop make [`register`] return
//! `None`, and the caller falls back to the classic validated protocol
//! — a correctness-neutral performance fallback.

use crossbeam_utils::CachePadded;
use rubic_sync::atomic::{fence, AtomicU64, Ordering};

use crate::clock;

/// Number of registry slots = maximum concurrently pinned snapshots.
/// Each slot is padded to its own cache line, so the footprint is one
/// page-ish; well above any sane reader thread count on one host.
const SLOT_COUNT: usize = 64;

/// Sentinel: the slot is unclaimed.
const FREE: u64 = u64::MAX;

/// Bounded confirmation retries before giving up on pinning. Each retry
/// re-publishes the fresher clock sample, so only a writer committing
/// between every store/confirm pair keeps the loop going.
const REGISTER_RETRIES: usize = 16;

// A `const` item used purely as an array-init template for the static
// below (the interior mutability never escapes through the const).
#[allow(clippy::declare_interior_mutable_const)]
const FREE_SLOT: CachePadded<AtomicU64> = CachePadded::new(AtomicU64::new(FREE));

/// The process-global slot array (like the clock: snapshots taken by
/// different `Stm` instances in one process coordinate through the same
/// clock, so they share one registry).
static SLOTS: [CachePadded<AtomicU64>; SLOT_COUNT] = [FREE_SLOT; SLOT_COUNT];

/// A claimed registry slot publishing one pinned snapshot timestamp.
/// Dropping it frees the slot.
pub(crate) struct SlotClaim {
    idx: usize,
    rv: u64,
}

impl SlotClaim {
    /// The pinned snapshot timestamp.
    pub(crate) fn rv(&self) -> u64 {
        self.rv
    }

    /// The claimed registry slot index (trace payload only).
    #[allow(dead_code)]
    pub(crate) fn idx(&self) -> usize {
        self.idx
    }

    /// Re-pins the claim at the current clock (TinySTM-style snapshot
    /// *extension*): a transaction that has not observed anything yet
    /// can move its snapshot forward instead of aborting when a bounded
    /// chain dropped the version it needed. Same store→fence→confirm
    /// handshake as [`register`]. Returns `false` when writers outrun
    /// the bounded loop — the caller must abort (the slot already
    /// publishes the newer timestamp, so the old `rv` is unprotected).
    pub(crate) fn refresh(&mut self) -> bool {
        let mut rv = clock::now();
        // ordering: SeqCst — publish the fresher timestamp; reader half
        // of the Dekker handshake (module docs).
        SLOTS[self.idx].store(rv, Ordering::SeqCst);
        for _ in 0..REGISTER_RETRIES {
            // ordering: SeqCst fence between the slot store and the
            // clock re-read (module docs).
            fence(Ordering::SeqCst);
            let now = clock::now();
            if now == rv {
                self.rv = rv;
                return true;
            }
            rv = now;
            // ordering: SeqCst — same handshake role as above.
            SLOTS[self.idx].store(rv, Ordering::SeqCst);
        }
        // Keep the newest published sample coherent with the claim so
        // the abort path frees a slot whose contents it owns.
        self.rv = rv;
        false
    }
}

impl Drop for SlotClaim {
    fn drop(&mut self) {
        // ordering: Release — the slot must not appear free until the
        // snapshot's chain reads (under the history mutexes) are done.
        SLOTS[self.idx].store(FREE, Ordering::Release);
    }
}

/// Claims a free slot, seeding it with `rv`. `None` when all slots are
/// taken.
fn claim_slot(rv: u64) -> Option<usize> {
    (0..SLOT_COUNT).find(|&idx| {
        let slot = &*SLOTS[idx];
        // ordering: Relaxed pre-check — just contention avoidance; the
        // CAS below is the claiming operation.
        if slot.load(Ordering::Relaxed) != FREE {
            return false;
        }
        // ordering: SeqCst on success — the claiming store doubles as
        // the published snapshot timestamp and participates in the
        // Dekker handshake (module docs); Relaxed on failure — a lost
        // race carries no data.
        slot.compare_exchange(FREE, rv, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
    })
}

/// Registers a snapshot: claims a slot, publishes a clock sample in it,
/// and confirms the sample is still current. Returns `None` (caller
/// falls back to the classic protocol) on slot exhaustion or when
/// writers outrun the bounded confirmation loop.
pub(crate) fn register() -> Option<SlotClaim> {
    let mut rv = clock::now();
    let idx = claim_slot(rv)?;
    for _ in 0..REGISTER_RETRIES {
        // ordering: SeqCst fence between the slot store and the clock
        // re-read — the reader half of the Dekker handshake with
        // `min_active` (module docs).
        fence(Ordering::SeqCst);
        let now = clock::now();
        if now == rv {
            return Some(SlotClaim { idx, rv });
        }
        rv = now;
        // ordering: SeqCst — re-publish the fresher timestamp; same
        // handshake role as the claiming store.
        SLOTS[idx].store(rv, Ordering::SeqCst);
    }
    // ordering: Release — hand the slot back (pairs with claim CAS).
    SLOTS[idx].store(FREE, Ordering::Release);
    None
}

/// The version-retention bound for a writing commit that drew write
/// stamp `wv`: the minimum over every registered snapshot timestamp,
/// clamped to `wv`. Chain entries with `succ <= min_active(wv)` can
/// never be read by any current *or future* snapshot (future pins
/// confirm against a clock that is already `>= wv`). Must be called
/// after the commit's `clock::tick()` — the tick is the writer's store
/// in the Dekker handshake (module docs).
pub(crate) fn min_active(wv: u64) -> u64 {
    // ordering: SeqCst fence between the clock tick and the slot scan —
    // the writer half of the Dekker handshake.
    fence(Ordering::SeqCst);
    let mut min = wv;
    for slot in &SLOTS {
        // ordering: SeqCst — the scan must not be hoisted above the
        // fence; FREE slots (u64::MAX) never lower the minimum.
        let rv = slot.load(Ordering::SeqCst);
        if rv < min {
            min = rv;
        }
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_pins_a_current_timestamp() {
        let claim = register().expect("registry has free slots");
        assert!(claim.rv() <= clock::now());
        // A writer committing now must retain everything this snapshot
        // can see.
        let wv = clock::tick();
        assert!(min_active(wv) <= claim.rv());
    }

    #[test]
    fn drop_frees_the_slot() {
        let claim = register().expect("registry has free slots");
        let idx = claim.idx;
        drop(claim);
        assert_eq!(SLOTS[idx].load(Ordering::SeqCst), FREE);
    }

    #[test]
    fn min_active_clamps_to_wv_without_readers() {
        // Whatever unrelated tests are doing, a registered rv can only
        // lower the bound — never raise it above wv.
        let wv = clock::tick();
        assert!(min_active(wv) <= wv);
    }

    #[test]
    fn reregistration_reuses_slots() {
        for _ in 0..3 * SLOT_COUNT {
            let claim = register().expect("slots must be recycled");
            drop(claim);
        }
    }
}
