//! The transaction engine: read/write sets, validation, timestamp
//! extension, two-phase commit.
//!
//! # Protocol summary
//!
//! A transaction starts by sampling the global clock into its *read
//! version* `rv`.
//!
//! **Read** (invisible): sample the variable's versioned lock; if locked
//! by another transaction → conflict. Load and clone the snapshot, then
//! re-sample the lock — if the word changed, another commit raced the
//! read and we retry the sample/load/sample sequence. A consistent read
//! whose version exceeds `rv` triggers a **timestamp extension**:
//! revalidate the whole read set at the current clock and, if it still
//! holds, adopt the newer read version (TinySTM/SwissTM; avoids TL2's
//! false aborts).
//!
//! **Write** (eager lock, lazy value): the first write to a variable
//! CAS-acquires its lock — failure means a concurrent writer owns it →
//! conflict (eager W/W detection). If the variable was previously read,
//! its version must still match the recorded one. The value is buffered
//! in the private write set; repeated writes just replace the buffer.
//!
//! **Commit**: read-only transactions commit immediately — their read
//! set was kept consistent incrementally. Writers draw a unique
//! timestamp `wv` from the clock, validate the read set (skippable when
//! `wv == rv + 1`, the TL2 fast path: nobody committed in between), then
//! for each write publish the buffered value and release the lock
//! stamped `wv`.
//!
//! **Abort**: release every held lock, restoring pre-lock versions, and
//! drop the buffers.
//!
//! The engine guarantees *opacity* for code that propagates [`TxResult`]
//! errors: a transaction never acts on two mutually inconsistent reads,
//! because every read is validated against `rv` at the moment it
//! happens.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Guard};

use crate::abort::AbortReason;
use crate::chaos::{self, ChaosPoint};
use crate::clock;
use crate::trc;
use crate::tvar::{TVar, TVarCore};
use crate::vlock::{LockWord, VLock};
use crate::TxValue;

/// Why a transactional operation could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmError {
    /// A conflicting transaction owns a lock or committed an overlapping
    /// update; the current attempt must abort and retry.
    Conflict,
}

impl std::fmt::Display for StmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StmError::Conflict => write!(f, "transactional conflict"),
        }
    }
}

impl std::error::Error for StmError {}

/// Result alias for transactional operations.
pub type TxResult<T> = Result<T, StmError>;

/// Object-safe view of a `TVarCore<T>` for the read set.
trait ReadHandle: Send + Sync {
    fn vlock(&self) -> &VLock;
}

impl<T: TxValue> ReadHandle for TVarCore<T> {
    fn vlock(&self) -> &VLock {
        TVarCore::vlock(self)
    }
}

struct ReadEntry {
    handle: Arc<dyn ReadHandle>,
    version: u64,
}

/// Object-safe view of a buffered write.
trait WriteSlot: Send {
    fn vlock(&self) -> &VLock;
    /// Publishes the buffered value and releases the lock stamped `wv`.
    fn publish(&mut self, wv: u64, guard: &Guard);
    /// Releases the lock restoring the pre-lock version.
    fn release_abort(&self);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

struct TypedSlot<T: TxValue> {
    core: Arc<TVarCore<T>>,
    pending: Option<T>,
    prev: LockWord,
    /// When this slot's lock was acquired (trace timestamp; 0 when no
    /// session was recording). Feeds the lock-hold-time histogram.
    #[cfg(feature = "trace")]
    locked_at: u64,
}

impl<T: TxValue> WriteSlot for TypedSlot<T> {
    fn vlock(&self) -> &VLock {
        self.core.vlock()
    }

    fn publish(&mut self, wv: u64, guard: &Guard) {
        let value = self
            .pending
            .take()
            .expect("write slot published twice or never filled");
        self.core.publish(value, guard);
        self.core.vlock().release_commit(wv);
        #[cfg(feature = "trace")]
        trc::lock_hold(self.locked_at, self.core.vlock().addr(), false);
    }

    fn release_abort(&self) {
        self.core.vlock().release_abort(self.prev);
        #[cfg(feature = "trace")]
        trc::lock_hold(self.locked_at, self.core.vlock().addr(), true);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An in-flight transaction.
///
/// Obtained through [`crate::Stm::atomically`]; user code interacts with
/// it via [`read`](Transaction::read), [`write`](Transaction::write) and
/// the combinators built on them. All fallible operations return
/// [`TxResult`]; propagate errors with `?` so a conflicted attempt
/// unwinds promptly and retries.
pub struct Transaction {
    rv: u64,
    read_index: HashMap<usize, u64>,
    reads: Vec<ReadEntry>,
    write_index: HashMap<usize, usize>,
    writes: Vec<Box<dyn WriteSlot>>,
    /// Operation counters for diagnostics (reported through `StmStats`).
    n_reads: u64,
    n_writes: u64,
    /// Why the engine last flagged a conflict in this attempt. Reset to
    /// [`AbortReason::Explicit`] at each attempt start, so an attempt
    /// that aborts without the engine tagging a reason is attributed to
    /// the transaction body itself.
    last_conflict: AbortReason,
}

impl Transaction {
    /// Begins a fresh transaction at the current clock.
    pub(crate) fn begin() -> Self {
        Transaction {
            rv: clock::now(),
            read_index: HashMap::new(),
            reads: Vec::new(),
            write_index: HashMap::new(),
            writes: Vec::new(),
            n_reads: 0,
            n_writes: 0,
            last_conflict: AbortReason::Explicit,
        }
    }

    /// Clears all buffered state and re-samples the clock, reusing the
    /// allocations for the next attempt.
    pub(crate) fn restart(&mut self) {
        debug_assert!(
            self.writes.iter().all(|w| !w.vlock().sample().is_locked()) || self.writes.is_empty(),
            "restart with locks still held; abort first"
        );
        self.read_index.clear();
        self.reads.clear();
        self.write_index.clear();
        self.writes.clear();
        // The op counters must restart with the attempt: they feed
        // `StmStats::record_commit` as *this commit's* footprint, and
        // carrying counts from aborted attempts would inflate every
        // per-commit read/write statistic under contention.
        self.n_reads = 0;
        self.n_writes = 0;
        self.last_conflict = AbortReason::Explicit;
        self.rv = clock::now();
    }

    /// Tags this attempt with `reason` and returns the public error.
    /// Every engine conflict site funnels through here so the retry loop
    /// can attribute the abort.
    #[inline]
    fn fail(&mut self, reason: AbortReason) -> StmError {
        self.last_conflict = reason;
        StmError::Conflict
    }

    /// Why the engine last flagged a conflict in the current attempt
    /// ([`AbortReason::Explicit`] if it never did). Read by the retry
    /// loop when recording an abort; meaningful only right after an
    /// operation returned [`StmError::Conflict`].
    #[must_use]
    pub fn conflict_reason(&self) -> AbortReason {
        self.last_conflict
    }

    /// The current read version (diagnostic).
    #[must_use]
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// Number of distinct variables read so far.
    #[must_use]
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of distinct variables written so far.
    #[must_use]
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    pub(crate) fn op_counts(&self) -> (u64, u64) {
        (self.n_reads, self.n_writes)
    }

    /// Transactionally reads `var`, returning a clone of the value this
    /// transaction observes (its own pending write, if any, else the
    /// committed snapshot consistent with the read version).
    ///
    /// # Errors
    /// [`StmError::Conflict`] if the variable is locked by a concurrent
    /// writer or the snapshot cannot be made consistent.
    pub fn read<T: TxValue>(&mut self, var: &TVar<T>) -> TxResult<T> {
        self.n_reads += 1;
        let core = var.core();
        let addr = core.vlock().addr();

        // Read-your-writes.
        if let Some(&slot_idx) = self.write_index.get(&addr) {
            let slot = self.writes[slot_idx]
                .as_any()
                .downcast_ref::<TypedSlot<T>>()
                .expect("write-slot type confusion");
            return Ok(slot
                .pending
                .clone()
                .expect("pending value missing before commit"));
        }

        let guard = epoch::pin();
        loop {
            chaos::hit(ChaosPoint::LockSample);
            if chaos::abort_requested(ChaosPoint::LockSample) {
                return Err(self.fail(AbortReason::Chaos));
            }
            let w1 = core.vlock().sample();
            if w1.is_locked() {
                // Invisible reads cannot tell who owns the lock; treat it
                // as a conflict and let the contention manager space out
                // the retry (SwissTM would consult the CM here too).
                return Err(self.fail(AbortReason::LockBusy));
            }
            let value = core.load_clone(&guard);
            if core.vlock().sample() != w1 {
                // A commit raced between our two samples; re-read.
                continue;
            }
            if w1.version() > self.rv {
                // The snapshot is newer than our read version: extend.
                self.extend()?;
                // The extension moved rv past `w1.version()` (the clock
                // is >= any published stamp), but the variable may have
                // changed again while we validated; re-check.
                if core.vlock().sample() != w1 {
                    continue;
                }
            }
            // Record (first read only; repeated reads must agree).
            match self.read_index.entry(addr) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != w1.version() {
                        self.last_conflict = AbortReason::ReadValidation;
                        return Err(StmError::Conflict);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(w1.version());
                    self.reads.push(ReadEntry {
                        handle: Arc::clone(core) as Arc<dyn ReadHandle>,
                        version: w1.version(),
                    });
                }
            }
            return Ok(value);
        }
    }

    /// Transactionally reads `var` and applies `f` to the value *in
    /// place*, without cloning it — the zero-copy sibling of
    /// [`read`](Self::read) for large values where only a projection is
    /// needed (a map lookup, a field, an aggregate).
    ///
    /// `f` may run more than once (the consistency protocol retries
    /// racing observations), so it must be pure. It receives either the
    /// transaction's own pending write or the committed snapshot.
    ///
    /// # Errors
    /// [`StmError::Conflict`] under the same conditions as `read`.
    pub fn read_with<T: TxValue, R>(
        &mut self,
        var: &TVar<T>,
        mut f: impl FnMut(&T) -> R,
    ) -> TxResult<R> {
        self.n_reads += 1;
        let core = var.core();
        let addr = core.vlock().addr();

        if let Some(&slot_idx) = self.write_index.get(&addr) {
            let slot = self.writes[slot_idx]
                .as_any()
                .downcast_ref::<TypedSlot<T>>()
                .expect("write-slot type confusion");
            return Ok(f(slot
                .pending
                .as_ref()
                .expect("pending value missing before commit")));
        }

        let guard = epoch::pin();
        loop {
            chaos::hit(ChaosPoint::LockSample);
            if chaos::abort_requested(ChaosPoint::LockSample) {
                return Err(self.fail(AbortReason::Chaos));
            }
            let w1 = core.vlock().sample();
            if w1.is_locked() {
                return Err(self.fail(AbortReason::LockBusy));
            }
            let result = core.with_value(&guard, &mut f);
            if core.vlock().sample() != w1 {
                continue;
            }
            if w1.version() > self.rv {
                self.extend()?;
                if core.vlock().sample() != w1 {
                    continue;
                }
            }
            match self.read_index.entry(addr) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != w1.version() {
                        self.last_conflict = AbortReason::ReadValidation;
                        return Err(StmError::Conflict);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(w1.version());
                    self.reads.push(ReadEntry {
                        handle: Arc::clone(core) as Arc<dyn ReadHandle>,
                        version: w1.version(),
                    });
                }
            }
            return Ok(result);
        }
    }

    /// Transactionally writes `value` into `var`.
    ///
    /// The first write eagerly acquires the variable's lock (SwissTM
    /// W/W detection); later writes replace the private buffer.
    ///
    /// # Errors
    /// [`StmError::Conflict`] if another transaction holds the lock, or
    /// if this transaction previously read a version of `var` that has
    /// since been overwritten.
    pub fn write<T: TxValue>(&mut self, var: &TVar<T>, value: T) -> TxResult<()> {
        self.n_writes += 1;
        let core = var.core();
        let addr = core.vlock().addr();

        if let Some(&slot_idx) = self.write_index.get(&addr) {
            let slot = self.writes[slot_idx]
                .as_any_mut()
                .downcast_mut::<TypedSlot<T>>()
                .expect("write-slot type confusion");
            slot.pending = Some(value);
            return Ok(());
        }

        chaos::hit(ChaosPoint::LockSample);
        if chaos::abort_requested(ChaosPoint::LockSample) {
            return Err(self.fail(AbortReason::Chaos));
        }
        let w = core.vlock().sample();
        if w.is_locked() {
            return Err(self.fail(AbortReason::LockBusy));
        }
        // Write-after-read consistency: the version we read must still
        // be current, or our earlier read is stale.
        if let Some(&recorded) = self.read_index.get(&addr) {
            if w.version() != recorded {
                return Err(self.fail(AbortReason::ReadValidation));
            }
        }
        if !core.vlock().try_lock(w) {
            return Err(self.fail(AbortReason::LockBusy));
        }
        #[cfg(feature = "trace")]
        let locked_at = trc::stamp();
        self.write_index.insert(addr, self.writes.len());
        self.writes.push(Box::new(TypedSlot {
            core: Arc::clone(core),
            pending: Some(value),
            prev: w,
            #[cfg(feature = "trace")]
            locked_at,
        }));
        Ok(())
    }

    /// Reads `var`, applies `f`, and writes the result back — the
    /// classic read-modify-write helper.
    ///
    /// # Errors
    /// Propagates conflicts from the underlying read or write.
    pub fn modify<T: TxValue>(&mut self, var: &TVar<T>, f: impl FnOnce(T) -> T) -> TxResult<()> {
        let current = self.read(var)?;
        self.write(var, f(current))
    }

    /// Validates the read set: every recorded variable must be unlocked
    /// (or locked by this transaction) and still carry its recorded
    /// version. Returns the conflict classification on failure so
    /// callers can attribute the abort.
    fn validate(&self) -> Result<(), AbortReason> {
        chaos::hit(ChaosPoint::PreValidate);
        if chaos::abort_requested(ChaosPoint::PreValidate) {
            return Err(AbortReason::Chaos);
        }
        for entry in &self.reads {
            let w = entry.handle.vlock().sample();
            if w.version() != entry.version {
                return Err(AbortReason::ReadValidation);
            }
            if w.is_locked() && !self.write_index.contains_key(&entry.handle.vlock().addr()) {
                return Err(AbortReason::LockBusy);
            }
        }
        Ok(())
    }

    /// Timestamp extension: attempt to move `rv` up to the present.
    fn extend(&mut self) -> TxResult<()> {
        let new_rv = clock::now();
        match self.validate() {
            Ok(()) => {
                trc::clock_extend(self.rv, new_rv);
                self.rv = new_rv;
                Ok(())
            }
            Err(reason) => Err(self.fail(reason)),
        }
    }

    /// Attempts to commit. On success all writes are visible atomically;
    /// on failure the caller must [`abort`](Self::abort).
    pub(crate) fn commit(&mut self) -> TxResult<()> {
        if self.writes.is_empty() {
            // Read-only: incremental validation (reads + extensions)
            // already guarantees a consistent snapshot at `rv`.
            return Ok(());
        }
        let wv = clock::tick();
        if wv != self.rv + 1 {
            // Someone committed since we started; make sure none of our
            // reads were invalidated (TL2 fast path skips this when the
            // clock tells us nobody did).
            if let Err(reason) = self.validate() {
                return Err(self.fail(reason));
            }
        }
        let guard = epoch::pin();
        for slot in &mut self.writes {
            chaos::hit(ChaosPoint::PrePublish);
            slot.publish(wv, &guard);
        }
        // Slots are spent; prevent a double publish if the transaction
        // object is reused.
        self.write_index.clear();
        self.writes.clear();
        Ok(())
    }

    /// Begins an *unmanaged* transaction: no retry loop, no stats, no
    /// contention management — the caller drives `commit`/`abort` by
    /// hand. This exists so harness tests can pin a transaction at an
    /// arbitrary protocol state (e.g. holding a write lock) while other
    /// threads run; real code should use [`crate::Stm::atomically`].
    ///
    /// Only available with the test-only `chaos` feature.
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn begin_unmanaged() -> Self {
        Self::begin()
    }

    /// Commits an unmanaged transaction (chaos feature only); see
    /// [`begin_unmanaged`](Self::begin_unmanaged).
    ///
    /// # Errors
    /// [`StmError::Conflict`] if validation fails; the caller must then
    /// [`abort_unmanaged`](Self::abort_unmanaged).
    #[cfg(feature = "chaos")]
    pub fn commit_unmanaged(&mut self) -> TxResult<()> {
        self.commit()
    }

    /// Aborts an unmanaged transaction, releasing every held lock
    /// (chaos feature only); see
    /// [`begin_unmanaged`](Self::begin_unmanaged).
    #[cfg(feature = "chaos")]
    pub fn abort_unmanaged(&mut self) {
        self.abort()
    }

    /// Releases every held lock and discards buffered state.
    pub(crate) fn abort(&mut self) {
        for slot in &self.writes {
            slot.release_abort();
        }
        self.write_index.clear();
        self.writes.clear();
        self.read_index.clear();
        self.reads.clear();
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("rv", &self.rv)
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_own_write() {
        let v = TVar::new(1);
        let mut tx = Transaction::begin();
        assert_eq!(tx.read(&v).unwrap(), 1);
        tx.write(&v, 5).unwrap();
        assert_eq!(tx.read(&v).unwrap(), 5);
        tx.write(&v, 9).unwrap();
        assert_eq!(tx.read(&v).unwrap(), 9);
        tx.commit().unwrap();
        assert_eq!(v.snapshot(), 9);
    }

    #[test]
    fn uncommitted_writes_are_invisible() {
        let v = TVar::new(1);
        let mut tx = Transaction::begin();
        tx.write(&v, 2).unwrap();
        // The lock is held, but the published value is unchanged.
        assert!(v.core().vlock().sample().is_locked());
        tx.abort();
        assert_eq!(v.snapshot(), 1);
        assert!(!v.core().vlock().sample().is_locked());
    }

    #[test]
    fn write_write_conflict_detected_eagerly() {
        let v = TVar::new(0);
        let mut t1 = Transaction::begin();
        let mut t2 = Transaction::begin();
        t1.write(&v, 1).unwrap();
        assert_eq!(t2.write(&v, 2), Err(StmError::Conflict));
        t1.abort();
        // After t1 aborts, t2 can retry from scratch.
        t2.restart();
        t2.write(&v, 2).unwrap();
        t2.commit().unwrap();
        assert_eq!(v.snapshot(), 2);
    }

    #[test]
    fn read_of_locked_var_conflicts() {
        let v = TVar::new(0);
        let mut writer = Transaction::begin();
        writer.write(&v, 1).unwrap();
        let mut reader = Transaction::begin();
        assert_eq!(reader.read(&v), Err(StmError::Conflict));
        writer.abort();
    }

    #[test]
    fn stale_read_set_fails_commit() {
        let x = TVar::new(0);
        let y = TVar::new(0);
        // T1 reads x, then T2 commits a change to x, then T1 tries to
        // commit a write to y: T1's read of x is stale.
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read(&x).unwrap(), 0);

        let mut t2 = Transaction::begin();
        t2.write(&x, 99).unwrap();
        t2.commit().unwrap();

        t1.write(&y, 1).unwrap();
        assert_eq!(t1.commit(), Err(StmError::Conflict));
        t1.abort();
        assert_eq!(y.snapshot(), 0, "failed commit must not publish");
    }

    #[test]
    fn extension_allows_reading_fresh_values() {
        let x = TVar::new(0);
        let y = TVar::new(0);
        let mut t1 = Transaction::begin();
        // Another transaction bumps y's version past t1's rv.
        let mut t2 = Transaction::begin();
        t2.write(&y, 7).unwrap();
        t2.commit().unwrap();
        // t1 can still read y (extension succeeds: empty read set so
        // far), and then read x consistently.
        assert_eq!(t1.read(&y).unwrap(), 7);
        assert_eq!(t1.read(&x).unwrap(), 0);
        t1.commit().unwrap();
    }

    #[test]
    fn extension_fails_when_earlier_read_went_stale() {
        let x = TVar::new(0);
        let y = TVar::new(0);
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read(&x).unwrap(), 0);
        // T2 commits to BOTH x and y: now t1's read of x is stale and
        // reading y (whose version is fresh) must fail the extension.
        let mut t2 = Transaction::begin();
        t2.write(&x, 1).unwrap();
        t2.write(&y, 1).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.read(&y), Err(StmError::Conflict));
        t1.abort();
    }

    #[test]
    fn write_after_stale_read_conflicts() {
        let x = TVar::new(0);
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read(&x).unwrap(), 0);
        let mut t2 = Transaction::begin();
        t2.write(&x, 5).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.write(&x, 9), Err(StmError::Conflict));
        t1.abort();
    }

    #[test]
    fn blind_write_to_updated_var_is_allowed() {
        // No prior read: overwriting a variable someone else updated is
        // fine (last-writer-wins is serialisable for blind writes).
        let x = TVar::new(0);
        let mut t1 = Transaction::begin();
        let mut t2 = Transaction::begin();
        t2.write(&x, 5).unwrap();
        t2.commit().unwrap();
        t1.write(&x, 9).unwrap();
        t1.commit().unwrap();
        assert_eq!(x.snapshot(), 9);
    }

    #[test]
    fn read_only_commit_never_fails() {
        let x = TVar::new(1);
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read(&x).unwrap(), 1);
        // Even if x changes afterwards, t1 committed a consistent
        // snapshot of the past.
        let mut t2 = Transaction::begin();
        t2.write(&x, 2).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.commit(), Ok(()));
    }

    #[test]
    fn modify_composes_read_and_write() {
        let x = TVar::new(10);
        let mut t = Transaction::begin();
        t.modify(&x, |v| v * 3).unwrap();
        t.commit().unwrap();
        assert_eq!(x.snapshot(), 30);
    }

    #[test]
    fn abort_releases_all_locks() {
        let vars: Vec<TVar<i32>> = (0..10).map(TVar::new).collect();
        let mut t = Transaction::begin();
        for v in &vars {
            t.write(v, 0).unwrap();
        }
        t.abort();
        for v in &vars {
            assert!(!v.core().vlock().sample().is_locked());
        }
    }

    #[test]
    fn commit_publishes_all_or_nothing() {
        let a = TVar::new(0);
        let b = TVar::new(0);
        let mut t = Transaction::begin();
        t.write(&a, 1).unwrap();
        t.write(&b, 1).unwrap();
        t.commit().unwrap();
        assert_eq!((a.snapshot(), b.snapshot()), (1, 1));
        assert_eq!(a.version(), b.version(), "one commit, one timestamp");
    }

    #[test]
    fn restart_resets_state() {
        let x = TVar::new(0);
        let mut t = Transaction::begin();
        t.read(&x).unwrap();
        t.abort();
        t.restart();
        assert_eq!(t.read_set_len(), 0);
        assert_eq!(t.write_set_len(), 0);
    }

    #[test]
    fn read_with_projects_without_clone() {
        let v = TVar::new(vec![10, 20, 30]);
        let mut t = Transaction::begin();
        let len = t.read_with(&v, Vec::len).unwrap();
        assert_eq!(len, 3);
        let second = t.read_with(&v, |xs| xs[1]).unwrap();
        assert_eq!(second, 20);
        assert_eq!(t.read_set_len(), 1, "same var recorded once");
        t.commit().unwrap();
    }

    #[test]
    fn read_with_sees_own_write() {
        let v = TVar::new(1);
        let mut t = Transaction::begin();
        t.write(&v, 42).unwrap();
        assert_eq!(t.read_with(&v, |x| *x).unwrap(), 42);
        t.abort();
    }

    #[test]
    fn read_with_conflicts_on_locked() {
        let v = TVar::new(0);
        let mut writer = Transaction::begin();
        writer.write(&v, 1).unwrap();
        let mut reader = Transaction::begin();
        assert_eq!(reader.read_with(&v, |x| *x), Err(StmError::Conflict));
        writer.abort();
    }

    #[test]
    fn read_with_participates_in_validation() {
        let x = TVar::new(0);
        let y = TVar::new(0);
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read_with(&x, |v| *v).unwrap(), 0);
        let mut t2 = Transaction::begin();
        t2.write(&x, 9).unwrap();
        t2.commit().unwrap();
        // t1's projection-read of x is stale; an update commit must fail.
        t1.write(&y, 1).unwrap();
        assert_eq!(t1.commit(), Err(StmError::Conflict));
        t1.abort();
    }

    #[test]
    fn repeated_read_same_version_ok() {
        let x = TVar::new(4);
        let mut t = Transaction::begin();
        assert_eq!(t.read(&x).unwrap(), 4);
        assert_eq!(t.read(&x).unwrap(), 4);
        assert_eq!(t.read_set_len(), 1, "duplicate reads are not re-recorded");
        t.commit().unwrap();
    }
}
