//! The transaction engine: read/write sets, validation, timestamp
//! extension, two-phase commit.
//!
//! # Protocol summary
//!
//! A transaction starts by sampling the global clock into its *read
//! version* `rv`.
//!
//! **Read** (invisible): sample the variable's versioned lock; if locked
//! by another transaction → conflict. Load and clone the snapshot, then
//! re-sample the lock — if the word changed, another commit raced the
//! read and we retry the sample/load/sample sequence. A consistent read
//! whose version exceeds `rv` triggers a **timestamp extension**:
//! revalidate the whole read set at the current clock and, if it still
//! holds, adopt the newer read version (TinySTM/SwissTM; avoids TL2's
//! false aborts).
//!
//! **Write** (eager lock, lazy value): the first write to a variable
//! CAS-acquires its lock — failure means a concurrent writer owns it →
//! conflict (eager W/W detection). If the variable was previously read,
//! its version must still match the recorded one. The value is buffered
//! in the private write set; repeated writes just replace the buffer.
//!
//! **Commit**: read-only transactions commit immediately — their read
//! set was kept consistent incrementally. Writers draw a unique
//! timestamp `wv` from the clock, validate the read set (skippable when
//! `wv == rv + 1`, the TL2 fast path: nobody committed in between), then
//! for each write publish the buffered value and release the lock
//! stamped `wv`.
//!
//! **Abort**: release every held lock, restoring pre-lock versions, and
//! drop the buffers.
//!
//! The engine guarantees *opacity* for code that propagates [`TxResult`]
//! errors: a transaction never acts on two mutually inconsistent reads,
//! because every read is validated against `rv` at the moment it
//! happens.
//!
//! # Hot-path engineering (DESIGN.md §11)
//!
//! Per-transaction overhead distorts every figure the reproduction
//! measures, so the engine pays for bookkeeping once per *attempt*, not
//! once per access:
//!
//! * The epoch is pinned **once per attempt** — [`Transaction`] owns the
//!   [`Guard`] (created at `begin`, repinned at `restart`) instead of
//!   pinning inside every `read`/`read_with`/`commit`.
//! * The read/write-set indices are [`crate::index::VarIndex`]: a dense
//!   linear-scanned vector for counter-sized footprints, spilling into
//!   an FxHash map for larger ones. No SipHash on the hot path.
//! * Aborted attempts recycle their allocations: write slots (the boxed
//!   [`WriteSlot`]s *and* the `Arc` they hold) and read-set handles move
//!   to per-transaction spare lists and are reclaimed by the retry,
//!   which touches the same variables in the same order in the common
//!   case. A retry therefore allocates nothing and performs no
//!   refcount RMWs for previously seen variables — exactly when
//!   contention is highest.

use std::any::Any;
use std::sync::Arc;

use crossbeam_epoch::{self as epoch, Guard};

use crate::abort::AbortReason;
use crate::chaos::{self, ChaosPoint};
use crate::clock;
use crate::index::VarIndex;
use crate::trc;
use crate::tvar::{TVar, TVarCore};
use crate::vlock::{LockWord, VLock};
use crate::TxValue;

/// Spare-list size cap: recycled read handles / write slots beyond this
/// are dropped at abort. Bounds memory for pathological transactions
/// that touch a different variable set on every attempt; ordinary
/// retries (same footprint each attempt) never hit it.
const SPARE_CAP: usize = 128;

/// Why a transactional operation could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmError {
    /// A conflicting transaction owns a lock or committed an overlapping
    /// update; the current attempt must abort and retry.
    Conflict,
}

impl std::fmt::Display for StmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StmError::Conflict => write!(f, "transactional conflict"),
        }
    }
}

impl std::error::Error for StmError {}

/// Result alias for transactional operations.
pub type TxResult<T> = Result<T, StmError>;

/// Object-safe view of a `TVarCore<T>` for the read set.
trait ReadHandle: Send + Sync {
    fn vlock(&self) -> &VLock;
}

impl<T: TxValue> ReadHandle for TVarCore<T> {
    fn vlock(&self) -> &VLock {
        TVarCore::vlock(self)
    }
}

struct ReadEntry {
    handle: Arc<dyn ReadHandle>,
    /// The handle's lock address, cached at record time so validation
    /// and recycling never re-derive it through the vtable.
    addr: usize,
    version: u64,
}

/// Object-safe view of a buffered write.
trait WriteSlot: Send {
    fn vlock(&self) -> &VLock;
    /// The slot's lock address (same identity as [`VLock::addr`]),
    /// cached for spare-list matching.
    fn addr(&self) -> usize;
    /// Publishes the buffered value and releases the lock stamped `wv`.
    /// In mvcc mode `retain` is `Some(min_active)`: the displaced value
    /// joins the variable's version chain and entries no registered
    /// snapshot can need (`succ <= min_active`) are pruned; `None`
    /// keeps the single-version behaviour (immediate epoch retirement).
    fn publish(&mut self, wv: u64, guard: &Guard, #[cfg(feature = "mvcc")] retain: Option<u64>);
    /// Releases the lock restoring the pre-lock version.
    fn release_abort(&self);
    /// Drops the buffered value (if any) so a slot parked on the spare
    /// list doesn't keep user data alive; the core `Arc` is kept for
    /// reuse by the retry.
    fn recycle(&mut self);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

struct TypedSlot<T: TxValue> {
    core: Arc<TVarCore<T>>,
    pending: Option<T>,
    prev: LockWord,
    /// When this slot's lock was acquired (trace timestamp; 0 when no
    /// session was recording). Feeds the lock-hold-time histogram.
    #[cfg(feature = "trace")]
    locked_at: u64,
}

impl<T: TxValue> WriteSlot for TypedSlot<T> {
    fn vlock(&self) -> &VLock {
        self.core.vlock()
    }

    fn addr(&self) -> usize {
        self.core.vlock().addr()
    }

    fn publish(&mut self, wv: u64, guard: &Guard, #[cfg(feature = "mvcc")] retain: Option<u64>) {
        let value = self
            .pending
            .take()
            .expect("write slot published twice or never filled");
        #[cfg(feature = "mvcc")]
        match retain {
            Some(min_active) => {
                let dropped = self.core.publish_versioned(value, wv, min_active, guard);
                if dropped > 0 {
                    trc::version_prune(self.core.vlock().addr(), dropped as u64, min_active);
                }
            }
            None => self.core.publish(value, guard),
        }
        #[cfg(not(feature = "mvcc"))]
        self.core.publish(value, guard);
        self.core.vlock().release_commit(wv);
        #[cfg(feature = "trace")]
        trc::lock_hold(self.locked_at, self.core.vlock().addr(), false);
    }

    fn release_abort(&self) {
        self.core.vlock().release_abort(self.prev);
        #[cfg(feature = "trace")]
        trc::lock_hold(self.locked_at, self.core.vlock().addr(), true);
    }

    fn recycle(&mut self) {
        self.pending = None;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Allocation diagnostics for one [`Transaction`] (see
/// [`Transaction::footprint`]). Primarily test support: the retry-reuse
/// guarantees ("a restart allocates nothing") are asserted against
/// these numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxFootprint {
    /// Capacity of the read-set entry vector.
    pub reads_capacity: usize,
    /// Capacity of the write-set slot vector.
    pub writes_capacity: usize,
    /// Capacity of the read index's dense entry vector.
    pub read_index_capacity: usize,
    /// Capacity of the write index's dense entry vector.
    pub write_index_capacity: usize,
    /// Recycled read-set handles parked for the next attempt.
    pub spare_read_handles: usize,
    /// Recycled write slots parked for the next attempt.
    pub spare_write_slots: usize,
    /// True while the read index uses its hashed (spilled)
    /// representation instead of the small-set linear scan.
    pub read_index_spilled: bool,
}

/// An in-flight transaction.
///
/// Obtained through [`crate::Stm::atomically`]; user code interacts with
/// it via [`read`](Transaction::read), [`write`](Transaction::write) and
/// the combinators built on them. All fallible operations return
/// [`TxResult`]; propagate errors with `?` so a conflicted attempt
/// unwinds promptly and retries.
pub struct Transaction {
    rv: u64,
    /// Epoch guard pinned once per attempt (repinned at `restart`), so
    /// individual reads and the commit's publish loop never pay the
    /// pin/unpin protocol.
    guard: Guard,
    read_index: VarIndex<u64>,
    reads: Vec<ReadEntry>,
    write_index: VarIndex<usize>,
    writes: Vec<Box<dyn WriteSlot>>,
    /// Write slots recycled from aborted attempts, most recently
    /// released last. A retry that re-locks the same variables in the
    /// same order pops its slot (allocation *and* `Arc`) off the top.
    spare_writes: Vec<Box<dyn WriteSlot>>,
    /// Read-set entries recycled from aborted attempts; reusing one
    /// skips the `Arc<dyn ReadHandle>` refcount RMW on re-read.
    spare_reads: Vec<ReadEntry>,
    /// Operation counters for diagnostics (reported through `StmStats`).
    n_reads: u64,
    n_writes: u64,
    /// Why the engine last flagged a conflict in this attempt. Reset to
    /// [`AbortReason::Explicit`] at each attempt start, so an attempt
    /// that aborts without the engine tagging a reason is attributed to
    /// the transaction body itself.
    last_conflict: AbortReason,
    /// Lock address of the variable implicated in the last conflict
    /// (0 when no variable is implicated — e.g. chaos at a commit
    /// boundary or an explicit body abort). Always-on companion to
    /// `last_conflict`: one word per transaction, maintained only on
    /// the abort path, it feeds trace-side conflict attribution.
    conflict_addr: usize,
    /// True when this transaction belongs to an mvcc-mode
    /// [`crate::Stm`]: its writing commit appends displaced values to
    /// the per-TVar version chains instead of retiring them
    /// immediately.
    #[cfg(feature = "mvcc")]
    mvcc: bool,
    /// Present for snapshot (multi-version read-only) transactions: the
    /// claimed registry slot pinning `rv` as the snapshot timestamp.
    /// Dropping it (commit, abort, or panic unwind) frees the slot.
    #[cfg(feature = "mvcc")]
    snap: Option<crate::snap::SlotClaim>,
    /// Set when user code called `write` inside a snapshot transaction;
    /// [`crate::Stm::read_only`] demotes the transaction to the classic
    /// validated protocol and reruns the body.
    #[cfg(feature = "mvcc")]
    snap_demoted: bool,
}

impl Transaction {
    /// Begins a fresh transaction at the current clock.
    pub(crate) fn begin() -> Self {
        Transaction {
            rv: clock::now(),
            guard: epoch::pin(),
            read_index: VarIndex::new(),
            reads: Vec::new(),
            write_index: VarIndex::new(),
            writes: Vec::new(),
            spare_writes: Vec::new(),
            spare_reads: Vec::new(),
            n_reads: 0,
            n_writes: 0,
            last_conflict: AbortReason::Explicit,
            conflict_addr: 0,
            #[cfg(feature = "mvcc")]
            mvcc: false,
            #[cfg(feature = "mvcc")]
            snap: None,
            #[cfg(feature = "mvcc")]
            snap_demoted: false,
        }
    }

    /// Begins a snapshot (multi-version read-only) transaction: claims
    /// a registry slot, pins the snapshot timestamp, and never
    /// validates or aborts at commit. `None` when the registry is
    /// saturated or the clock outruns the bounded pin loop — the caller
    /// falls back to the classic validated protocol.
    #[cfg(feature = "mvcc")]
    pub(crate) fn begin_snapshot() -> Option<Self> {
        let claim = crate::snap::register()?;
        trc::snap_pin(claim.rv(), claim.idx());
        let mut tx = Self::begin();
        tx.rv = claim.rv();
        tx.mvcc = true;
        tx.snap = Some(claim);
        Some(tx)
    }

    /// Marks this transaction as belonging to an mvcc-mode `Stm` (its
    /// writing commit feeds the version chains). Called right after
    /// `begin` by the retry loop; never flips mid-attempt.
    #[cfg(feature = "mvcc")]
    pub(crate) fn set_mvcc(&mut self, on: bool) {
        self.mvcc = on;
    }

    /// True when a snapshot transaction attempted a write and must be
    /// rerun under the classic protocol.
    #[cfg(feature = "mvcc")]
    pub(crate) fn snapshot_demoted(&self) -> bool {
        self.snap_demoted
    }

    /// Clears all buffered state and re-samples the clock, reusing the
    /// allocations for the next attempt.
    pub(crate) fn restart(&mut self) {
        debug_assert!(
            self.writes.iter().all(|w| !w.vlock().sample().is_locked()) || self.writes.is_empty(),
            "restart with locks still held; abort first"
        );
        self.read_index.clear();
        self.write_index.clear();
        // Anything still buffered (the managed retry loop aborts first,
        // so normally nothing) is parked for reuse, not dropped.
        self.park_access_sets();
        // The op counters must restart with the attempt: they feed
        // `StmStats::record_commit` as *this commit's* footprint, and
        // carrying counts from aborted attempts would inflate every
        // per-commit read/write statistic under contention.
        self.n_reads = 0;
        self.n_writes = 0;
        self.last_conflict = AbortReason::Explicit;
        self.conflict_addr = 0;
        #[cfg(feature = "mvcc")]
        {
            self.snap_demoted = false;
        }
        // Momentarily unpin so the epoch (and hence reclamation) can
        // pass this thread between attempts, then re-sample the clock
        // under the fresh pin.
        self.guard.repin();
        self.rv = clock::now();
    }

    /// Moves the read-set entries and (already released) write slots to
    /// the spare lists, dropping buffered values but keeping every
    /// allocation and `Arc` for the next attempt. Drained in reverse so
    /// a retry touching the same variables in the same order finds its
    /// entry on top of the stack.
    fn park_access_sets(&mut self) {
        for mut slot in self.writes.drain(..).rev() {
            slot.recycle();
            self.spare_writes.push(slot);
        }
        for entry in self.reads.drain(..).rev() {
            self.spare_reads.push(entry);
        }
        // Pathological transactions that touch a fresh variable set on
        // every attempt would otherwise grow the spares without bound.
        self.spare_writes.truncate(SPARE_CAP);
        self.spare_reads.truncate(SPARE_CAP);
    }

    /// Tags this attempt with `reason` and returns the public error.
    /// Every engine conflict site funnels through here (or through
    /// [`fail_at`](Self::fail_at) when a variable is implicated) so the
    /// retry loop can attribute the abort.
    #[inline]
    fn fail(&mut self, reason: AbortReason) -> StmError {
        self.last_conflict = reason;
        self.conflict_addr = 0;
        StmError::Conflict
    }

    /// [`fail`](Self::fail) with the culprit variable's lock address
    /// recorded for conflict attribution.
    #[inline]
    fn fail_at(&mut self, reason: AbortReason, addr: usize) -> StmError {
        self.last_conflict = reason;
        self.conflict_addr = addr;
        StmError::Conflict
    }

    /// Why the engine last flagged a conflict in the current attempt
    /// ([`AbortReason::Explicit`] if it never did). Read by the retry
    /// loop when recording an abort; meaningful only right after an
    /// operation returned [`StmError::Conflict`].
    #[must_use]
    pub fn conflict_reason(&self) -> AbortReason {
        self.last_conflict
    }

    /// Lock address of the variable implicated in the last conflict —
    /// the same identity as [`crate::TVar::lock_addr`] — or 0 when no
    /// single variable was (chaos at a commit boundary, explicit body
    /// abort). Meaningful under the same conditions as
    /// [`conflict_reason`](Self::conflict_reason).
    #[must_use]
    pub fn conflict_addr(&self) -> usize {
        self.conflict_addr
    }

    /// The current read version (diagnostic).
    #[must_use]
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// Number of distinct variables read so far.
    #[must_use]
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Number of distinct variables written so far.
    #[must_use]
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Allocation diagnostics: current capacities and spare-list sizes.
    ///
    /// The no-allocation-on-retry guarantee is expressed through this:
    /// after an abort + restart that replays the same accesses, the
    /// capacities are unchanged and the spare lists have been drained
    /// back into the live sets.
    #[must_use]
    pub fn footprint(&self) -> TxFootprint {
        TxFootprint {
            reads_capacity: self.reads.capacity(),
            writes_capacity: self.writes.capacity(),
            read_index_capacity: self.read_index.capacity(),
            write_index_capacity: self.write_index.capacity(),
            spare_read_handles: self.spare_reads.len(),
            spare_write_slots: self.spare_writes.len(),
            read_index_spilled: self.read_index.spilled(),
        }
    }

    pub(crate) fn op_counts(&self) -> (u64, u64) {
        (self.n_reads, self.n_writes)
    }

    /// Runs `f` (e.g. contention-manager backoff) with the epoch
    /// momentarily unpinned, so a sleeping transaction does not hold
    /// reclamation back for the whole wait. Only sound between attempts:
    /// the access sets hold `Arc`s and cloned values, never
    /// epoch-protected pointers.
    pub(crate) fn unpinned<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.guard.repin_after(f)
    }

    /// Records a first read of `core`, preferring a recycled entry from
    /// an earlier attempt (same address ⇒ same handle; no refcount RMW).
    #[inline]
    fn record_read<T: TxValue>(&mut self, core: &Arc<TVarCore<T>>, addr: usize, version: u64) {
        self.read_index.insert(addr, version);
        // Retries replay reads in order and the spares are stacked in
        // reverse, so the matching entry sits on top; an O(1) top check
        // is the whole reuse policy — a divergent retry falls through to
        // a fresh `Arc` clone rather than scanning the spare stack (the
        // entry itself lives inline in the `Vec`, so only the refcount
        // RMW is at stake, never an allocation).
        let recycled = match self.spare_reads.last() {
            Some(top) if top.addr == addr => self.spare_reads.pop(),
            _ => None,
        };
        match recycled {
            Some(mut entry) => {
                entry.version = version;
                self.reads.push(entry);
            }
            None => self.reads.push(ReadEntry {
                handle: Arc::clone(core) as Arc<dyn ReadHandle>,
                addr,
                version,
            }),
        }
    }

    /// Transactionally reads `var`, returning a clone of the value this
    /// transaction observes (its own pending write, if any, else the
    /// committed snapshot consistent with the read version).
    ///
    /// # Errors
    /// [`StmError::Conflict`] if the variable is locked by a concurrent
    /// writer or the snapshot cannot be made consistent.
    pub fn read<T: TxValue>(&mut self, var: &TVar<T>) -> TxResult<T> {
        self.n_reads += 1;
        #[cfg(feature = "mvcc")]
        if self.snap.is_some() {
            return self.snapshot_read_with(var, &mut Clone::clone);
        }
        let core = var.core();
        let addr = core.vlock().addr();

        // Read-your-writes.
        if let Some(slot_idx) = self.write_index.get(addr) {
            let slot = self.writes[slot_idx]
                .as_any()
                .downcast_ref::<TypedSlot<T>>()
                .expect("write-slot type confusion");
            return Ok(slot
                .pending
                .clone()
                .expect("pending value missing before commit"));
        }

        loop {
            chaos::hit(ChaosPoint::LockSample);
            if chaos::abort_requested(ChaosPoint::LockSample) {
                return Err(self.fail_at(AbortReason::Chaos, addr));
            }
            let w1 = core.vlock().sample();
            if w1.is_locked() {
                // Invisible reads cannot tell who owns the lock; treat it
                // as a conflict and let the contention manager space out
                // the retry (SwissTM would consult the CM here too).
                return Err(self.fail_at(AbortReason::LockBusy, addr));
            }
            let value = core.load_clone(&self.guard);
            if core.vlock().sample() != w1 {
                // A commit raced between our two samples; re-read.
                continue;
            }
            if w1.version() > self.rv {
                // The snapshot is newer than our read version: extend.
                self.extend()?;
                // The extension moved rv past `w1.version()` (the clock
                // is >= any published stamp), but the variable may have
                // changed again while we validated; re-check.
                if core.vlock().sample() != w1 {
                    continue;
                }
            }
            // Record (first read only; repeated reads must agree).
            match self.read_index.get(addr) {
                Some(recorded) => {
                    if recorded != w1.version() {
                        return Err(self.fail_at(AbortReason::ReadValidation, addr));
                    }
                }
                None => self.record_read(core, addr, w1.version()),
            }
            return Ok(value);
        }
    }

    /// Transactionally reads `var` and applies `f` to the value *in
    /// place*, without cloning it — the zero-copy sibling of
    /// [`read`](Self::read) for large values where only a projection is
    /// needed (a map lookup, a field, an aggregate).
    ///
    /// `f` may run more than once (the consistency protocol retries
    /// racing observations), so it must be pure. It receives either the
    /// transaction's own pending write or the committed snapshot.
    ///
    /// # Errors
    /// [`StmError::Conflict`] under the same conditions as `read`.
    pub fn read_with<T: TxValue, R>(
        &mut self,
        var: &TVar<T>,
        mut f: impl FnMut(&T) -> R,
    ) -> TxResult<R> {
        self.n_reads += 1;
        #[cfg(feature = "mvcc")]
        if self.snap.is_some() {
            return self.snapshot_read_with(var, &mut f);
        }
        let core = var.core();
        let addr = core.vlock().addr();

        if let Some(slot_idx) = self.write_index.get(addr) {
            let slot = self.writes[slot_idx]
                .as_any()
                .downcast_ref::<TypedSlot<T>>()
                .expect("write-slot type confusion");
            return Ok(f(slot
                .pending
                .as_ref()
                .expect("pending value missing before commit")));
        }

        loop {
            chaos::hit(ChaosPoint::LockSample);
            if chaos::abort_requested(ChaosPoint::LockSample) {
                return Err(self.fail_at(AbortReason::Chaos, addr));
            }
            let w1 = core.vlock().sample();
            if w1.is_locked() {
                return Err(self.fail_at(AbortReason::LockBusy, addr));
            }
            let result = core.with_value(&self.guard, &mut f);
            if core.vlock().sample() != w1 {
                continue;
            }
            if w1.version() > self.rv {
                self.extend()?;
                if core.vlock().sample() != w1 {
                    continue;
                }
            }
            match self.read_index.get(addr) {
                Some(recorded) => {
                    if recorded != w1.version() {
                        return Err(self.fail_at(AbortReason::ReadValidation, addr));
                    }
                }
                None => self.record_read(core, addr, w1.version()),
            }
            return Ok(result);
        }
    }

    /// The snapshot read protocol: no read-set recording, no lock-busy
    /// conflicts — just the version visible at the pinned timestamp,
    /// either the variable's current value (fast path) or a chain entry
    /// (slow path).
    ///
    /// On a [`SnapshotMiss`](crate::tvar::SnapshotMiss) (a bounded
    /// chain was forced to drop the needed version), a transaction with
    /// no *prior* reads has observed nothing that a newer snapshot
    /// could contradict, so it **extends**: re-pins its registry slot
    /// at the current clock and retries in place (the snapshot-mode
    /// analogue of TinySTM's timestamp extension, where extension is
    /// trivially valid on an empty read-set). Single-read transactions
    /// — e.g. a whole `TMap` lookup — therefore never abort even when
    /// chains overflow under scheduler preemption. Only a miss *after*
    /// earlier reads fails, with [`AbortReason::SnapshotStale`]; the
    /// retry loop re-pins a fresh transaction.
    #[cfg(feature = "mvcc")]
    fn snapshot_read_with<T: TxValue, R>(
        &mut self,
        var: &TVar<T>,
        f: &mut impl FnMut(&T) -> R,
    ) -> TxResult<R> {
        // Same chaos *perturbation* point as a classic read's lock
        // sample (keeps seeded decision streams aligned across modes),
        // but never the kill query: snapshot reads cannot abort.
        chaos::hit(ChaosPoint::LockSample);
        let addr = var.core().vlock().addr();
        // `n_reads` was already bumped for this read by the dispatcher.
        let extendable = self.n_reads == 1;
        let mut extends_left: u8 = 3;
        loop {
            match var.core().read_at_with(self.rv, &self.guard, f) {
                Ok((value, via_chain)) => {
                    if let Some(stamp) = via_chain {
                        trc::snapshot_read(self.rv, stamp);
                    }
                    return Ok(value);
                }
                Err(crate::tvar::SnapshotMiss) => {
                    if extendable && extends_left > 0 {
                        extends_left -= 1;
                        if let Some(claim) = self.snap.as_mut() {
                            let old_rv = self.rv;
                            if claim.refresh() {
                                self.rv = claim.rv();
                                trc::snap_extend(old_rv, self.rv, addr);
                                continue;
                            }
                        }
                    }
                    return Err(self.fail_at(AbortReason::SnapshotStale, addr));
                }
            }
        }
    }

    /// Pops a recyclable slot for `addr` off the spare list: the exact
    /// slot from a previous attempt if present (its `Arc` is already the
    /// right core), else any slot of the right concrete type (reusing
    /// the heap allocation).
    fn take_spare_slot<T: TxValue>(&mut self, addr: usize) -> Option<Box<dyn WriteSlot>> {
        if self.spare_writes.is_empty() {
            return None;
        }
        // Retries re-lock the same variables in the same order and the
        // spares are stacked in reverse, so the right slot is on top.
        if let Some(top) = self.spare_writes.last() {
            if top.addr() == addr {
                return self.spare_writes.pop();
            }
        }
        if let Some(pos) = self.spare_writes.iter().position(|s| s.addr() == addr) {
            return Some(self.spare_writes.swap_remove(pos));
        }
        let pos = self
            .spare_writes
            .iter()
            .position(|s| s.as_any().is::<TypedSlot<T>>())?;
        Some(self.spare_writes.swap_remove(pos))
    }

    /// Transactionally writes `value` into `var`.
    ///
    /// The first write eagerly acquires the variable's lock (SwissTM
    /// W/W detection); later writes replace the private buffer.
    ///
    /// # Errors
    /// [`StmError::Conflict`] if another transaction holds the lock, or
    /// if this transaction previously read a version of `var` that has
    /// since been overwritten.
    pub fn write<T: TxValue>(&mut self, var: &TVar<T>, value: T) -> TxResult<()> {
        self.n_writes += 1;
        #[cfg(feature = "mvcc")]
        if self.snap.is_some() {
            // Snapshot transactions are read-only by contract; a write
            // demotes the whole transaction and `read_only` reruns the
            // body under the classic validated protocol.
            self.snap_demoted = true;
            trc::snap_demote(1, self.rv, var.core().vlock().addr());
            return Err(self.fail(AbortReason::Explicit));
        }
        let core = var.core();
        let addr = core.vlock().addr();

        if let Some(slot_idx) = self.write_index.get(addr) {
            let slot = self.writes[slot_idx]
                .as_any_mut()
                .downcast_mut::<TypedSlot<T>>()
                .expect("write-slot type confusion");
            slot.pending = Some(value);
            return Ok(());
        }

        chaos::hit(ChaosPoint::LockSample);
        if chaos::abort_requested(ChaosPoint::LockSample) {
            return Err(self.fail_at(AbortReason::Chaos, addr));
        }
        let w = core.vlock().sample();
        if w.is_locked() {
            return Err(self.fail_at(AbortReason::LockBusy, addr));
        }
        // Write-after-read consistency: the version we read must still
        // be current, or our earlier read is stale.
        if let Some(recorded) = self.read_index.get(addr) {
            if w.version() != recorded {
                return Err(self.fail_at(AbortReason::ReadValidation, addr));
            }
        }
        if !core.vlock().try_lock(w) {
            return Err(self.fail_at(AbortReason::LockBusy, addr));
        }
        #[cfg(feature = "trace")]
        let locked_at = trc::stamp();
        let slot: Box<dyn WriteSlot> = match self.take_spare_slot::<T>(addr) {
            Some(mut boxed) => {
                let slot = boxed
                    .as_any_mut()
                    .downcast_mut::<TypedSlot<T>>()
                    .expect("spare slot type confusion");
                if !Arc::ptr_eq(&slot.core, core) {
                    slot.core = Arc::clone(core);
                }
                slot.pending = Some(value);
                slot.prev = w;
                #[cfg(feature = "trace")]
                {
                    slot.locked_at = locked_at;
                }
                boxed
            }
            None => Box::new(TypedSlot {
                core: Arc::clone(core),
                pending: Some(value),
                prev: w,
                #[cfg(feature = "trace")]
                locked_at,
            }),
        };
        self.write_index.insert(addr, self.writes.len());
        self.writes.push(slot);
        Ok(())
    }

    /// Reads `var`, applies `f`, and writes the result back — the
    /// classic read-modify-write helper.
    ///
    /// # Errors
    /// Propagates conflicts from the underlying read or write.
    pub fn modify<T: TxValue>(&mut self, var: &TVar<T>, f: impl FnOnce(T) -> T) -> TxResult<()> {
        let current = self.read(var)?;
        self.write(var, f(current))
    }

    /// Validates the read set: every recorded variable must be unlocked
    /// (or locked by this transaction) and still carry its recorded
    /// version. Returns the conflict classification *and the culprit
    /// variable's lock address* on failure so callers can attribute the
    /// abort (chaos kills carry address 0 — no variable is at fault).
    fn validate(&self) -> Result<(), (AbortReason, usize)> {
        chaos::hit(ChaosPoint::PreValidate);
        if chaos::abort_requested(ChaosPoint::PreValidate) {
            return Err((AbortReason::Chaos, 0));
        }
        // Hoisted once: read-only validation must never probe the write
        // index — a locked entry cannot be ours if we wrote nothing.
        let may_own_locks = !self.write_index.is_empty();
        for entry in &self.reads {
            let w = entry.handle.vlock().sample();
            if w.version() != entry.version {
                return Err((AbortReason::ReadValidation, entry.addr));
            }
            // `entry.addr` was cached at record time; no vtable call to
            // re-derive the identity we already sampled.
            if w.is_locked() && !(may_own_locks && self.write_index.contains(entry.addr)) {
                return Err((AbortReason::LockBusy, entry.addr));
            }
        }
        Ok(())
    }

    /// Timestamp extension: attempt to move `rv` up to the present.
    fn extend(&mut self) -> TxResult<()> {
        let new_rv = clock::now();
        match self.validate() {
            Ok(()) => {
                trc::clock_extend(self.rv, new_rv);
                self.rv = new_rv;
                Ok(())
            }
            Err((reason, addr)) => Err(self.fail_at(reason, addr)),
        }
    }

    /// Attempts to commit. On success all writes are visible atomically;
    /// on failure the caller must [`abort`](Self::abort).
    pub(crate) fn commit(&mut self) -> TxResult<()> {
        #[cfg(feature = "mvcc")]
        if self.snap.is_some() {
            // Snapshot commit: zero validation, zero aborts. It fires
            // the same pre-validate chaos *perturbation* as every other
            // commit so seeded decision streams stay aligned across
            // modes, but never the kill query — abort-freedom is the
            // mode's contract.
            chaos::hit(ChaosPoint::PreValidate);
            self.snap = None; // drop releases the registry slot
            return Ok(());
        }
        if self.writes.is_empty() {
            // Read-only: incremental validation (reads + extensions)
            // already guarantees a consistent snapshot at `rv`. The
            // commit still consults the chaos hook exactly like a
            // writing commit's validation pass does: this used to
            // return without advancing the seeded decision stream,
            // desynchronising replay for read-heavy and mixed runs.
            chaos::hit(ChaosPoint::PreValidate);
            if chaos::abort_requested(ChaosPoint::PreValidate) {
                return Err(self.fail(AbortReason::Chaos));
            }
            return Ok(());
        }
        let wv = clock::tick();
        // In mvcc mode the displaced versions go onto the per-TVar
        // chains; compute the retention bound once per commit, after the
        // tick (the writer half of the registry's Dekker handshake).
        #[cfg(feature = "mvcc")]
        let retain = if self.mvcc {
            Some(crate::snap::min_active(wv))
        } else {
            None
        };
        if wv != self.rv + 1 {
            // Someone committed since we started; make sure none of our
            // reads were invalidated (TL2 fast path skips this when the
            // clock tells us nobody did).
            if let Err((reason, addr)) = self.validate() {
                return Err(self.fail_at(reason, addr));
            }
        }
        for slot in &mut self.writes {
            chaos::hit(ChaosPoint::PrePublish);
            #[cfg(feature = "mvcc")]
            slot.publish(wv, &self.guard, retain);
            #[cfg(not(feature = "mvcc"))]
            slot.publish(wv, &self.guard);
        }
        // Slots are spent; park them (prevents a double publish if the
        // transaction object is reused, keeps the allocations around).
        self.write_index.clear();
        for slot in self.writes.drain(..).rev() {
            self.spare_writes.push(slot);
        }
        self.spare_writes.truncate(SPARE_CAP);
        Ok(())
    }

    /// Begins an *unmanaged* transaction: no retry loop, no stats, no
    /// contention management — the caller drives `commit`/`abort` by
    /// hand. This exists so harness tests can pin a transaction at an
    /// arbitrary protocol state (e.g. holding a write lock) while other
    /// threads run; real code should use [`crate::Stm::atomically`].
    ///
    /// Only available with the test-only `chaos` feature.
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn begin_unmanaged() -> Self {
        Self::begin()
    }

    /// Commits an unmanaged transaction (chaos feature only); see
    /// [`begin_unmanaged`](Self::begin_unmanaged).
    ///
    /// # Errors
    /// [`StmError::Conflict`] if validation fails; the caller must then
    /// [`abort_unmanaged`](Self::abort_unmanaged).
    #[cfg(feature = "chaos")]
    pub fn commit_unmanaged(&mut self) -> TxResult<()> {
        self.commit()
    }

    /// Aborts an unmanaged transaction, releasing every held lock
    /// (chaos feature only); see
    /// [`begin_unmanaged`](Self::begin_unmanaged).
    #[cfg(feature = "chaos")]
    pub fn abort_unmanaged(&mut self) {
        self.abort()
    }

    /// Restarts an unmanaged transaction for another attempt (chaos
    /// feature only); see [`begin_unmanaged`](Self::begin_unmanaged).
    #[cfg(feature = "chaos")]
    pub fn restart_unmanaged(&mut self) {
        self.restart()
    }

    /// Releases every held lock and parks buffered state for reuse.
    pub(crate) fn abort(&mut self) {
        #[cfg(feature = "mvcc")]
        {
            // Free the registry slot promptly so the snapshot stops
            // holding version chains back (drop is a no-op when None).
            self.snap = None;
        }
        for slot in &self.writes {
            slot.release_abort();
        }
        self.write_index.clear();
        self.read_index.clear();
        self.park_access_sets();
    }
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("rv", &self.rv)
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_own_write() {
        let v = TVar::new(1);
        let mut tx = Transaction::begin();
        assert_eq!(tx.read(&v).unwrap(), 1);
        tx.write(&v, 5).unwrap();
        assert_eq!(tx.read(&v).unwrap(), 5);
        tx.write(&v, 9).unwrap();
        assert_eq!(tx.read(&v).unwrap(), 9);
        tx.commit().unwrap();
        assert_eq!(v.snapshot(), 9);
    }

    #[test]
    fn uncommitted_writes_are_invisible() {
        let v = TVar::new(1);
        let mut tx = Transaction::begin();
        tx.write(&v, 2).unwrap();
        // The lock is held, but the published value is unchanged.
        assert!(v.core().vlock().sample().is_locked());
        tx.abort();
        assert_eq!(v.snapshot(), 1);
        assert!(!v.core().vlock().sample().is_locked());
    }

    #[test]
    fn write_write_conflict_detected_eagerly() {
        let v = TVar::new(0);
        let mut t1 = Transaction::begin();
        let mut t2 = Transaction::begin();
        t1.write(&v, 1).unwrap();
        assert_eq!(t2.write(&v, 2), Err(StmError::Conflict));
        t1.abort();
        // After t1 aborts, t2 can retry from scratch.
        t2.restart();
        t2.write(&v, 2).unwrap();
        t2.commit().unwrap();
        assert_eq!(v.snapshot(), 2);
    }

    #[test]
    fn read_of_locked_var_conflicts() {
        let v = TVar::new(0);
        let mut writer = Transaction::begin();
        writer.write(&v, 1).unwrap();
        let mut reader = Transaction::begin();
        assert_eq!(reader.read(&v), Err(StmError::Conflict));
        writer.abort();
    }

    #[test]
    fn stale_read_set_fails_commit() {
        let x = TVar::new(0);
        let y = TVar::new(0);
        // T1 reads x, then T2 commits a change to x, then T1 tries to
        // commit a write to y: T1's read of x is stale.
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read(&x).unwrap(), 0);

        let mut t2 = Transaction::begin();
        t2.write(&x, 99).unwrap();
        t2.commit().unwrap();

        t1.write(&y, 1).unwrap();
        assert_eq!(t1.commit(), Err(StmError::Conflict));
        t1.abort();
        assert_eq!(y.snapshot(), 0, "failed commit must not publish");
    }

    #[test]
    fn extension_allows_reading_fresh_values() {
        let x = TVar::new(0);
        let y = TVar::new(0);
        let mut t1 = Transaction::begin();
        // Another transaction bumps y's version past t1's rv.
        let mut t2 = Transaction::begin();
        t2.write(&y, 7).unwrap();
        t2.commit().unwrap();
        // t1 can still read y (extension succeeds: empty read set so
        // far), and then read x consistently.
        assert_eq!(t1.read(&y).unwrap(), 7);
        assert_eq!(t1.read(&x).unwrap(), 0);
        t1.commit().unwrap();
    }

    #[test]
    fn extension_fails_when_earlier_read_went_stale() {
        let x = TVar::new(0);
        let y = TVar::new(0);
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read(&x).unwrap(), 0);
        // T2 commits to BOTH x and y: now t1's read of x is stale and
        // reading y (whose version is fresh) must fail the extension.
        let mut t2 = Transaction::begin();
        t2.write(&x, 1).unwrap();
        t2.write(&y, 1).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.read(&y), Err(StmError::Conflict));
        t1.abort();
    }

    #[test]
    fn write_after_stale_read_conflicts() {
        let x = TVar::new(0);
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read(&x).unwrap(), 0);
        let mut t2 = Transaction::begin();
        t2.write(&x, 5).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.write(&x, 9), Err(StmError::Conflict));
        t1.abort();
    }

    #[test]
    fn blind_write_to_updated_var_is_allowed() {
        // No prior read: overwriting a variable someone else updated is
        // fine (last-writer-wins is serialisable for blind writes).
        let x = TVar::new(0);
        let mut t1 = Transaction::begin();
        let mut t2 = Transaction::begin();
        t2.write(&x, 5).unwrap();
        t2.commit().unwrap();
        t1.write(&x, 9).unwrap();
        t1.commit().unwrap();
        assert_eq!(x.snapshot(), 9);
    }

    #[test]
    fn read_only_commit_never_fails() {
        let x = TVar::new(1);
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read(&x).unwrap(), 1);
        // Even if x changes afterwards, t1 committed a consistent
        // snapshot of the past.
        let mut t2 = Transaction::begin();
        t2.write(&x, 2).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.commit(), Ok(()));
    }

    #[test]
    fn modify_composes_read_and_write() {
        let x = TVar::new(10);
        let mut t = Transaction::begin();
        t.modify(&x, |v| v * 3).unwrap();
        t.commit().unwrap();
        assert_eq!(x.snapshot(), 30);
    }

    #[test]
    fn abort_releases_all_locks() {
        let vars: Vec<TVar<i32>> = (0..10).map(TVar::new).collect();
        let mut t = Transaction::begin();
        for v in &vars {
            t.write(v, 0).unwrap();
        }
        t.abort();
        for v in &vars {
            assert!(!v.core().vlock().sample().is_locked());
        }
    }

    #[test]
    fn commit_publishes_all_or_nothing() {
        let a = TVar::new(0);
        let b = TVar::new(0);
        let mut t = Transaction::begin();
        t.write(&a, 1).unwrap();
        t.write(&b, 1).unwrap();
        t.commit().unwrap();
        assert_eq!((a.snapshot(), b.snapshot()), (1, 1));
        assert_eq!(a.version(), b.version(), "one commit, one timestamp");
    }

    #[test]
    fn restart_resets_state() {
        let x = TVar::new(0);
        let mut t = Transaction::begin();
        t.read(&x).unwrap();
        t.abort();
        t.restart();
        assert_eq!(t.read_set_len(), 0);
        assert_eq!(t.write_set_len(), 0);
    }

    #[test]
    fn read_with_projects_without_clone() {
        let v = TVar::new(vec![10, 20, 30]);
        let mut t = Transaction::begin();
        let len = t.read_with(&v, Vec::len).unwrap();
        assert_eq!(len, 3);
        let second = t.read_with(&v, |xs| xs[1]).unwrap();
        assert_eq!(second, 20);
        assert_eq!(t.read_set_len(), 1, "same var recorded once");
        t.commit().unwrap();
    }

    #[test]
    fn read_with_sees_own_write() {
        let v = TVar::new(1);
        let mut t = Transaction::begin();
        t.write(&v, 42).unwrap();
        assert_eq!(t.read_with(&v, |x| *x).unwrap(), 42);
        t.abort();
    }

    #[test]
    fn read_with_conflicts_on_locked() {
        let v = TVar::new(0);
        let mut writer = Transaction::begin();
        writer.write(&v, 1).unwrap();
        let mut reader = Transaction::begin();
        assert_eq!(reader.read_with(&v, |x| *x), Err(StmError::Conflict));
        writer.abort();
    }

    #[test]
    fn read_with_participates_in_validation() {
        let x = TVar::new(0);
        let y = TVar::new(0);
        let mut t1 = Transaction::begin();
        assert_eq!(t1.read_with(&x, |v| *v).unwrap(), 0);
        let mut t2 = Transaction::begin();
        t2.write(&x, 9).unwrap();
        t2.commit().unwrap();
        // t1's projection-read of x is stale; an update commit must fail.
        t1.write(&y, 1).unwrap();
        assert_eq!(t1.commit(), Err(StmError::Conflict));
        t1.abort();
    }

    #[test]
    fn repeated_read_same_version_ok() {
        let x = TVar::new(4);
        let mut t = Transaction::begin();
        assert_eq!(t.read(&x).unwrap(), 4);
        assert_eq!(t.read(&x).unwrap(), 4);
        assert_eq!(t.read_set_len(), 1, "duplicate reads are not re-recorded");
        t.commit().unwrap();
    }

    // -----------------------------------------------------------------
    // Hot-path fast-path regressions: allocation reuse and the
    // small-set / spilled index representations.
    // -----------------------------------------------------------------

    /// Replays the same read+write footprint: the retry must consume the
    /// spare lists instead of allocating, and every vector must keep the
    /// capacity it grew on the first attempt.
    #[test]
    fn restart_preserves_capacity_and_reuses_slots() {
        let vars: Vec<TVar<u64>> = (0..8).map(TVar::new).collect();
        let reads: Vec<TVar<u64>> = (0..8).map(TVar::new).collect();
        let body = |t: &mut Transaction| {
            for r in &reads {
                t.read(r).unwrap();
            }
            for v in &vars {
                t.write(v, 1).unwrap();
            }
        };

        let mut t = Transaction::begin();
        body(&mut t);
        t.abort();
        let parked = t.footprint();
        assert_eq!(parked.spare_write_slots, 8, "abort must park, not drop");
        assert_eq!(parked.spare_read_handles, 8);

        t.restart();
        body(&mut t);
        let reused = t.footprint();
        assert_eq!(reused.spare_write_slots, 0, "retry must reuse every slot");
        assert_eq!(
            reused.spare_read_handles, 0,
            "retry must reuse every handle"
        );
        assert_eq!(reused.reads_capacity, parked.reads_capacity);
        assert_eq!(reused.writes_capacity, parked.writes_capacity);
        assert_eq!(reused.read_index_capacity, parked.read_index_capacity);
        assert_eq!(reused.write_index_capacity, parked.write_index_capacity);
        t.commit().unwrap();
        for v in &vars {
            assert_eq!(v.snapshot(), 1);
        }
    }

    /// Same-type slot allocations are reused even when the retry touches
    /// *different* variables of that type.
    #[test]
    fn retry_with_different_vars_reuses_typed_allocations() {
        let a = TVar::new(0u64);
        let b = TVar::new(0u64);
        let mut t = Transaction::begin();
        t.write(&a, 1).unwrap();
        t.abort();
        assert_eq!(t.footprint().spare_write_slots, 1);
        t.restart();
        t.write(&b, 2).unwrap();
        assert_eq!(
            t.footprint().spare_write_slots,
            0,
            "typed allocation must be recycled for a new address"
        );
        t.commit().unwrap();
        assert_eq!(b.snapshot(), 2);
        assert_eq!(a.snapshot(), 0);
    }

    /// The engine behaves identically across the linear-scan and the
    /// spilled (hashed) index representations: read-your-writes,
    /// duplicate-read agreement, and commit/abort effects.
    #[test]
    fn spilled_index_equivalence() {
        let n = crate::index::SPILL_THRESHOLD * 3;
        let vars: Vec<TVar<u64>> = (0..n as u64).map(TVar::new).collect();

        // Committed run over a spilled footprint.
        let mut t = Transaction::begin();
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(t.read(v).unwrap(), i as u64);
            t.write(v, i as u64 + 100).unwrap();
        }
        assert!(t.footprint().read_index_spilled, "footprint must spill");
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(t.read(v).unwrap(), i as u64 + 100, "read-your-writes");
            assert_eq!(t.read_set_len(), n, "duplicate reads not re-recorded");
        }
        t.commit().unwrap();
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(v.snapshot(), i as u64 + 100);
        }

        // Aborted run: nothing published, no lock leaked.
        let mut t = Transaction::begin();
        for v in &vars {
            let cur = t.read(v).unwrap();
            t.write(v, cur + 1).unwrap();
        }
        t.abort();
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(v.snapshot(), i as u64 + 100, "abort must not publish");
            assert!(!v.core().vlock().sample().is_locked());
        }
    }

    /// A spilled read set still validates correctly: a stale entry is
    /// found through the hashed representation too.
    #[test]
    fn spilled_read_set_still_validates() {
        let n = crate::index::SPILL_THRESHOLD * 2;
        let vars: Vec<TVar<u64>> = (0..n as u64).map(TVar::new).collect();
        let sink = TVar::new(0u64);
        let mut t1 = Transaction::begin();
        for v in &vars {
            t1.read(v).unwrap();
        }
        // Concurrent commit invalidates one mid-set entry.
        let mut t2 = Transaction::begin();
        t2.write(&vars[n / 2], 999).unwrap();
        t2.commit().unwrap();
        t1.write(&sink, 1).unwrap();
        assert_eq!(t1.commit(), Err(StmError::Conflict));
        t1.abort();
        assert_eq!(sink.snapshot(), 0);
    }
}
