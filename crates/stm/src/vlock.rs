//! Versioned write-locks.
//!
//! Every [`crate::TVar`] embeds one `VLock`: a single `AtomicU64` that is
//! either
//!
//! * **unlocked**, encoding the version (commit timestamp) of the
//!   currently published value as `version << 1`, or
//! * **locked**, encoding the *pre-lock* version as
//!   `(version << 1) | 1`.
//!
//! Keeping the previous version inside the locked word means an aborting
//! writer can restore the lock with a plain store and no side metadata,
//! and transactions never need an owner identity: "do I hold this lock?"
//! is answered by the write-set index (a transaction locks a variable at
//! most once), and everyone else treats a locked word as a conflict.
//!
//! The LSB-as-lock-bit encoding is the classic TL2/TinySTM ownership
//! record layout, applied per-object instead of to a striped global
//! table.

use rubic_sync::atomic::{AtomicU64, Ordering};

/// Snapshot of a versioned lock word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockWord(u64);

impl LockWord {
    /// True if the word is write-locked.
    #[inline]
    #[must_use]
    pub fn is_locked(self) -> bool {
        self.0 & 1 == 1
    }

    /// The version carried by the word (the pre-lock version when
    /// locked).
    #[inline]
    #[must_use]
    pub fn version(self) -> u64 {
        self.0 >> 1
    }

    /// Raw encoded value (for CAS loops).
    #[inline]
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A versioned write-lock.
#[derive(Debug)]
pub struct VLock {
    word: AtomicU64,
}

impl VLock {
    /// Creates an unlocked lock carrying `version`.
    #[must_use]
    pub fn new(version: u64) -> Self {
        debug_assert!(version < u64::MAX >> 1, "version overflow");
        VLock {
            word: AtomicU64::new(version << 1),
        }
    }

    /// Samples the lock word.
    ///
    /// `Acquire`: a reader that observes version `v` unlocked must also
    /// observe the value published together with `v`.
    #[inline]
    #[must_use]
    pub fn sample(&self) -> LockWord {
        LockWord(self.word.load(Ordering::Acquire))
    }

    /// Attempts to acquire the write lock, transitioning
    /// `expected` (which must be unlocked) → locked with the same
    /// version preserved.
    ///
    /// Returns `true` on success. `Acquire` on success orders subsequent
    /// buffered-write bookkeeping after lock ownership is established.
    #[inline]
    #[must_use]
    pub fn try_lock(&self, expected: LockWord) -> bool {
        debug_assert!(!expected.is_locked());
        // ordering: Relaxed on failure — a failed acquisition publishes
        // nothing and the caller aborts on the observed word alone.
        self.word
            .compare_exchange(
                expected.raw(),
                expected.raw() | 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Releases a held lock, restoring the pre-lock version (abort
    /// path).
    ///
    /// # Contract
    /// The caller must hold the lock; `prev` must be the `LockWord`
    /// observed at acquisition time.
    #[inline]
    pub fn release_abort(&self, prev: LockWord) {
        debug_assert!(self.sample().is_locked());
        self.word.store(prev.raw() & !1, Ordering::Release);
    }

    /// Releases a held lock, installing the fresh commit timestamp
    /// `new_version` (commit path).
    ///
    /// `Release`: the value swap performed just before must be visible to
    /// any reader that observes the new version.
    ///
    /// # Contract
    /// The caller must hold the lock and must have already published the
    /// new value.
    #[inline]
    pub fn release_commit(&self, new_version: u64) {
        debug_assert!(self.sample().is_locked());
        debug_assert!(new_version < u64::MAX >> 1, "version overflow");
        self.word.store(new_version << 1, Ordering::Release);
    }

    /// Stable address used as this lock's identity in read/write-set
    /// indices.
    #[inline]
    #[must_use]
    pub fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_lock_is_unlocked_with_version() {
        let l = VLock::new(42);
        let w = l.sample();
        assert!(!w.is_locked());
        assert_eq!(w.version(), 42);
    }

    #[test]
    fn lock_preserves_version() {
        let l = VLock::new(7);
        let w = l.sample();
        assert!(l.try_lock(w));
        let locked = l.sample();
        assert!(locked.is_locked());
        assert_eq!(locked.version(), 7);
    }

    #[test]
    fn second_lock_fails() {
        let l = VLock::new(0);
        let w = l.sample();
        assert!(l.try_lock(w));
        assert!(!l.try_lock(LockWord(w.raw())));
    }

    #[test]
    fn stale_cas_fails() {
        let l = VLock::new(3);
        let stale = l.sample();
        let w = l.sample();
        assert!(l.try_lock(w));
        l.release_commit(9);
        // `stale` still encodes version 3; the lock now holds 9.
        assert!(!l.try_lock(stale));
        let fresh = l.sample();
        assert_eq!(fresh.version(), 9);
        assert!(l.try_lock(fresh));
    }

    #[test]
    fn abort_restores_previous_version() {
        let l = VLock::new(11);
        let w = l.sample();
        assert!(l.try_lock(w));
        l.release_abort(l.sample());
        let after = l.sample();
        assert!(!after.is_locked());
        assert_eq!(after.version(), 11);
    }

    #[test]
    fn commit_installs_new_version() {
        let l = VLock::new(1);
        let w = l.sample();
        assert!(l.try_lock(w));
        l.release_commit(5);
        let after = l.sample();
        assert!(!after.is_locked());
        assert_eq!(after.version(), 5);
    }

    #[test]
    fn addr_is_stable_identity() {
        let l = VLock::new(0);
        let a1 = l.addr();
        let w = l.sample();
        assert!(l.try_lock(w));
        assert_eq!(l.addr(), a1);
        let other = VLock::new(0);
        assert_ne!(other.addr(), a1);
    }

    #[test]
    fn contended_lock_single_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let lock = Arc::new(VLock::new(0));
        let winners = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let lock = Arc::clone(&lock);
            let winners = Arc::clone(&winners);
            handles.push(std::thread::spawn(move || {
                let w = lock.sample();
                if !w.is_locked() && lock.try_lock(w) {
                    winners.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }
}
