//! The global version clock.
//!
//! Time-based STMs (TL2, TinySTM, SwissTM) serialise writing commits with
//! a single process-wide counter: each writing commit draws a fresh
//! timestamp and stamps every location it publishes. A transaction's
//! *read version* `rv` is a clock sample taken at start (or later, after
//! a successful extension); any location whose version exceeds `rv` may
//! have changed since the transaction's linearisation point and forces
//! revalidation.
//!
//! The clock is a single `AtomicU64`. One `fetch_add` per writing commit
//! is the textbook design; at the commit rates our workloads reach it is
//! nowhere near saturation, and it keeps correctness reasoning trivial.
//! It *is*, however, the hottest word in the process — every transaction
//! start loads it and every writing commit RMWs it — so it lives alone
//! on its cache line(s): without the padding, an unlucky neighbour in
//! the same `.data` line would be false-shared across every core running
//! transactions.

use rubic_sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Process-global version clock shared by every [`crate::TVar`].
///
/// All `TVar`s in a process share one clock (as in TL2/SwissTM). Separate
/// [`crate::Stm`] instances — e.g. co-located tenant processes hosted in
/// one OS process — also share it; that is harmless, because version
/// timestamps only ever flow through the `TVar`s themselves, and
/// cross-tenant `TVar` sharing is exactly what the timestamps protect.
static GLOBAL_CLOCK: CachePadded<AtomicU64> = CachePadded::new(AtomicU64::new(0));

/// Headroom guard for the version timestamp space.
///
/// # Wraparound story
///
/// Version timestamps must stay totally ordered by plain integer
/// comparison: the versioned locks compare them (`version <= rv`), the
/// mvcc visibility rule compares them (`stamp <= rv < succ`), and a
/// wrapped clock would silently invert every one of those comparisons.
/// Nothing in the engine renumbers or epochs the clock, so the design
/// stance is *saturation is unreachable, and we assert it*:
///
/// * The hard encoding ceiling is `u64::MAX >> 1` — [`crate::vlock`]
///   packs `version << 1 | locked` into one word.
/// * This guard trips (debug builds) at `u64::MAX >> 2`, two full
///   doublings below the ceiling, so the assertion can never race the
///   encoding limit itself.
/// * Reaching it would take `2^62` writing commits: at an (absurd)
///   sustained 1 G commits/second that is ≈ 146 years of uptime. Release
///   builds therefore carry no branch; if a deployment ever approached
///   the limit the debug assertion in soak testing would fire decades
///   first.
pub(crate) const VERSION_HEADROOM: u64 = u64::MAX >> 2;

/// Debug-asserts that a freshly drawn timestamp is still far from the
/// encoding ceiling (see [`VERSION_HEADROOM`]). Factored out of
/// [`tick`] so the wrap guard is unit-testable without driving the
/// process-global clock anywhere near `2^62`.
#[inline]
pub(crate) fn check_headroom(stamp: u64) {
    debug_assert!(
        stamp < VERSION_HEADROOM,
        "version clock at {stamp} is within 2 doublings of the vlock \
         encoding ceiling; see clock.rs wraparound story"
    );
}

/// Returns the current clock value.
///
/// `Acquire` so that a transaction beginning at `rv = now()` observes
/// every value published by commits with timestamp `<= rv`.
#[inline]
#[must_use]
pub fn now() -> u64 {
    GLOBAL_CLOCK.load(Ordering::Acquire)
}

/// Draws a fresh, unique write timestamp (strictly greater than every
/// previously drawn one).
///
/// `AcqRel`: the increment must be ordered after the committing
/// transaction's validation loads and before its publication stores.
#[inline]
#[must_use]
pub fn tick() -> u64 {
    let stamp = GLOBAL_CLOCK.fetch_add(1, Ordering::AcqRel) + 1;
    check_headroom(stamp);
    stamp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_monotone_and_unique() {
        let a = tick();
        let b = tick();
        let c = tick();
        assert!(a < b && b < c);
    }

    #[test]
    fn now_sees_ticks() {
        let before = now();
        let t = tick();
        assert!(t > before);
        assert!(now() >= t);
    }

    #[test]
    fn headroom_accepts_realistic_stamps() {
        check_headroom(0);
        check_headroom(1 << 40);
        check_headroom(VERSION_HEADROOM - 1);
    }

    /// The wrap guard must trip *below* the vlock encoding ceiling, not
    /// at it — tested against the helper so the process-global clock is
    /// never perturbed.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "encoding ceiling")]
    fn headroom_trips_well_below_encoding_limit() {
        const { assert!(VERSION_HEADROOM < u64::MAX >> 1) }
        check_headroom(VERSION_HEADROOM);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        use std::collections::HashSet;
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let seen = Arc::clone(&seen);
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::with_capacity(1000);
                for _ in 0..1000 {
                    local.push(tick());
                }
                let mut g = seen.lock().unwrap();
                for t in local {
                    assert!(g.insert(t), "duplicate timestamp {t}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen.lock().unwrap().len(), 4000);
    }
}
