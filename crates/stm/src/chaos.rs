//! Deterministic fault injection ("chaos") for the STM protocol.
//!
//! The transaction engine consults this module at its three racy
//! protocol points — lock sampling, read-set validation, and commit
//! publication. In normal builds the hook compiles to nothing. With the
//! crate feature **`chaos`** enabled, a test can [`install`] a
//! [`ChaosHook`] that injects delays and yields *at exactly those
//! points*, forcing the interleavings (read/commit races, validation
//! windows, publish storms) that otherwise need minutes of stress
//! running to surface.
//!
//! The built-in hook, [`SeededChaos`], derives every decision from a
//! single `u64` seed via per-thread SplitMix64 streams, and records the
//! decision sequence. Re-running with the same seed replays the same
//! decisions, so a failure found under chaos is pinned by its seed —
//! see the harness tests in the workspace root for the workflow.
//!
//! ```
//! # #[cfg(feature = "chaos")] {
//! use std::sync::Arc;
//! use rubic_stm::chaos::{install, SeededChaos};
//!
//! let hook = Arc::new(SeededChaos::new(0xDEADBEEF));
//! let _guard = install(hook.clone()); // uninstalls on drop
//! // ... run transactional code; decisions land in hook.decision_log()
//! # }
//! ```

/// A protocol point at which the engine consults the chaos hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosPoint {
    /// Immediately before a read or write samples a variable's
    /// versioned lock. Perturbing here widens the sample→load→resample
    /// window that invisible reads depend on.
    LockSample,
    /// On entry to read-set validation (commit-time or timestamp
    /// extension). Perturbing here lets concurrent commits land between
    /// the decision to validate and the validation itself.
    PreValidate,
    /// Before each write-slot publication during commit. Perturbing
    /// here stretches the locked window other transactions observe.
    PrePublish,
}

impl ChaosPoint {
    /// Stable wire code (matches `rubic_trace::codes::CHAOS_POINT_NAMES`
    /// indexing) used by trace events.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            ChaosPoint::LockSample => 0,
            ChaosPoint::PreValidate => 1,
            ChaosPoint::PrePublish => 2,
        }
    }
}

/// Engine-side entry point: called by `txn.rs` at each protocol point.
///
/// Free of any cost when the `chaos` feature is off — the body is empty
/// and the call inlines away.
#[inline(always)]
pub(crate) fn hit(point: ChaosPoint) {
    #[cfg(feature = "chaos")]
    enabled::fire(point);
    #[cfg(not(feature = "chaos"))]
    let _ = point;
}

/// Asks the installed hook whether the current attempt should be killed
/// at `point`. A `true` return makes the engine abort the attempt with
/// [`crate::AbortReason::Chaos`] — this is how fault-injection tests
/// exercise the abort-attribution path end to end. Always `false` (and
/// free) when the `chaos` feature is off.
#[inline(always)]
pub(crate) fn abort_requested(point: ChaosPoint) -> bool {
    #[cfg(feature = "chaos")]
    return enabled::query_abort(point);
    #[cfg(not(feature = "chaos"))]
    {
        let _ = point;
        false
    }
}

#[cfg(feature = "chaos")]
pub use enabled::{install, ChaosAction, ChaosGuard, ChaosHook, Decision, SeededChaos};

#[cfg(feature = "chaos")]
mod enabled {
    use super::ChaosPoint;
    use rubic_sync::{Arc, Mutex, MutexGuard, RwLock};
    use std::collections::HashMap;

    /// A fault-injection hook consulted at every [`ChaosPoint`].
    ///
    /// Implementations must be cheap and must not call back into the
    /// STM (the engine may hold epoch pins when it fires the hook).
    pub trait ChaosHook: Send + Sync {
        /// Called by the engine at `point`; may sleep, yield, or spin
        /// to perturb the interleaving.
        fn at(&self, point: ChaosPoint);

        /// Asked by the engine at `point` whether to kill the current
        /// attempt. Returning `true` aborts it with the `Chaos` abort
        /// reason. Defaults to never killing.
        fn abort_at(&self, point: ChaosPoint) -> bool {
            let _ = point;
            false
        }
    }

    static HOOK: RwLock<Option<Arc<dyn ChaosHook>>> = RwLock::new(None);
    /// Serialises chaos scopes: two tests installing hooks concurrently
    /// would otherwise see each other's injections and lose seed
    /// reproducibility.
    static SCOPE: Mutex<()> = Mutex::new(());

    /// Installs `hook` process-wide and returns a guard that removes it
    /// when dropped.
    ///
    /// Holding the guard also holds a global scope lock, so concurrent
    /// tests serialise instead of interleaving their injections. Keep
    /// the guard alive for exactly the code under test.
    #[must_use]
    pub fn install(hook: Arc<dyn ChaosHook>) -> ChaosGuard {
        let scope = SCOPE.lock();
        *HOOK.write() = Some(hook);
        ChaosGuard { _scope: scope }
    }

    /// Uninstalls the hook (and releases the chaos scope) on drop.
    pub struct ChaosGuard {
        _scope: MutexGuard<'static, ()>,
    }

    impl Drop for ChaosGuard {
        fn drop(&mut self) {
            *HOOK.write() = None;
        }
    }

    pub(super) fn fire(point: ChaosPoint) {
        // Clone out of the lock so a slow hook never blocks install.
        let hook = HOOK.read().clone();
        if let Some(hook) = hook {
            #[cfg(feature = "trace")]
            rubic_trace::emit(rubic_trace::EventKind::Chaos, point.code(), 0, 0, 0);
            hook.at(point);
        }
    }

    pub(super) fn query_abort(point: ChaosPoint) -> bool {
        let hook = HOOK.read().clone();
        match hook {
            Some(hook) if hook.abort_at(point) => {
                // Payload word a = 1 marks a kill (vs. a = 0 for a plain
                // perturbation event from `fire`).
                #[cfg(feature = "trace")]
                rubic_trace::emit(rubic_trace::EventKind::Chaos, point.code(), 1, 0, 0);
                true
            }
            _ => false,
        }
    }

    /// What the hook decided to do at one protocol point.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ChaosAction {
        /// Proceed untouched.
        Pass,
        /// Yield the time slice — hand the core to a rival.
        Yield,
        /// Spin for the given number of `spin_loop` hints — stretch the
        /// current protocol window without a scheduler round-trip.
        Spin(u32),
        /// Kill the attempt: the engine aborts it with the `Chaos`
        /// abort reason (only produced via [`ChaosHook::abort_at`]).
        Kill,
    }

    /// One recorded hook decision.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Decision {
        /// Where the engine consulted the hook.
        pub point: ChaosPoint,
        /// Thread stream the decision came from (registration order).
        pub stream: u64,
        /// What was injected.
        pub action: ChaosAction,
    }

    /// Deterministic chaos: every decision is a pure function of the
    /// seed, the thread's stream index, and the thread's decision count.
    ///
    /// Each thread that reaches a protocol point gets its own SplitMix64
    /// stream (keyed by arrival order), so a single-threaded run — or
    /// any run with a deterministic thread structure — replays bit-for-
    /// bit from the seed alone. The full decision sequence is recorded
    /// and available through [`decision_log`](SeededChaos::decision_log)
    /// for replay comparison and failure reports.
    pub struct SeededChaos {
        seed: u64,
        /// When `Some(n)`, roughly one in `n` abort queries kills the
        /// attempt (deterministically, from the same seed machinery).
        kill_one_in: Option<u64>,
        streams: Mutex<HashMap<std::thread::ThreadId, (u64, u64)>>, // lint: allow-std-sync — identity key only
        log: Mutex<Vec<Decision>>,
    }

    impl SeededChaos {
        /// A hook whose decisions derive entirely from `seed`.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            SeededChaos {
                seed,
                kill_one_in: None,
                streams: Mutex::new(HashMap::new()),
                log: Mutex::new(Vec::new()),
            }
        }

        /// Like [`new`](Self::new), but additionally kills roughly one
        /// in `n` attempts at the engine's abort-query points — the
        /// killed attempts surface as `AbortReason::Chaos` in the stats
        /// breakdown and the trace. `n` is clamped to at least 1.
        #[must_use]
        pub fn with_abort_one_in(seed: u64, n: u64) -> Self {
            SeededChaos {
                kill_one_in: Some(n.max(1)),
                ..Self::new(seed)
            }
        }

        /// The seed this hook replays from.
        #[must_use]
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Every decision taken so far, in global arrival order.
        #[must_use]
        pub fn decision_log(&self) -> Vec<Decision> {
            self.log.lock().clone()
        }

        /// SplitMix64: the n-th draw of stream `stream` under this seed.
        fn draw(&self, stream: u64, n: u64) -> u64 {
            let mut x = self
                .seed
                .wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F))
                .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        /// Allocates the calling thread's next `(stream, draw-index)`
        /// pair. Every hook decision — perturbation or kill — consumes
        /// one index, so the decision sequence stays a pure function of
        /// the seed and each thread's call sequence.
        fn advance(&self) -> (u64, u64) {
            // Thread identity is diagnostics/keying only, never a
            // synchronization edge, so the raw std call stays.
            let me = std::thread::current().id(); // lint: allow-std-sync — identity key only
            let mut streams = self.streams.lock();
            let next_stream = streams.len() as u64;
            let entry = streams.entry(me).or_insert((next_stream, 0));
            let snapshot = *entry;
            entry.1 += 1;
            snapshot
        }

        fn decide(&self, point: ChaosPoint) -> Decision {
            let (stream, n) = self.advance();
            let r = self.draw(stream, n);
            // 1/8 yield, 1/8 spin, 3/4 pass: enough perturbation to
            // shake interleavings, not enough to destroy throughput.
            let action = match r & 0x7 {
                0 => ChaosAction::Yield,
                1 => ChaosAction::Spin(((r >> 8) & 0x1FF) as u32),
                _ => ChaosAction::Pass,
            };
            Decision {
                point,
                stream,
                action,
            }
        }
    }

    impl ChaosHook for SeededChaos {
        fn at(&self, point: ChaosPoint) {
            let decision = self.decide(point);
            self.log.lock().push(decision);
            match decision.action {
                ChaosAction::Pass | ChaosAction::Kill => {}
                ChaosAction::Yield => rubic_sync::thread::yield_now(),
                ChaosAction::Spin(n) => {
                    for _ in 0..n {
                        std::hint::spin_loop();
                    }
                }
            }
        }

        fn abort_at(&self, point: ChaosPoint) -> bool {
            let Some(one_in) = self.kill_one_in else {
                return false;
            };
            let (stream, n) = self.advance();
            // `u64::is_multiple_of` postdates the 1.75 MSRV.
            #[allow(clippy::manual_is_multiple_of)]
            let kill = self.draw(stream, n) % one_in == 0;
            if kill {
                self.log.lock().push(Decision {
                    point,
                    stream,
                    action: ChaosAction::Kill,
                });
            }
            kill
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn same_seed_same_decisions() {
            // Purity of the decision function: two hooks with one seed,
            // driven through the same sequence of points on one thread,
            // produce identical logs.
            let points = [
                ChaosPoint::LockSample,
                ChaosPoint::LockSample,
                ChaosPoint::PreValidate,
                ChaosPoint::PrePublish,
                ChaosPoint::LockSample,
                ChaosPoint::PrePublish,
            ];
            let run = || {
                let hook = SeededChaos::new(42);
                for &p in &points {
                    hook.at(p);
                }
                hook.decision_log()
            };
            assert_eq!(run(), run());
        }

        #[test]
        fn different_seeds_diverge() {
            let run = |seed| {
                let hook = SeededChaos::new(seed);
                for _ in 0..64 {
                    hook.at(ChaosPoint::LockSample);
                }
                hook.decision_log()
                    .iter()
                    .map(|d| d.action)
                    .collect::<Vec<_>>()
            };
            assert_ne!(run(1), run(2), "64 draws should not collide");
        }

        #[test]
        fn install_guard_uninstalls() {
            struct Count(std::sync::atomic::AtomicU64);
            impl ChaosHook for Count {
                fn at(&self, _p: ChaosPoint) {
                    self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
            let hook = Arc::new(Count(std::sync::atomic::AtomicU64::new(0)));
            {
                let _g = install(hook.clone());
                fire(ChaosPoint::LockSample);
                fire(ChaosPoint::PrePublish);
            }
            fire(ChaosPoint::LockSample); // after drop: no hook
            assert_eq!(hook.0.load(std::sync::atomic::Ordering::Relaxed), 2);
        }

        #[test]
        fn streams_are_per_thread() {
            let hook = Arc::new(SeededChaos::new(7));
            let h2 = Arc::clone(&hook);
            hook.at(ChaosPoint::LockSample);
            std::thread::spawn(move || h2.at(ChaosPoint::LockSample))
                .join()
                .unwrap();
            let log = hook.decision_log();
            assert_eq!(log.len(), 2);
            assert_ne!(log[0].stream, log[1].stream);
        }
    }
}
