//! Abort attribution: *why* a transaction attempt failed.
//!
//! Every conflict site in the engine tags the transaction with an
//! [`AbortReason`] before returning [`crate::StmError::Conflict`]; the
//! retry loop in [`crate::Stm::atomically`] reads the tag when it
//! records the abort, so [`crate::StmStats`] can break aborts down by
//! cause. The public `StmError` stays a single `Conflict` variant — user
//! code never needs the reason to behave correctly, only observers do.
//!
//! The discriminants are a stable wire format: they match the
//! `rubic-trace` code table (`rubic_trace::codes::ABORT_*`) byte for
//! byte, so trace events and stats counters index the same taxonomy. A
//! feature-gated test asserts the two tables agree.

/// Why a transaction attempt aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AbortReason {
    /// Commit-time or extension-time read-set validation found a read
    /// whose version changed — a conflicting writer committed first.
    ReadValidation = 0,
    /// A versioned lock needed for a read or write was held by a
    /// concurrent writer (eager W/W detection, or a reader meeting a
    /// locked variable).
    LockBusy = 1,
    /// The contention manager killed the attempt. Reserved: none of the
    /// built-in managers kill, but the code is allocated so CM
    /// strategies that do (e.g. Greedy-style priority kills) share the
    /// taxonomy.
    CmKill = 2,
    /// The chaos hook forced the abort (fault injection).
    Chaos = 3,
    /// The transaction body itself returned `Err` without the engine
    /// flagging a conflict first (an explicit user retry).
    Explicit = 4,
    /// A multi-version snapshot read could not find a version visible at
    /// the pinned timestamp: the bounded per-TVar chain was forced to
    /// drop it (chain cap overflow under a long-lived snapshot). The
    /// snapshot retry loop re-pins a fresh timestamp, so this reason is
    /// transient by construction. Only raised with the `mvcc` feature.
    SnapshotStale = 5,
}

impl AbortReason {
    /// Number of distinct reasons.
    pub const COUNT: usize = 6;

    /// All reasons, in discriminant order.
    pub const ALL: [AbortReason; AbortReason::COUNT] = [
        AbortReason::ReadValidation,
        AbortReason::LockBusy,
        AbortReason::CmKill,
        AbortReason::Chaos,
        AbortReason::Explicit,
        AbortReason::SnapshotStale,
    ];

    /// The stable wire code (equals the `rubic_trace::codes::ABORT_*`
    /// constant of the same name).
    #[inline]
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code.
    #[must_use]
    pub fn from_code(code: u8) -> Option<AbortReason> {
        Self::ALL.get(code as usize).copied()
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AbortReason::ReadValidation => "read-validation",
            AbortReason::LockBusy => "lock-busy",
            AbortReason::CmKill => "cm-kill",
            AbortReason::Chaos => "chaos",
            AbortReason::Explicit => "explicit",
            AbortReason::SnapshotStale => "snapshot-stale",
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for reason in AbortReason::ALL {
            assert_eq!(AbortReason::from_code(reason.code()), Some(reason));
        }
        assert_eq!(AbortReason::from_code(200), None);
    }

    /// The engine's reason codes and the trace crate's code table are
    /// the same wire format; drifting silently would mislabel every
    /// exported abort event.
    #[cfg(feature = "trace")]
    #[test]
    fn codes_match_trace_table() {
        use rubic_trace::codes;
        assert_eq!(
            AbortReason::ReadValidation.code(),
            codes::ABORT_READ_VALIDATION
        );
        assert_eq!(AbortReason::LockBusy.code(), codes::ABORT_LOCK_BUSY);
        assert_eq!(AbortReason::CmKill.code(), codes::ABORT_CM_KILL);
        assert_eq!(AbortReason::Chaos.code(), codes::ABORT_CHAOS);
        assert_eq!(AbortReason::Explicit.code(), codes::ABORT_EXPLICIT);
        assert_eq!(
            AbortReason::SnapshotStale.code(),
            codes::ABORT_SNAPSHOT_STALE
        );
        assert_eq!(AbortReason::COUNT, codes::ABORT_REASONS);
        for reason in AbortReason::ALL {
            assert_eq!(reason.name(), codes::abort_name(reason.code()));
        }
    }
}
