//! STM torture tests: serializability anomalies, reclamation soundness,
//! and commit-storm consistency under real threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rubic_stm::{Stm, TVar};

/// Write skew must be impossible: two transactions that each read the
/// other's written variable cannot both commit on overlapping state.
/// The classic example: the invariant `x + y >= 0` with two withdrawals
/// that are each individually safe.
#[test]
fn no_write_skew() {
    for _ in 0..200 {
        let stm = Stm::default();
        let x = Arc::new(TVar::new(50i64));
        let y = Arc::new(TVar::new(50i64));
        let t1 = {
            let stm = stm.clone();
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            std::thread::spawn(move || {
                stm.atomically(|tx| {
                    let total = tx.read(&x)? + tx.read(&y)?;
                    if total >= 100 {
                        // Withdraw 100 from x: safe if nothing else moved.
                        let vx = tx.read(&x)?;
                        tx.write(&x, vx - 100)?;
                    }
                    Ok(())
                });
            })
        };
        let t2 = {
            let stm = stm.clone();
            let x = Arc::clone(&x);
            let y = Arc::clone(&y);
            std::thread::spawn(move || {
                stm.atomically(|tx| {
                    let total = tx.read(&x)? + tx.read(&y)?;
                    if total >= 100 {
                        let vy = tx.read(&y)?;
                        tx.write(&y, vy - 100)?;
                    }
                    Ok(())
                });
            })
        };
        t1.join().unwrap();
        t2.join().unwrap();
        let total = x.snapshot() + y.snapshot();
        assert!(
            total >= 0,
            "write skew: both withdrawals committed (x={}, y={})",
            x.snapshot(),
            y.snapshot()
        );
    }
}

/// Lost-update torture at higher thread counts and a hot single cell.
#[test]
fn hot_cell_no_lost_updates() {
    let stm = Stm::default();
    let cell = Arc::new(TVar::new(0u64));
    let threads = 8;
    let per = 400;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let stm = stm.clone();
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for _ in 0..per {
                    stm.atomically(|tx| tx.modify(&cell, |v| v + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.snapshot(), threads * per);
}

/// Epoch reclamation: a churn of commits on `Arc`-tracked values must
/// eventually release every superseded snapshot.
#[test]
fn superseded_snapshots_are_reclaimed() {
    let tracker = Arc::new(());
    {
        let stm = Stm::default();
        let v: TVar<Arc<()>> = TVar::new(Arc::clone(&tracker));
        for _ in 0..5_000 {
            let fresh = Arc::clone(&tracker);
            stm.atomically(|tx| tx.write(&v, Arc::clone(&fresh)));
        }
        // All superseded snapshots are retired; force epoch advancement
        // by pinning repeatedly from this thread.
        for _ in 0..2048 {
            crossbeam_epoch::pin().flush();
        }
        let live = Arc::strong_count(&tracker);
        assert!(
            live < 1000,
            "epoch GC retired too little: {live} snapshots still live"
        );
        drop(v);
    }
    for _ in 0..2048 {
        crossbeam_epoch::pin().flush();
    }
    // Everything except our handle is gone (allow a small epoch lag).
    assert!(
        Arc::strong_count(&tracker) <= 4,
        "leak: {} refs remain",
        Arc::strong_count(&tracker)
    );
}

/// A storm of small commits against concurrent multi-variable readers:
/// every reader snapshot must satisfy the writers' invariant (all
/// elements of the vector carry the same generation number).
#[test]
fn commit_storm_readers_see_generations() {
    let stm = Stm::default();
    let cells: Arc<Vec<TVar<u64>>> = Arc::new((0..8).map(|_| TVar::new(0)).collect());
    let stop = Arc::new(AtomicU64::new(0));

    let writer = {
        let stm = stm.clone();
        let cells = Arc::clone(&cells);
        std::thread::spawn(move || {
            for generation in 1..=800u64 {
                stm.atomically(|tx| {
                    for c in cells.iter() {
                        tx.write(c, generation)?;
                    }
                    Ok(())
                });
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stm = stm.clone();
            let cells = Arc::clone(&cells);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_gen = 0u64;
                while stop.load(Ordering::Acquire) == 0 {
                    let snapshot: Vec<u64> =
                        stm.atomically(|tx| cells.iter().map(|c| tx.read(c)).collect());
                    assert!(
                        snapshot.windows(2).all(|w| w[0] == w[1]),
                        "torn generation: {snapshot:?}"
                    );
                    assert!(snapshot[0] >= last_gen, "time went backwards");
                    last_gen = snapshot[0];
                }
            })
        })
        .collect();
    writer.join().unwrap();
    stop.store(1, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(cells[0].snapshot(), 800);
}

/// Large transactions: hundreds of reads and writes in one transaction
/// commit atomically and scale without pathological behaviour.
#[test]
fn wide_transactions() {
    let stm = Stm::default();
    let cells: Vec<TVar<u64>> = (0..512).map(|_| TVar::new(1)).collect();
    let sum = stm.atomically(|tx| {
        let mut s = 0;
        for c in &cells {
            s += tx.read(c)?;
        }
        for c in &cells {
            tx.modify(c, |v| v * 2)?;
        }
        Ok(s)
    });
    assert_eq!(sum, 512);
    assert!(cells.iter().all(|c| c.snapshot() == 2));
    // One commit, many ops.
    assert_eq!(stm.stats().commits(), 1);
    assert_eq!(stm.stats().writes(), 512); // one write per cell
    assert_eq!(stm.stats().reads(), 1024); // sum loop + modify's reads
}

/// Interleaved contention across disjoint pairs: threads hammer
/// adjacent pairs in a ring; the ring total is invariant.
#[test]
fn ring_transfers_conserve_total() {
    const N: usize = 16;
    let stm = Stm::default();
    let ring: Arc<Vec<TVar<i64>>> = Arc::new((0..N).map(|_| TVar::new(64)).collect());
    let handles: Vec<_> = (0..4usize)
        .map(|t| {
            let stm = stm.clone();
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..2_000usize {
                    let a = (t * 4 + i) % N;
                    let b = (a + 1) % N;
                    stm.atomically(|tx| {
                        let va = tx.read(&ring[a])?;
                        let vb = tx.read(&ring[b])?;
                        tx.write(&ring[a], va - 1)?;
                        tx.write(&ring[b], vb + 1)?;
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total: i64 = ring.iter().map(TVar::snapshot).sum();
    assert_eq!(total, 64 * N as i64);
}

/// Abort statistics actually move under contention (sanity that the
/// conflict path is exercised by these tests at all).
#[test]
fn contention_produces_aborts() {
    let stm = Stm::default();
    let cell = Arc::new(TVar::new(0u64));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let stm = stm.clone();
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for _ in 0..500 {
                    stm.atomically(|tx| {
                        let v = tx.read(&cell)?;
                        // Lengthen the window so overlap is likely.
                        std::hint::black_box((0..50u64).sum::<u64>());
                        tx.write(&cell, v + 1)
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.snapshot(), 2000);
    // On a single-core host preemption still interleaves; just assert
    // the counter plumbing works (zero aborts is possible but then the
    // commit count must be exact).
    assert_eq!(stm.stats().commits(), 2000);
}
