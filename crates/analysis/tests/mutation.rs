//! Mutation self-test: every fixture under `tests/fixtures/bad/` seeds
//! a known violation, and the analyzer must catch each one with the
//! right rule ID at the right line. This is the proof that the passes
//! actually detect what they claim to — a pass that silently matched
//! nothing would sail through the workspace-clean gate.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use rubic_analyze::{lexer, manifest, passes, report, tree};

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/bad")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs the production-file passes (R1–R5 + A1) on one fixture as if it
/// lived at `rel` in the tree, returning (rule, line) verdicts.
fn production_verdicts(rel: &str, src: &str) -> BTreeSet<(String, u32)> {
    let lexed = lexer::lex(src);
    let trees = tree::parse(&lexed.tokens);
    let mut stats = report::Stats::default();
    let mut out = Vec::new();
    let rel = PathBuf::from(rel);
    passes::lexical::check_file(&rel, &lexed, &mut stats, &mut out);
    passes::purity::check_file(&rel, &lexed, &trees, &mut stats, &mut out);
    out.iter()
        .map(|f| (f.rule.id().to_string(), f.line))
        .collect()
}

fn ids(v: &BTreeSet<(String, u32)>) -> BTreeSet<(&str, u32)> {
    v.iter().map(|(r, l)| (r.as_str(), *l)).collect()
}

#[test]
fn effectful_txn_caught() {
    let v = production_verdicts("crates/x/src/lib.rs", &fixture("effectful_txn.rs"));
    // println! and the captured-state mutation in the closure, plus
    // thread::sleep in the one-hop Transaction-taking helper — which
    // is also a direct `std::thread` use, so R1 fires there too.
    assert_eq!(
        ids(&v),
        BTreeSet::from([("A1", 8), ("A1", 9), ("A1", 15), ("R1", 15)]),
        "{v:?}"
    );
}

#[test]
fn typo_feature_caught() {
    let m = manifest::parse(&fixture("typo_feature/Cargo.toml"));
    assert_eq!(m.name.as_deref(), Some("typo-feature-fixture"));
    let lexed = lexer::lex(&fixture("typo_feature/src/lib.rs"));
    let trees = tree::parse(&lexed.tokens);
    let mut stats = report::Stats::default();
    let mut out = Vec::new();
    passes::features::check_file(
        &PathBuf::from("crates/x/src/lib.rs"),
        &trees,
        &m.features,
        "typo-feature-fixture",
        &mut stats,
        &mut out,
    );
    let v: BTreeSet<(String, u32)> = out
        .iter()
        .map(|f| (f.rule.id().to_string(), f.line))
        .collect();
    // The typo'd feature gate and the typo'd custom cfg; the declared
    // feature, the implicit optional-dep feature, and the built-in
    // bare cfgs all pass.
    assert_eq!(ids(&v), BTreeSet::from([("A2", 6), ("A2", 9)]), "{v:?}");
}

#[test]
fn undecoded_event_caught() {
    let event_src = fixture("undecoded_event/event.rs");
    let readme_src = fixture("undecoded_event/README.md");
    let mut stats = report::Stats::default();
    let mut out = Vec::new();
    passes::schema::check(
        &passes::schema::SchemaInput {
            event_rs_rel: Path::new("event.rs"),
            event_rs_src: &event_src,
            readme_rel: Path::new("README.md"),
            readme_src: &readme_src,
        },
        &mut stats,
        &mut out,
    );
    assert_eq!(stats.event_kinds, 3);
    let msgs: Vec<String> = out.iter().map(ToString::to_string).collect();
    assert!(out.iter().all(|f| f.rule.id() == "A3"), "{msgs:?}");
    // `ALL` is both one short in declared length and missing `Gamma`,
    // both anchored at the `ALL` declaration.
    assert!(
        msgs.iter()
            .any(|m| m.contains("event.rs:19") && m.contains("declared `[EventKind; 2]`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("event.rs:19") && m.contains("`Gamma` is missing from the `ALL`")),
        "{msgs:?}"
    );
    // No doc-table row for the new variant (anchored at the variant).
    assert!(
        msgs.iter().any(|m| m.contains("event.rs:15")
            && m.contains("no row in the `EventKind` payload doc table")),
        "{msgs:?}"
    );
    // README copy: drifted `b` cell for `beta`, no row for `gamma`.
    assert!(
        msgs.iter()
            .any(|m| m.contains("README.md:9") && m.contains("`b` column")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("gamma") && m.contains("no row in the README")),
        "{msgs:?}"
    );
    assert_eq!(out.len(), 5, "{msgs:?}");
}

#[test]
fn unjustified_seqcst_caught() {
    let v = production_verdicts(
        "crates/runtime/src/lib.rs",
        &fixture("unjustified_seqcst.rs"),
    );
    assert_eq!(
        ids(&v),
        BTreeSet::from([("R2", 16), ("R2", 17), ("R5", 18)]),
        "{v:?}"
    );
}

#[test]
fn string_unsafe_caught_exactly_once() {
    let v = production_verdicts("crates/stm/src/lib.rs", &fixture("string_unsafe.rs"));
    // The real unsafe block fires; the string mention must not.
    assert_eq!(ids(&v), BTreeSet::from([("R3", 9)]), "{v:?}");
}

#[test]
fn empty_escape_caught() {
    let v = production_verdicts("crates/x/src/lib.rs", &fixture("empty_escape.rs"));
    // E1 for the empty escape, and the A1 it failed to suppress.
    assert_eq!(ids(&v), BTreeSet::from([("E1", 7), ("A1", 8)]), "{v:?}");
}

/// The bad fixtures must be invisible to the real tree walks — the
/// workspace-clean gate only means something if these seeded
/// violations are excluded by directory policy, not by accident.
#[test]
fn fixtures_excluded_from_walks() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let files = rubic_analyze::production_files(root);
    assert!(
        files
            .iter()
            .all(|f| !f.components().any(|c| c.as_os_str() == "fixtures")),
        "fixtures leaked into the production walk"
    );
}
