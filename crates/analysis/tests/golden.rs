//! Golden-file tests for the lexer: each `tests/fixtures/lexer/*.rs`
//! corpus has a pinned token dump (`*.tokens`) and comment map
//! (`*.comments`). Any lexer change that shifts how raw strings,
//! nested block comments, char-vs-lifetime quotes, or numeric literals
//! tokenize shows up as a readable diff here.
//!
//! To regenerate after an intentional change:
//! `UPDATE_GOLDEN=1 cargo test -p rubic-analyze --test golden`

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use rubic_analyze::lexer::lex;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lexer")
}

/// One token per line: `<line>\t<kind>\t<text escaped>`.
fn render_tokens(src: &str) -> String {
    let lexed = lex(src);
    let mut out = String::new();
    for t in &lexed.tokens {
        let _ = writeln!(out, "{}\t{:?}\t{}", t.line, t.kind, t.text.escape_debug());
    }
    out
}

/// One comment-map entry per line: `<line>\t<comment escaped>`.
fn render_comments(src: &str) -> String {
    let lexed = lex(src);
    let mut out = String::new();
    for (line, text) in &lexed.comments {
        let _ = writeln!(out, "{line}\t{}", text.escape_debug());
    }
    out
}

fn check_golden(name: &str, rendered: &str) {
    let path = fixture_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, rendered).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, want,
        "lexer output drifted from {name}; run with UPDATE_GOLDEN=1 if intentional"
    );
}

#[test]
fn edge_cases_tokens_match_golden() {
    let src = std::fs::read_to_string(fixture_dir().join("edge_cases.rs")).unwrap();
    check_golden("edge_cases.tokens", &render_tokens(&src));
}

#[test]
fn edge_cases_comments_match_golden() {
    let src = std::fs::read_to_string(fixture_dir().join("edge_cases.rs")).unwrap();
    check_golden("edge_cases.comments", &render_comments(&src));
}

/// Spot checks that the golden corpus actually covers the claimed edge
/// cases — so the golden files can't silently pin a degenerate stream.
#[test]
fn corpus_covers_the_edge_cases() {
    let src = std::fs::read_to_string(fixture_dir().join("edge_cases.rs")).unwrap();
    let lexed = lex(&src);
    use rubic_analyze::lexer::TokKind;
    let has = |kind: TokKind, text: &str| {
        lexed
            .tokens
            .iter()
            .any(|t| t.kind == kind && t.text == text)
    };

    // Raw strings keep their content, quotes and hashes stripped.
    assert!(has(TokKind::Str, "raw \"quoted\" with # inside"));
    assert!(has(TokKind::Str, "outer r#\"inner\"# raw"));
    assert!(has(TokKind::Str, "raw byte \"string\""));
    // Char literals vs lifetimes.
    assert!(
        has(TokKind::Char, "'a'") || has(TokKind::Char, "a"),
        "char literal"
    );
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Lifetime && t.text.contains("static")));
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Lifetime && t.text.contains("outer")));
    // `S<'a>` must lex `'a` as a lifetime, not open a char literal.
    assert!(
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count()
            >= 4
    );
    // Numbers including float exponents stay single tokens.
    assert!(has(TokKind::Num, "1.0e-3"));
    assert!(has(TokKind::Num, "1e10"));
    assert!(has(TokKind::Num, "0xFF"));
    // `1..2`: the dots are punct, not part of the number.
    assert!(has(TokKind::Num, "1") && has(TokKind::Num, "2"));
    assert!(has(TokKind::Punct, "..=") || has(TokKind::Punct, ".."));
    // Raw identifier and compound assignment.
    assert!(
        lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.contains("fn") && t.text.contains('#'))
            || has(TokKind::Ident, "r#fn")
    );
    assert!(has(TokKind::Punct, "<<="));
    // The nested block comment landed in the comment map, once.
    assert!(lexed
        .comments
        .values()
        .any(|c| c.contains("nested") && c.contains("still one comment")));
}
