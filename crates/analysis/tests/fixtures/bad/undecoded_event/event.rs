//! Seeded violation: `Gamma` was added to the enum but never wired
//! through. Expected A3 findings: `ALL` declared length stale, `Gamma`
//! missing from `ALL` (so `from_u8` drops it), no doc-table row — and
//! the README copy (README.md next to this file) has a drifted `b`
//! cell for `beta` plus no row for `gamma`.

/// | kind | code | a | b | c |
/// |---|---|---|---|---|
/// | `Alpha` | 0 | start ns | 0 | 0 |
/// | `Beta` | abort reason | hold ns | `reads << 32 \| writes` | attempts |
#[derive(Clone, Copy)]
pub enum EventKind {
    Alpha = 0,
    Beta = 1,
    Gamma = 2,
}

impl EventKind {
    pub const ALL: [EventKind; 2] = [EventKind::Alpha, EventKind::Beta];

    pub fn from_u8(k: u8) -> Option<EventKind> {
        Self::ALL.get(k as usize).copied()
    }

    pub fn name(self) -> &'static str {
        match self {
            EventKind::Alpha => "alpha",
            EventKind::Beta => "beta",
            EventKind::Gamma => "gamma",
        }
    }
}
