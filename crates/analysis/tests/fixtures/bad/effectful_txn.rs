//! Seeded violation: irrevocable effects inside retry-able bodies.
//! Expected: A1 at lines 8, 9, 15 (and nowhere else).

use rubic_stm::{Stm, Transaction, TxResult};

fn hot_loop(stm: &Stm, v: &TVar<u64>, total: &mut u64) {
    stm.atomically(|tx| {
        println!("attempt"); // line 8: duplicates on every retry
        *total += 1; // line 9: captured non-TVar state
        tx.modify(v, |x| x + 1)
    });
}

fn helper(tx: &mut Transaction, v: &TVar<u64>) -> TxResult<()> {
    std::thread::sleep(std::time::Duration::from_millis(1)); // line 15
    tx.write(v, 7)
}
