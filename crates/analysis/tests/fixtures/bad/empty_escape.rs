//! Seeded violation: an escape that silences without arguing. The
//! empty `txn: allow-effect()` is itself a finding (E1 at line 7) and
//! does NOT suppress the effect below it (A1 at line 8).

pub fn drain(stm: &Stm, v: &TVar<u64>) {
    stm.atomically(|tx| {
        // txn: allow-effect()
        eprintln!("draining");
        tx.modify(v, |x| x - 1)
    });
}
