//! Seeded violation: extreme memory orderings and a downgraded fence
//! with no justification comment anywhere nearby. Expected: R2 at
//! lines 16 and 17, R5 at line 18.
//!
//! (This header deliberately avoids the justification marker spelling,
//! which would suppress the findings through the comment window.)
//!
//!
//!
//!
//!
//! -- window spacer: the sites below are more than COMMENT_WINDOW
//! lines from this header --

pub fn publish(flag: &AtomicBool, n: &AtomicU64) {
    n.fetch_add(1, Ordering::Relaxed);
    flag.store(true, Ordering::SeqCst);
    fence(Ordering::AcqRel);
}
