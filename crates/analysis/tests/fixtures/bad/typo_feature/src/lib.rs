//! Seeded violation: typo'd feature gate and typo'd custom cfg.
//! Expected: A2 at lines 6 and 9; lines 12–15 are clean.

// `tracing` is not declared (the feature is `trace`): the whole block
// is silently dead-coded forever.
#[cfg(feature = "tracing")]
pub fn emit() {}

#[cfg(rubic_chek)]
pub fn checked_only() {}

#[cfg(all(feature = "trace", test))]
pub fn fine() {}

#[cfg(feature = "serde")]
pub fn also_fine_implicit_optional_dep() {}
