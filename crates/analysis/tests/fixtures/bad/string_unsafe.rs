//! Seeded violation: one *real* `unsafe` block with no SAFETY comment
//! (line 9), while line 7 only mentions unsafe inside a string. The
//! line-based lint's failure mode was firing on both; the token-based
//! rule must report exactly one R3, at line 9.

pub fn read_raw(ptr: *const u64) -> u64 {
    let label = "this string says unsafe { } and must not fire";
    let _ = label;
    unsafe { *ptr }
}
