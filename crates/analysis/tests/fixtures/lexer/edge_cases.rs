// Lexer edge-case corpus. Each construct here has a known-correct
// token stream pinned in edge_cases.tokens.
/* block comment */
/* nested /* block /* comments */ */ still one comment */
fn main() {
    let s = "plain \"escaped\" string";
    let r = r#"raw "quoted" with # inside"#;
    let rr = r##"outer r#"inner"# raw"##;
    let b = b"byte string";
    let br = br#"raw byte "string""#;
    let c = 'a';
    let esc = '\n';
    let quote = '\'';
    let byte_char = b'x';
    let lt: &'static str = "s";
    'outer: loop {
        break 'outer;
    }
    let n = 1.5 + 1e10 + 0xFF + 0b101 + 1.0e-3;
    let range = 1..2;
    let inclusive = 0..=9;
    let mut acc = 0u64;
    acc <<= 2;
    acc >>= 1;
    let r#fn = 7;
    let path = std::mem::size_of::<Vec<u8>>();
}
struct S<'a> {
    x: &'a u8,
}
