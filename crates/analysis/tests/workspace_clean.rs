//! Regression gate: the real workspace analyzes clean. Any future
//! change that introduces an impure transaction body, a typo'd feature
//! gate, or trace-schema drift fails this test (and `cargo xtask
//! analyze`, and CI).

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn workspace_analyzes_clean() {
    let rep = rubic_analyze::analyze(&workspace_root());
    let rendered: Vec<String> = rep.findings.iter().map(ToString::to_string).collect();
    assert!(
        rep.findings.is_empty(),
        "workspace has analyzer findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn workspace_stats_are_plausible() {
    let rep = rubic_analyze::analyze(&workspace_root());
    // The workspace has hundreds of Rust files, a tracing schema with
    // 20 event kinds, and dozens of audited ordering sites; zeros here
    // mean a walk or pass silently matched nothing.
    assert!(rep.stats.files > 50, "files: {}", rep.stats.files);
    assert!(
        rep.stats.txn_contexts > 20,
        "txn_contexts: {}",
        rep.stats.txn_contexts
    );
    assert!(
        rep.stats.cfg_sites > 50,
        "cfg_sites: {}",
        rep.stats.cfg_sites
    );
    assert_eq!(
        rep.stats.event_kinds, 20,
        "event_kinds: {}",
        rep.stats.event_kinds
    );
    assert!(
        rep.stats.ordering_sites > 20,
        "ordering_sites: {}",
        rep.stats.ordering_sites
    );
}
