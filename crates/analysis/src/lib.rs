//! `rubic-analyze` — token-level static analysis for the RUBIC
//! workspace. Zero dependencies, offline-buildable: a hand-rolled
//! lexer ([`lexer`]) feeds a delimiter tree ([`tree`]), and the passes
//! ([`passes`]) walk those instead of raw line text, so strings and
//! comments can never false-positive and real sites can never hide in
//! odd formatting.
//!
//! Passes:
//! - **A1** transaction purity — no irrevocable effects inside
//!   retry-able transaction bodies ([`passes::purity`]).
//! - **A2** feature-gate integrity — every `cfg(feature = "…")` names
//!   a declared feature ([`passes::features`]).
//! - **A3** trace-schema consistency — `EventKind` agrees with its
//!   decode table, doc table, and the README ([`passes::schema`]).
//! - **R1–R5** the historical `xtask lint` rules, re-hosted on the
//!   token stream ([`passes::lexical`]).
//!
//! Entry points: [`analyze`] (everything, what `cargo xtask analyze`
//! runs) and [`analyze_lexical`] (R1–R5 only, what the legacy
//! `cargo xtask lint` shim runs).

pub mod lexer;
pub mod manifest;
pub mod passes;
pub mod report;
pub mod tree;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use report::Report;

/// Directory names never descended into. `fixtures` holds deliberately
/// broken inputs for the mutation self-test; `target` and `vendor` are
/// not this workspace's code.
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", "vendor"];

/// Directory names that hold test-harness (non-production) code, for
/// the production walk (A1 + R1–R5 scan the same set the historical
/// lint did).
const NON_PRODUCTION_DIRS: [&str; 3] = ["tests", "benches", "examples"];

/// Runs every pass over the workspace at `root`. Finding paths are
/// root-relative; the report comes back sorted.
#[must_use]
pub fn analyze(root: &Path) -> Report {
    let mut rep = Report::default();
    let mut scanned: BTreeSet<PathBuf> = BTreeSet::new();

    // A1 + R1–R5 over production sources (crate `src` trees + the
    // suite library — the same set `xtask lint` always scanned).
    for rel in production_files(root) {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let lexed = lexer::lex(&src);
        let trees = tree::parse(&lexed.tokens);
        passes::lexical::check_file(&rel, &lexed, &mut rep.stats, &mut rep.findings);
        passes::purity::check_file(&rel, &lexed, &trees, &mut rep.stats, &mut rep.findings);
        scanned.insert(rel);
    }

    // A2 over every package's full source set (tests and examples gate
    // on features too, and a typo there dead-codes them just as
    // silently).
    for pkg_dir in package_dirs(root) {
        let manifest = manifest::read(&root.join(&pkg_dir).join("Cargo.toml"));
        let pkg = manifest
            .name
            .clone()
            .unwrap_or_else(|| pkg_dir.display().to_string());
        for rel in package_files(root, &pkg_dir) {
            let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
                continue;
            };
            let lexed = lexer::lex(&src);
            let trees = tree::parse(&lexed.tokens);
            passes::features::check_file(
                &rel,
                &trees,
                &manifest.features,
                &pkg,
                &mut rep.stats,
                &mut rep.findings,
            );
            scanned.insert(rel);
        }
    }

    // A3 over the trace schema's two surfaces.
    let event_rs_rel = PathBuf::from("crates/trace/src/event.rs");
    let readme_rel = PathBuf::from("README.md");
    if let (Ok(event_src), Ok(readme_src)) = (
        std::fs::read_to_string(root.join(&event_rs_rel)),
        std::fs::read_to_string(root.join(&readme_rel)),
    ) {
        passes::schema::check(
            &passes::schema::SchemaInput {
                event_rs_rel: &event_rs_rel,
                event_rs_src: &event_src,
                readme_rel: &readme_rel,
                readme_src: &readme_src,
            },
            &mut rep.stats,
            &mut rep.findings,
        );
        scanned.insert(event_rs_rel);
    }

    rep.stats.files = scanned.len();
    rep.sort();
    rep
}

/// Runs only the re-hosted R1–R5 rules (the `xtask lint` surface).
#[must_use]
pub fn analyze_lexical(root: &Path) -> Report {
    let mut rep = Report::default();
    let files = production_files(root);
    rep.stats.files = files.len();
    for rel in files {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let lexed = lexer::lex(&src);
        passes::lexical::check_file(&rel, &lexed, &mut rep.stats, &mut rep.findings);
    }
    rep.sort();
    rep
}

/// Production `.rs` files (root-relative, sorted): the `crates` and
/// `suite` trees minus test/bench/example/fixture directories.
#[must_use]
pub fn production_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for dir in ["crates", "suite"] {
        collect_rs(root, &PathBuf::from(dir), true, &mut out);
    }
    out.sort();
    out
}

/// Package directories (root-relative): each `crates/*` with a
/// manifest, `xtask`, and the workspace root itself (the `rubic-suite`
/// package: `suite/`, `tests/`, `examples/`).
fn package_dirs(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let p = e.path();
            if p.join("Cargo.toml").is_file() {
                out.push(PathBuf::from("crates").join(e.file_name()));
            }
        }
    }
    if root.join("xtask/Cargo.toml").is_file() {
        out.push(PathBuf::from("xtask"));
    }
    if root.join("Cargo.toml").is_file() {
        out.push(PathBuf::new());
    }
    out.sort();
    out
}

/// All `.rs` files belonging to one package (root-relative, sorted).
/// For the workspace-root package only its own source dirs are walked,
/// not the whole tree (member crates are their own packages).
fn package_files(root: &Path, pkg_dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if pkg_dir.as_os_str().is_empty() {
        for dir in ["suite", "tests", "examples"] {
            collect_rs(root, &PathBuf::from(dir), false, &mut out);
        }
    } else {
        collect_rs(root, pkg_dir, false, &mut out);
    }
    out.sort();
    out
}

/// Recursive `.rs` collection under `root/rel`. `production` also
/// skips test/bench/example subdirectories (the historical lint's
/// scope); fixtures/target/vendor are always skipped.
fn collect_rs(root: &Path, rel: &Path, production: bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root.join(rel)) else {
        return;
    };
    for e in entries.flatten() {
        let name = e.file_name();
        let name_str = name.to_string_lossy().into_owned();
        let child = rel.join(&name);
        let path = e.path();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name_str.as_str())
                || (production && NON_PRODUCTION_DIRS.contains(&name_str.as_str()))
            {
                continue;
            }
            collect_rs(root, &child, production, out);
        } else if name_str.ends_with(".rs") {
            out.push(child);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn production_walk_skips_tests_and_fixtures() {
        let files = production_files(&workspace_root());
        assert!(files.iter().any(|f| f.ends_with("stm.rs")));
        assert!(files.iter().all(|f| {
            f.components().all(|c| {
                let c = c.as_os_str();
                c != "tests" && c != "benches" && c != "examples" && c != "fixtures"
            })
        }));
    }

    #[test]
    fn package_dirs_cover_crates_xtask_and_root() {
        let dirs = package_dirs(&workspace_root());
        assert!(dirs.iter().any(|d| d.ends_with("crates/stm")));
        assert!(dirs.iter().any(|d| d.as_os_str() == "xtask"));
        assert!(dirs.iter().any(|d| d.as_os_str().is_empty()));
    }
}
