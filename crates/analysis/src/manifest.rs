//! Minimal `Cargo.toml` reader — just enough TOML to answer one
//! question: which feature names may a `cfg(feature = "…")` in this
//! package legally test? That is the `[features]` keys plus the
//! implicit features Cargo derives from optional dependencies.

use std::collections::BTreeSet;
use std::path::Path;

/// The feature-relevant slice of one package manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// `package.name`, if present (workspace-root virtual tables lack it).
    pub name: Option<String>,
    /// Keys of `[features]` plus optional-dependency implicit features.
    pub features: BTreeSet<String>,
}

/// Parses the manifest at `path`. Line-oriented: section headers,
/// `key = value` pairs, and inline-table `optional = true` detection —
/// the subset this workspace's manifests actually use.
#[must_use]
pub fn read(path: &Path) -> Manifest {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Manifest::default();
    };
    parse(&text)
}

/// Section-aware line scan of manifest `text`.
#[must_use]
pub fn parse(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        if section == "package" && key == "name" {
            m.name = Some(value.trim_matches('"').to_string());
        } else if section == "features" {
            m.features.insert(key);
        } else if section.ends_with("dependencies") && value.contains("optional") {
            // `dep = { …, optional = true }`: the dependency name is an
            // implicit feature (Cargo 2021 resolver without `dep:` use).
            if value.contains("optional = true") || value.contains("optional=true") {
                m.features.insert(key);
            }
        }
    }
    m
}

/// Drops a `#` comment — unless the `#` is inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_and_optional_deps() {
        let m = parse(
            r#"
[package]
name = "demo"

[dependencies]
serde = { workspace = true, optional = true }
rand = { workspace = true }

[features]
trace = ["dep:serde"]
mvcc = []

[dev-dependencies]
helper = { path = "x", optional = true }
"#,
        );
        assert_eq!(m.name.as_deref(), Some("demo"));
        let want: BTreeSet<String> = ["trace", "mvcc", "serde", "helper"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(m.features, want);
    }

    #[test]
    fn comments_and_hash_in_strings() {
        let m = parse("[features]\ntrace = [] # enables tracing\n# mvcc = []\n");
        assert!(m.features.contains("trace"));
        assert!(!m.features.contains("mvcc"));
        assert_eq!(strip_toml_comment(r#"x = "a#b""#), r#"x = "a#b""#);
    }
}
