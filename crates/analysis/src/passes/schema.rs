//! A3 — trace-schema consistency. `rubic-trace`'s `EventKind` is the
//! contract between emitters, the binary decoder, and every exporter;
//! a variant added without updating the decode table (`ALL`), the
//! payload doc table, or the README event table ships half-decoded:
//! `from_u8` returns `None` for it (the ring drops it as "corrupt") and
//! operators have no schema row to read dumps with. This pass parses
//! the enum and cross-checks all four surfaces, including cell-level
//! drift between the rustdoc payload table and the README copy.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::{lex, LexOut, TokKind};
use crate::report::{Finding, Rule, Stats};
use crate::tree::{parse, Group, Tree};

/// The inputs, as text, so the mutation self-test can feed fixtures.
pub struct SchemaInput<'a> {
    pub event_rs_rel: &'a Path,
    pub event_rs_src: &'a str,
    pub readme_rel: &'a Path,
    pub readme_src: &'a str,
}

/// The table header that anchors both payload tables.
const TABLE_HEADER: [&str; 5] = ["kind", "code", "a", "b", "c"];

/// One markdown table row: the payload cells after the key column,
/// normalized, plus the source line.
#[derive(Debug)]
struct Row {
    cells: Vec<String>,
    line: u32,
}

pub fn check(input: &SchemaInput<'_>, stats: &mut Stats, out: &mut Vec<Finding>) {
    let lexed = lex(input.event_rs_src);
    let trees = parse(&lexed.tokens);

    let Some((variants, enum_line)) = find_enum_variants(&trees, "EventKind") else {
        out.push(Finding {
            file: input.event_rs_rel.to_path_buf(),
            line: 1,
            rule: Rule::A3,
            message: "no `enum EventKind` found to cross-check".into(),
        });
        return;
    };
    stats.event_kinds += variants.len();

    // Discriminants, where written, must be their declaration index —
    // exported data freezes them.
    for (idx, (name, disc, line)) in variants.iter().enumerate() {
        if disc.is_some_and(|d| d != idx as u64) {
            out.push(Finding {
                file: input.event_rs_rel.to_path_buf(),
                line: *line,
                rule: Rule::A3,
                message: format!(
                    "variant `{name}` has discriminant {} but declaration index {idx} — \
                     `ALL`-based decode assumes they agree",
                    disc.unwrap_or_default()
                ),
            });
        }
    }

    check_all_array(input, &trees, &variants, out);
    let names = check_name_match(input, &trees, &variants, enum_line, out);
    let doc_rows = doc_table_rows(&lexed);
    let readme_rows = readme_table_rows(input.readme_src);

    for (variant, _, line) in &variants {
        let doc = doc_rows.get(variant);
        if doc.is_none() {
            out.push(Finding {
                file: input.event_rs_rel.to_path_buf(),
                line: *line,
                rule: Rule::A3,
                message: format!(
                    "variant `{variant}` has no row in the `EventKind` payload doc table"
                ),
            });
        }
        let Some(name) = names.get(variant) else {
            continue; // missing name() arm already reported
        };
        let Some(readme) = readme_rows.get(name) else {
            out.push(Finding {
                file: input.readme_rel.to_path_buf(),
                line: 1,
                rule: Rule::A3,
                message: format!(
                    "event kind `{name}` (variant `{variant}`) has no row in the README \
                     event-schema table"
                ),
            });
            continue;
        };
        // Cell-level drift between the two copies of the schema.
        if let Some(doc) = doc {
            for (i, (d, r)) in doc.cells.iter().zip(readme.cells.iter()).enumerate() {
                if d != r {
                    out.push(Finding {
                        file: input.readme_rel.to_path_buf(),
                        line: readme.line,
                        rule: Rule::A3,
                        message: format!(
                            "README row for `{name}` drifted from the `EventKind` doc table in \
                             the `{}` column: doc says \"{d}\", README says \"{r}\"",
                            TABLE_HEADER.get(i + 1).unwrap_or(&"?")
                        ),
                    });
                }
            }
            if doc.cells.len() != readme.cells.len() {
                out.push(Finding {
                    file: input.readme_rel.to_path_buf(),
                    line: readme.line,
                    rule: Rule::A3,
                    message: format!(
                        "README row for `{name}` has {} payload cells, doc table has {}",
                        readme.cells.len(),
                        doc.cells.len()
                    ),
                });
            }
        }
    }
}

/// (variant name, explicit discriminant, line) in declaration order.
type Variant = (String, Option<u64>, u32);

/// Finds `enum <name> { … }` and returns its variants plus the enum's line.
fn find_enum_variants(trees: &[Tree], name: &str) -> Option<(Vec<Variant>, u32)> {
    for (i, t) in trees.iter().enumerate() {
        if t.is_ident("enum") && trees.get(i + 1).is_some_and(|n| n.is_ident(name)) {
            let body = trees
                .get(i + 2)
                .and_then(Tree::group)
                .filter(|g| g.delim == '{')?;
            return Some((enum_variants(body), t.line()));
        }
        if let Tree::Group(g) = t {
            if let Some(found) = find_enum_variants(&g.children, name) {
                return Some(found);
            }
        }
    }
    None
}

fn enum_variants(body: &Group) -> Vec<(String, Option<u64>, u32)> {
    let mut out = Vec::new();
    let kids = &body.children;
    let mut i = 0usize;
    while i < kids.len() {
        // Skip attributes.
        if kids[i].is_punct("#") {
            i += 2; // `#` + `[…]` group
            continue;
        }
        if let Some(leaf) = kids[i].leaf().filter(|l| l.kind == TokKind::Ident) {
            let mut disc = None;
            if kids.get(i + 1).is_some_and(|n| n.is_punct("=")) {
                disc = kids
                    .get(i + 2)
                    .and_then(Tree::leaf)
                    .filter(|l| l.kind == TokKind::Num)
                    .and_then(|l| l.text.parse().ok());
            }
            out.push((leaf.text.clone(), disc, leaf.line));
            // Skip to the comma.
            while i < kids.len() && !kids[i].is_punct(",") {
                i += 1;
            }
        }
        i += 1;
    }
    out
}

/// Checks `ALL`: declared length and entry list against the variants.
fn check_all_array(
    input: &SchemaInput<'_>,
    trees: &[Tree],
    variants: &[(String, Option<u64>, u32)],
    out: &mut Vec<Finding>,
) {
    let Some((ty, value, line)) = find_all_const(trees) else {
        out.push(Finding {
            file: input.event_rs_rel.to_path_buf(),
            line: 1,
            rule: Rule::A3,
            message: "no `ALL: [EventKind; N]` decode table found".into(),
        });
        return;
    };
    let declared_len: Option<usize> = ty.children.iter().find_map(|t| {
        t.leaf()
            .filter(|l| l.kind == TokKind::Num)
            .and_then(|l| l.text.parse().ok())
    });
    if declared_len.is_some_and(|n| n != variants.len()) {
        out.push(Finding {
            file: input.event_rs_rel.to_path_buf(),
            line,
            rule: Rule::A3,
            message: format!(
                "`ALL` is declared `[EventKind; {}]` but the enum has {} variants — \
                 `from_u8` will silently drop the tail kinds as corrupt slots",
                declared_len.unwrap_or_default(),
                variants.len()
            ),
        });
    }
    // Entries: idents following `::` inside the value group.
    let mut entries = Vec::new();
    let kids = &value.children;
    for (i, t) in kids.iter().enumerate() {
        if t.is_punct("::") {
            if let Some(l) = kids.get(i + 1).and_then(Tree::leaf) {
                if l.kind == TokKind::Ident {
                    entries.push(l.text.clone());
                }
            }
        }
    }
    let names: Vec<&str> = variants.iter().map(|(n, _, _)| n.as_str()).collect();
    if entries != names {
        for n in &names {
            if !entries.iter().any(|e| e == n) {
                out.push(Finding {
                    file: input.event_rs_rel.to_path_buf(),
                    line,
                    rule: Rule::A3,
                    message: format!(
                        "variant `{n}` is missing from the `ALL` decode table — events of \
                         this kind decode to `None` and are dropped as corrupt"
                    ),
                });
            }
        }
        for e in &entries {
            if !names.contains(&e.as_str()) {
                out.push(Finding {
                    file: input.event_rs_rel.to_path_buf(),
                    line,
                    rule: Rule::A3,
                    message: format!("`ALL` names `{e}`, which is not an `EventKind` variant"),
                });
            }
        }
        if entries
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            == entries.len()
            && names.iter().all(|n| entries.iter().any(|e| e == n))
            && entries.iter().all(|e| names.contains(&e.as_str()))
        {
            out.push(Finding {
                file: input.event_rs_rel.to_path_buf(),
                line,
                rule: Rule::A3,
                message: "`ALL` lists every variant but not in declaration order — \
                          `from_u8` indexes by discriminant, so order is the contract"
                    .into(),
            });
        }
    }
}

/// Finds `ALL : [type] = [value]` anywhere in the forest.
fn find_all_const(trees: &[Tree]) -> Option<(&Group, &Group, u32)> {
    for (i, t) in trees.iter().enumerate() {
        if t.is_ident("ALL") && trees.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let ty = trees
                .get(i + 2)
                .and_then(Tree::group)
                .filter(|g| g.delim == '[');
            let value = trees
                .get(i + 4)
                .and_then(Tree::group)
                .filter(|g| g.delim == '[');
            if let (Some(ty), Some(value)) = (ty, value) {
                return Some((ty, value, t.line()));
            }
        }
        if let Tree::Group(g) = t {
            if let Some(found) = find_all_const(&g.children) {
                return Some(found);
            }
        }
    }
    None
}

/// Collects `EventKind::X => "name"` arms; reports variants without
/// one. Returns variant -> exporter name.
fn check_name_match(
    input: &SchemaInput<'_>,
    trees: &[Tree],
    variants: &[(String, Option<u64>, u32)],
    enum_line: u32,
    out: &mut Vec<Finding>,
) -> BTreeMap<String, String> {
    let mut names = BTreeMap::new();
    collect_name_arms(trees, &mut names);
    for (variant, _, _) in variants {
        if !names.contains_key(variant) {
            out.push(Finding {
                file: input.event_rs_rel.to_path_buf(),
                line: enum_line,
                rule: Rule::A3,
                message: format!(
                    "variant `{variant}` has no `EventKind::{variant} => \"…\"` arm in \
                     `name()` — exporters cannot label it"
                ),
            });
        }
    }
    let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
    for (variant, name) in &names {
        if let Some(prev) = seen.insert(name.as_str(), variant.as_str()) {
            out.push(Finding {
                file: input.event_rs_rel.to_path_buf(),
                line: enum_line,
                rule: Rule::A3,
                message: format!(
                    "variants `{prev}` and `{variant}` share the exporter name \"{name}\""
                ),
            });
        }
    }
    names
}

fn collect_name_arms(trees: &[Tree], out: &mut BTreeMap<String, String>) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            collect_name_arms(&g.children, out);
            continue;
        }
        if t.is_ident("EventKind")
            && trees.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && trees.get(i + 3).is_some_and(|n| n.is_punct("=>"))
        {
            let variant = trees.get(i + 2).and_then(Tree::leaf);
            let name = trees
                .get(i + 4)
                .and_then(Tree::leaf)
                .filter(|l| l.kind == TokKind::Str);
            if let (Some(v), Some(n)) = (variant, name) {
                out.insert(v.text.clone(), n.text.clone());
            }
        }
    }
}

/// Payload rows from the enum's doc comments (the `///` table).
fn doc_table_rows(lexed: &LexOut) -> BTreeMap<String, Row> {
    let text: Vec<(u32, String)> = lexed
        .comments
        .iter()
        .map(|(l, t)| (*l, t.trim_start_matches('/').trim().to_string()))
        .collect();
    rows_after_header(text.iter().map(|(l, t)| (*l, t.as_str())))
}

/// Payload rows from the README's event table.
fn readme_table_rows(src: &str) -> BTreeMap<String, Row> {
    rows_after_header(
        src.lines()
            .enumerate()
            .map(|(i, l)| (u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1), l)),
    )
}

/// Scans lines for the `| kind | code | a | b | c |` header, then
/// collects subsequent backtick-keyed rows until the table ends.
fn rows_after_header<'a>(lines: impl Iterator<Item = (u32, &'a str)>) -> BTreeMap<String, Row> {
    let mut out = BTreeMap::new();
    let mut in_table = false;
    for (lineno, line) in lines {
        let trimmed = line.trim();
        if !in_table {
            let cells = split_row(trimmed);
            if cells.len() == TABLE_HEADER.len()
                && cells.iter().zip(TABLE_HEADER).all(|(c, h)| c == h)
            {
                in_table = true;
            }
            continue;
        }
        if !trimmed.starts_with('|') {
            in_table = false;
            continue;
        }
        let cells = split_row(trimmed);
        let Some(first) = cells.first() else {
            continue;
        };
        // Skip the |---|---| separator row.
        if first.chars().all(|c| c == '-' || c == ' ') {
            continue;
        }
        let key = first.trim_matches('`').to_string();
        out.entry(key).or_insert(Row {
            cells: cells[1..].to_vec(),
            line: lineno,
        });
    }
    out
}

/// Splits a markdown row on unescaped `|`, normalizing each cell
/// (trim, collapse inner whitespace, unescape `\|`).
fn split_row(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut chars = line.trim().trim_start_matches('|').chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' if chars.peek() == Some(&'|') => {
                cur.push('|');
                chars.next();
            }
            '|' => {
                cells.push(normalize(&cur));
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        cells.push(normalize(&cur));
    }
    cells
}

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const GOOD: &str = r#"
/// | kind | code | a | b | c |
/// |---|---|---|---|---|
/// | `Alpha` | 0 | x | y | z |
/// | `Beta` | 1 | p \| q | r | s |
pub enum EventKind {
    Alpha = 0,
    Beta = 1,
}
impl EventKind {
    pub const ALL: [EventKind; 2] = [EventKind::Alpha, EventKind::Beta];
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Alpha => "alpha",
            EventKind::Beta => "beta",
        }
    }
}
"#;

    const GOOD_README: &str = "\
| kind | code | a | b | c |
|---|---|---|---|---|
| `alpha` | 0 | x | y | z |
| `beta` | 1 | p \\| q | r | s |
";

    fn run(event_rs: &str, readme: &str) -> Vec<String> {
        let mut stats = Stats::default();
        let mut out = Vec::new();
        check(
            &SchemaInput {
                event_rs_rel: &PathBuf::from("src/event.rs"),
                event_rs_src: event_rs,
                readme_rel: &PathBuf::from("README.md"),
                readme_src: readme,
            },
            &mut stats,
            &mut out,
        );
        out.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn consistent_schema_passes() {
        let v = run(GOOD, GOOD_README);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn missing_all_entry_flagged() {
        let bad = GOOD
            .replace(", EventKind::Beta", "")
            .replace("[EventKind; 2]", "[EventKind; 1]");
        let v = run(&bad, GOOD_README);
        assert!(
            v.iter()
                .any(|f| f.contains("missing from the `ALL`") && f.contains("Beta")),
            "{v:?}"
        );
    }

    #[test]
    fn declared_length_mismatch_flagged() {
        let bad = GOOD.replace("[EventKind; 2]", "[EventKind; 3]");
        let v = run(&bad, GOOD_README);
        assert!(
            v.iter().any(|f| f.contains("declared `[EventKind; 3]`")),
            "{v:?}"
        );
    }

    #[test]
    fn missing_name_arm_flagged() {
        let bad = GOOD.replace("EventKind::Beta => \"beta\",", "");
        let v = run(&bad, GOOD_README);
        assert!(v.iter().any(|f| f.contains("no `EventKind::Beta")), "{v:?}");
    }

    #[test]
    fn missing_doc_and_readme_rows_flagged() {
        let no_doc_row = GOOD.replace("/// | `Beta` | 1 | p \\| q | r | s |\n", "");
        let v = run(&no_doc_row, GOOD_README);
        assert!(
            v.iter()
                .any(|f| f.contains("no row in the `EventKind` payload doc table")),
            "{v:?}"
        );
        let no_readme_row = GOOD_README.replace("| `beta` | 1 | p \\| q | r | s |\n", "");
        let v = run(GOOD, &no_readme_row);
        assert!(
            v.iter().any(|f| f.contains("no row in the README")),
            "{v:?}"
        );
    }

    #[test]
    fn cell_drift_flagged_with_column_name() {
        let drifted = GOOD_README.replace(
            "| `beta` | 1 | p \\| q | r | s |",
            "| `beta` | 1 | p \\| q | r | DRIFT |",
        );
        let v = run(GOOD, &drifted);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("drifted") && v[0].contains("`c` column") && v[0].contains("DRIFT"));
    }

    #[test]
    fn out_of_order_all_flagged() {
        let bad = GOOD.replace(
            "[EventKind::Alpha, EventKind::Beta]",
            "[EventKind::Beta, EventKind::Alpha]",
        );
        let v = run(&bad, GOOD_README);
        assert!(
            v.iter().any(|f| f.contains("not in declaration order")),
            "{v:?}"
        );
    }
}
