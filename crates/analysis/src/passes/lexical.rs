//! R1–R5, re-hosted from `xtask lint`'s line scan onto the token
//! stream. Semantics are unchanged — same rules, same escapes, same
//! justification windows — but string literals and comments can no
//! longer produce false positives, because they are single tokens /
//! comment-map entries rather than raw line text.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{LexOut, Tok, TokKind};
use crate::report::{Finding, Rule, Stats};

/// How far above a site a justification comment may sit (matches the
/// historical lint's window).
pub const COMMENT_WINDOW: u32 = 10;

/// Crates whose `src` trees are exempt from R1/R2/R5: they *implement*
/// the sync facade and the model checker, so they necessarily name the
/// raw primitives and match on orderings.
pub const FACADE_CRATES: [&str; 2] = ["crates/sync", "crates/check"];

/// STM files on the per-access hot path (R4).
pub const HOT_PATH_FILES: [&str; 6] = [
    "crates/stm/src/txn.rs",
    "crates/stm/src/vlock.rs",
    "crates/stm/src/clock.rs",
    "crates/stm/src/tvar.rs",
    "crates/stm/src/index.rs",
    "crates/stm/src/snap.rs",
];

/// True when `rel` starts with the path `prefix` (component-wise).
#[must_use]
pub fn rel_starts_with(rel: &Path, prefix: &str) -> bool {
    let mut comps = rel.components();
    prefix
        .split('/')
        .all(|p| comps.next().is_some_and(|c| c.as_os_str() == p))
}

/// First line of the trailing `#[cfg(test)] mod …` (or
/// `#[cfg(all(test, …))] mod …`), if any; tokens at or after that line
/// are test-harness code and exempt from production rules. An inline
/// `#[cfg(test)]` on a single helper fn does not start the tail — only
/// an attribute whose next item is a `mod` does.
#[must_use]
pub fn test_tail_line(tokens: &[Tok]) -> u32 {
    let is = |i: usize, text: &str| tokens.get(i).is_some_and(|t| t.text == text);
    let mut i = 0usize;
    while i < tokens.len() {
        if is(i, "#") && is(i + 1, "[") && is(i + 2, "cfg") && is(i + 3, "(") {
            let test_attr =
                is(i + 4, "test") || (is(i + 4, "all") && is(i + 5, "(") && is(i + 6, "test"));
            if test_attr {
                // Skip to the attribute's closing `]` (depth-counted
                // from the `[`), then past any further attributes.
                let mut j = i + 1;
                let mut depth = 0i32;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "[" | "(" | "{" => depth += 1,
                        "]" | ")" | "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let mut k = j + 1;
                while is(k, "#") && is(k + 1, "[") {
                    let mut d = 0i32;
                    k += 1;
                    while k < tokens.len() {
                        match tokens[k].text.as_str() {
                            "[" | "(" | "{" => d += 1,
                            "]" | ")" | "}" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                if is(k, "pub") {
                    k += 1;
                }
                if is(k, "mod") {
                    return tokens[i].line;
                }
            }
        }
        i += 1;
    }
    u32::MAX
}

/// True when the comment on `line` itself carries `escape`.
fn escaped_on(lex: &LexOut, line: u32, escape: &str) -> bool {
    lex.comment_on(line).is_some_and(|c| c.contains(escape))
}

/// Runs R1–R5 over one production file's token stream.
pub fn check_file(rel: &Path, lex: &LexOut, stats: &mut Stats, out: &mut Vec<Finding>) {
    let tail = test_tail_line(&lex.tokens);
    let facade_exempt = FACADE_CRATES.iter().any(|c| rel_starts_with(rel, c));
    let hot_path = HOT_PATH_FILES.iter().any(|f| rel_starts_with(rel, f));
    let toks = &lex.tokens;

    // Per-line extreme-ordering presence (R5 must not double-report a
    // line R2 already covers).
    let extreme_lines: BTreeSet<u32> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "SeqCst" || t.text == "Relaxed"))
        .map(|t| t.line)
        .collect();

    // Dedup: one finding per (rule, line).
    let mut seen: BTreeSet<(&'static str, u32)> = BTreeSet::new();
    let mut report = |out: &mut Vec<Finding>, rule: Rule, line: u32, message: &str| {
        if seen.insert((rule.id(), line)) {
            out.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule,
                message: message.to_string(),
            });
        }
    };

    // Counted lines, so stats match the one-site-per-line convention.
    let mut ordering_lines: BTreeSet<u32> = BTreeSet::new();
    let mut unsafe_lines: BTreeSet<u32> = BTreeSet::new(); // lint: allow-unsafe — identifier, not an unsafe block (legacy substring scan)

    let ident = |i: usize, name: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    };
    let punct = |i: usize, p: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    };

    for (i, t) in toks.iter().enumerate() {
        if t.line >= tail {
            break;
        }
        let line = t.line;

        // R1: facade discipline.
        if !facade_exempt && t.kind == TokKind::Ident {
            let std_path = t.text == "std"
                && punct(i + 1, "::")
                && ((ident(i + 2, "sync")
                    && punct(i + 3, "::")
                    && (ident(i + 4, "atomic")
                        || ident(i + 4, "Mutex")
                        || ident(i + 4, "RwLock")
                        || ident(i + 4, "Condvar")))
                    || ident(i + 2, "thread"));
            let pl = t.text == "parking_lot";
            if (std_path || pl) && !escaped_on(lex, line, "lint: allow-std-sync") {
                report(
                    out,
                    Rule::R1,
                    line,
                    "direct sync primitive; import from rubic_sync so `--cfg rubic_check` can \
                     swap in the model checker (or `// lint: allow-std-sync` with a reason)",
                );
            }
        }

        // R2: extreme orderings must be argued.
        if !facade_exempt && t.kind == TokKind::Ident && (t.text == "SeqCst" || t.text == "Relaxed")
        {
            ordering_lines.insert(line);
            if !escaped_on(lex, line, "lint: allow-ordering")
                && !lex.comment_nearby(line, "ordering:", COMMENT_WINDOW)
            {
                report(
                    out,
                    Rule::R2,
                    line,
                    "SeqCst/Relaxed site without a `// ordering:` justification within the \
                     comment window",
                );
            }
        }

        // R3: unsafe needs SAFETY. Token-level, so `unsafe_code` in a
        // forbid attribute and "unsafe" in strings/comments never fire.
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            unsafe_lines.insert(line); // lint: allow-unsafe — identifier, not an unsafe block
            if !escaped_on(lex, line, "lint: allow-unsafe")
                && !lex.comment_nearby(line, "SAFETY:", COMMENT_WINDOW)
            {
                report(
                    out,
                    Rule::R3,
                    line,
                    "`unsafe` without a `// SAFETY:` comment within the comment window",
                );
            }
        }

        // R4: hot path must not read the OS clock.
        if hot_path
            && t.kind == TokKind::Ident
            && t.text == "Instant"
            && punct(i + 1, "::")
            && ident(i + 2, "now")
            && !escaped_on(lex, line, "lint: allow-instant")
        {
            report(
                out,
                Rule::R4,
                line,
                "Instant::now() on the STM per-access hot path; use the global version clock \
                 or hoist timing to transaction boundaries",
            );
        }

        // R5: fences must be argued at any ordering. Lines with an
        // extreme spelling are already R2 sites; R5 covers the rest
        // (e.g. an unjustified downgrade to `fence(Ordering::AcqRel)`).
        if !facade_exempt
            && t.kind == TokKind::Ident
            && t.text == "fence"
            && punct(i + 1, "(")
            && !extreme_lines.contains(&line)
            && !escaped_on(lex, line, "lint: allow-ordering")
            && !lex.comment_nearby(line, "ordering:", COMMENT_WINDOW)
        {
            ordering_lines.insert(line);
            report(
                out,
                Rule::R5,
                line,
                "fence without a `// ordering:` justification; fences carry the version-chain \
                 / snapshot-registry handshake arguments",
            );
        }
    }

    stats.ordering_sites += ordering_lines.len();
    stats.unsafe_sites += unsafe_lines.len(); // lint: allow-unsafe — identifier, not an unsafe block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run(rel: &str, src: &str) -> Vec<String> {
        let lexed = lex(src);
        let mut stats = Stats::default();
        let mut out = Vec::new();
        check_file(&PathBuf::from(rel), &lexed, &mut stats, &mut out);
        out.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn flags_raw_std_sync_import() {
        let v = run("crates/stm/src/x.rs", "use std::sync::Mutex;\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[R1]"));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// std::sync::Mutex is banned here\n\
                   let s = \"std::sync::Mutex\";\n\
                   let r = r#\"unsafe { fence(Ordering::SeqCst) }\"#;\n";
        assert!(run("crates/stm/src/x.rs", src).is_empty());
    }

    #[test]
    fn facade_crates_exempt_from_r1_r2_r5() {
        let src =
            "use std::sync::Mutex;\nlet x = a.load(Ordering::SeqCst);\nfence(Ordering::AcqRel);\n";
        assert!(run("crates/sync/src/lib.rs", src).is_empty());
        assert!(run("crates/check/src/engine.rs", src).is_empty());
    }

    #[test]
    fn test_tail_exempt_but_inline_cfg_test_is_not() {
        let tail = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert!(run("crates/stm/src/x.rs", tail).is_empty());
        let inline = "#[cfg(test)]\nfn helper() {}\nuse std::sync::Mutex;\n";
        let v = run("crates/stm/src/x.rs", inline);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[R1]"));
    }

    #[test]
    fn ordering_and_fence_justifications() {
        assert_eq!(
            run(
                "crates/runtime/src/x.rs",
                "let x = a.load(Ordering::SeqCst);\n"
            )
            .len(),
            1
        );
        assert!(run(
            "crates/runtime/src/x.rs",
            "// ordering: total order with producer increments\nlet x = a.load(Ordering::SeqCst);\n"
        )
        .is_empty());
        let v = run("crates/stm/src/snap.rs", "fence(Ordering::AcqRel);\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[R5]"));
        // SeqCst fence without a comment: exactly one report (R2).
        let v = run("crates/stm/src/snap.rs", "fence(Ordering::SeqCst);\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[R2]"));
    }

    #[test]
    fn unsafe_needs_safety_and_forbid_attr_is_invisible() {
        assert_eq!(
            run("crates/stm/src/x.rs", "let p = unsafe { *ptr };\n").len(),
            1
        );
        assert!(run(
            "crates/stm/src/x.rs",
            "// SAFETY: ptr is valid for the guard's lifetime\nlet p = unsafe { *ptr };\n"
        )
        .is_empty());
        assert!(run("crates/stm/src/x.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn hot_path_instant_flagged_only_on_hot_files() {
        let src = "let t = Instant::now();\n";
        assert_eq!(run("crates/stm/src/vlock.rs", src).len(), 1);
        assert_eq!(run("crates/stm/src/snap.rs", src).len(), 1);
        assert!(run("crates/stm/src/stats.rs", src).is_empty());
        assert!(run("crates/runtime/src/pool.rs", src).is_empty());
    }

    #[test]
    fn escapes_suppress() {
        let src = "use std::sync::Mutex; // lint: allow-std-sync — poison-test fixture\n\
                   let x = a.load(Ordering::SeqCst); // lint: allow-ordering\n";
        assert!(run("crates/stm/src/x.rs", src).is_empty());
    }
}
