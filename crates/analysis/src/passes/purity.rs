//! A1 — transaction purity. A transaction body reruns on every abort,
//! so an irrevocable side effect inside it (I/O, channel traffic,
//! spawning, OS-clock reads, mutation of captured non-TVar state)
//! silently duplicates under contention. This pass finds every closure
//! flowing into `Stm::atomically` / `Stm::read_only` and every fn that
//! takes a `&mut Transaction` (the one-call-hop closure helpers — the
//! only way a helper participates in a transaction is by receiving the
//! `tx`), and flags effectful tokens inside them.
//!
//! Escape grammar: `// txn: allow-effect(<reason>)` on the line or
//! within the comment window above. The reason must be non-empty — an
//! empty escape is itself reported (E1): an escape must argue, not
//! just silence.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{LexOut, Tok, TokKind};
use crate::passes::lexical::{test_tail_line, COMMENT_WINDOW};
use crate::report::{Finding, Rule, Stats};
use crate::tree::{flatten, Group, Tree};

/// The escape marker.
pub const ESCAPE: &str = "txn: allow-effect(";

/// APIs whose closure argument is a transaction body.
const TXN_ENTRY_FNS: [&str; 2] = ["atomically", "read_only"];

/// One transaction context found in a file.
struct TxnCtx<'a> {
    /// Parameter / locally-bound identifiers (assignments to anything
    /// else are captured-state mutations).
    locals: BTreeSet<String>,
    /// The body forest.
    body: Vec<&'a Tree>,
    /// Where the context starts (for messages).
    line: u32,
    /// "closure" or "fn `name`".
    what: String,
}

/// Runs A1 over one production file.
pub fn check_file(
    rel: &Path,
    lex: &LexOut,
    trees: &[Tree],
    stats: &mut Stats,
    out: &mut Vec<Finding>,
) {
    let tail = test_tail_line(&lex.tokens);
    let mut ctxs: Vec<TxnCtx<'_>> = Vec::new();
    collect_contexts(trees, &mut ctxs);
    for ctx in ctxs {
        if ctx.line >= tail {
            continue; // test-module tail: harness code may be effectful
        }
        stats.txn_contexts += 1;
        check_ctx(rel, lex, &ctx, tail, stats, out);
    }
}

/// Finds txn contexts in a forest: closure args of `atomically(…)` /
/// `read_only(…)` calls, and bodies of fns taking `&mut Transaction`.
fn collect_contexts<'a>(trees: &'a [Tree], out: &mut Vec<TxnCtx<'a>>) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            // Recurse first: nested modules, blocks, arguments.
            collect_contexts(&g.children, out);

            // `atomically ( |tx| body )` — the previous sibling names
            // the entry point.
            if g.delim == '(' && i > 0 && TXN_ENTRY_FNS.iter().any(|f| trees[i - 1].is_ident(f)) {
                if let Some(ctx) = closure_in_args(g) {
                    out.push(ctx);
                }
            }
        }

        // `fn name (params…) … { body }` with a `Transaction` param.
        if t.is_ident("fn") {
            if let Some((name, params, body)) = fn_parts(trees, i) {
                if params_take_transaction(params) {
                    let mut locals = idents_before_colons(params);
                    collect_bindings(&body.children, &mut locals);
                    out.push(TxnCtx {
                        locals,
                        body: body.children.iter().collect(),
                        line: body.open_line,
                        what: format!("fn `{name}`"),
                    });
                }
            }
        }
    }
}

/// Parameter names: the identifier immediately before each top-level
/// `:` in a parameter list (plus `self`, which has no annotation).
fn idents_before_colons(params: &Group) -> BTreeSet<String> {
    let kids = &params.children;
    let mut out = BTreeSet::new();
    for (i, t) in kids.iter().enumerate() {
        if let Some(l) = t.leaf().filter(|l| l.kind == TokKind::Ident) {
            if l.text == "self" || kids.get(i + 1).is_some_and(|n| n.is_punct(":")) {
                out.insert(l.text.clone());
            }
        } else if let Some(g) = t.group() {
            // Destructuring patterns: over-collect every ident inside.
            let mut flat = Vec::new();
            flatten(&g.children, &mut flat);
            for l in flat {
                if l.kind == TokKind::Ident {
                    out.insert(l.text.clone());
                }
            }
        }
    }
    out
}

/// Splits `fn name … (params) … { body }` starting at the `fn` keyword.
fn fn_parts(trees: &[Tree], at: usize) -> Option<(String, &Group, &Group)> {
    let name = trees
        .get(at + 1)?
        .leaf()
        .filter(|t| t.kind == TokKind::Ident)?
        .text
        .clone();
    let mut params = None;
    for t in &trees[at + 2..] {
        match t {
            Tree::Group(g) if g.delim == '(' && params.is_none() => params = Some(g),
            Tree::Group(g) if g.delim == '{' => return Some((name, params?, g)),
            Tree::Leaf(l) if l.text == ";" => return None, // trait method decl
            _ => {}
        }
    }
    None
}

/// True when a parameter group names `Transaction` outside an
/// `Fn(…)`/`FnMut(…)`/`FnOnce(…)` bound (a fn *taking a closure over*
/// transactions, like `Stm::run` itself, is not a transaction body).
fn params_take_transaction(params: &Group) -> bool {
    fn scan(trees: &[Tree]) -> bool {
        for (i, t) in trees.iter().enumerate() {
            match t {
                Tree::Leaf(l) if l.text == "Transaction" => return true,
                Tree::Group(g) => {
                    let bound = i > 0
                        && ["Fn", "FnMut", "FnOnce"]
                            .iter()
                            .any(|f| trees[i - 1].is_ident(f));
                    if !bound && scan(&g.children) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }
    scan(&params.children)
}

/// Finds the first `|params| body` closure inside a call-argument
/// group and builds its context.
fn closure_in_args(args: &Group) -> Option<TxnCtx<'_>> {
    let kids = &args.children;
    let start = kids
        .iter()
        .position(|t| t.is_punct("|") || t.is_punct("||"))?;
    let (params, body_from) = if kids[start].is_punct("||") {
        (Vec::new(), start + 1)
    } else {
        let end = kids[start + 1..]
            .iter()
            .position(|t| t.is_punct("|"))
            .map(|p| start + 1 + p)?;
        (kids[start + 1..end].to_vec(), end + 1)
    };
    if body_from >= kids.len() {
        return None;
    }
    let mut locals: BTreeSet<String> = params
        .iter()
        .filter_map(|t| t.leaf())
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    let body: Vec<&Tree> = kids[body_from..].iter().collect();
    let owned: Vec<Tree> = body.iter().map(|t| (*t).clone()).collect();
    collect_bindings(&owned, &mut locals);
    Some(TxnCtx {
        locals,
        body,
        line: kids[body_from].line(),
        what: "closure".into(),
    })
}

/// Collects identifiers bound *inside* a body: `let` patterns, `for`
/// patterns, nested-closure parameters, and match-arm patterns.
/// Deliberately over-collects (type names in `let x: Vec<T>` etc.) —
/// extra locals can only suppress a capture-mutation report, never
/// invent one, which is the safe direction for a heuristic.
fn collect_bindings(trees: &[Tree], locals: &mut BTreeSet<String>) {
    let mut i = 0usize;
    while i < trees.len() {
        let t = &trees[i];
        if t.is_ident("let") || t.is_ident("for") {
            let stop = |x: &Tree| {
                x.is_punct("=") || x.is_punct(";") || x.is_ident("in") || x.is_punct("{")
            };
            let mut j = i + 1;
            while j < trees.len() && !stop(&trees[j]) {
                match &trees[j] {
                    Tree::Leaf(l) if l.kind == TokKind::Ident => {
                        locals.insert(l.text.clone());
                    }
                    Tree::Group(g) => {
                        let mut flat = Vec::new();
                        flatten(&g.children, &mut flat);
                        for l in flat {
                            if l.kind == TokKind::Ident {
                                locals.insert(l.text.clone());
                            }
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // Closure params: idents between a `|…|` pair. (`a | b`
        // bitwise-or over-collects `a`/`b` as locals; acceptable.)
        if t.is_punct("|") {
            let mut j = i + 1;
            while j < trees.len() && !trees[j].is_punct("|") {
                if let Some(l) = trees[j].leaf() {
                    if l.kind == TokKind::Ident {
                        locals.insert(l.text.clone());
                    }
                } else if let Some(g) = trees[j].group() {
                    let mut flat = Vec::new();
                    flatten(&g.children, &mut flat);
                    for l in flat {
                        if l.kind == TokKind::Ident {
                            locals.insert(l.text.clone());
                        }
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        // Match-arm patterns: idents in the run before `=>`.
        if t.is_punct("=>") {
            let mut j = i;
            while j > 0 {
                j -= 1;
                match &trees[j] {
                    Tree::Leaf(l) if l.text == "," || l.text == ";" => break,
                    Tree::Leaf(l) if l.kind == TokKind::Ident => {
                        locals.insert(l.text.clone());
                    }
                    Tree::Group(g) => {
                        let mut flat = Vec::new();
                        flatten(&g.children, &mut flat);
                        for l in flat {
                            if l.kind == TokKind::Ident {
                                locals.insert(l.text.clone());
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Tree::Group(g) = t {
            collect_bindings(&g.children, locals);
        }
        i += 1;
    }
}

/// Flattens a forest to owned tokens, re-materializing group
/// delimiters as punct tokens (the effect patterns need the `(` of a
/// call, which [`flatten`] elides).
fn flatten_with_delims(trees: &[Tree], out: &mut Vec<Tok>) {
    for t in trees {
        match t {
            Tree::Leaf(l) => out.push(l.clone()),
            Tree::Group(g) => {
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: g.delim.to_string(),
                    line: g.open_line,
                });
                flatten_with_delims(&g.children, out);
                let close = match g.delim {
                    '(' => ")",
                    '[' => "]",
                    _ => "}",
                };
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: close.into(),
                    line: g.close_line,
                });
            }
        }
    }
}

/// Effectful-pattern table: each returns a description when the flat
/// token window starting at `i` matches.
fn effect_at(toks: &[Tok], i: usize) -> Option<String> {
    let t = &toks[i];
    let ident = |k: usize, name: &str| {
        toks.get(i + k)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    };
    let punct = |k: usize, p: &str| {
        toks.get(i + k)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    };
    if t.kind != TokKind::Ident && !(t.kind == TokKind::Punct && t.text == ".") {
        return None;
    }
    // Output / debug macros.
    const MACROS: [&str; 7] = [
        "println", "print", "eprintln", "eprint", "dbg", "write", "writeln",
    ];
    if t.kind == TokKind::Ident && MACROS.contains(&t.text.as_str()) && punct(1, "!") {
        return Some(format!("`{}!` output inside a transaction body", t.text));
    }
    // OS clock.
    if (t.text == "Instant" || t.text == "SystemTime") && punct(1, "::") && ident(2, "now") {
        return Some(format!(
            "`{}::now()` reads the OS clock in a retry-able body",
            t.text
        ));
    }
    // Thread ops.
    if t.text == "thread" && punct(1, "::") {
        for op in ["spawn", "sleep", "yield_now"] {
            if ident(2, op) {
                return Some(format!("`thread::{op}` inside a transaction body"));
            }
        }
    }
    // Process control.
    if t.text == "process" && punct(1, "::") && (ident(2, "exit") || ident(2, "abort")) {
        return Some("`process::exit`/`abort` inside a transaction body".into());
    }
    // Filesystem / stdio.
    if t.text == "fs" && punct(1, "::") {
        return Some("`fs::` filesystem access inside a transaction body".into());
    }
    if t.text == "File" && punct(1, "::") && (ident(2, "create") || ident(2, "open")) {
        return Some("`File::open`/`create` inside a transaction body".into());
    }
    if t.kind == TokKind::Ident
        && ["stdout", "stderr", "stdin"].contains(&t.text.as_str())
        && punct(1, "(")
    {
        return Some(format!(
            "`{}()` stdio handle inside a transaction body",
            t.text
        ));
    }
    // Channel traffic: method-call position only (`.send(…)`), so a
    // fn named `send` defined elsewhere doesn't fire on its own name.
    if t.kind == TokKind::Punct && t.text == "." {
        for op in ["send", "recv", "try_send", "try_recv"] {
            if ident(1, op) && punct(2, "(") {
                return Some(format!(
                    "`.{op}()` channel traffic inside a transaction body (duplicates on retry)"
                ));
            }
        }
    }
    None
}

/// Assignment operators that mutate their LHS.
const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
];

fn check_ctx(
    rel: &Path,
    lex: &LexOut,
    ctx: &TxnCtx<'_>,
    tail: u32,
    stats: &mut Stats,
    out: &mut Vec<Finding>,
) {
    // Effects: scan the body's flat token stream (with delimiters).
    let owned: Vec<Tree> = ctx.body.iter().map(|t| (*t).clone()).collect();
    let mut flat: Vec<Tok> = Vec::new();
    flatten_with_delims(&owned, &mut flat);
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for i in 0..flat.len() {
        if let Some(desc) = effect_at(&flat, i) {
            let line = flat[i].line;
            if line >= tail || !seen.insert((line, desc.clone())) {
                continue;
            }
            maybe_report(rel, lex, line, &ctx.what, ctx.line, &desc, stats, out);
        }
    }

    // Captured-state mutation: assignment whose LHS base identifier is
    // not bound inside the context.
    check_assignments(rel, lex, ctx, &owned, tail, stats, out);
}

fn check_assignments(
    rel: &Path,
    lex: &LexOut,
    ctx: &TxnCtx<'_>,
    trees: &[Tree],
    tail: u32,
    stats: &mut Stats,
    out: &mut Vec<Finding>,
) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            check_assignments(rel, lex, ctx, &g.children, tail, stats, out);
            continue;
        }
        let Some(op) = t.leaf().filter(|l| l.kind == TokKind::Punct) else {
            continue;
        };
        if !ASSIGN_OPS.contains(&op.text.as_str()) {
            continue;
        }
        // Walk the LHS back over a field chain to the base identifier.
        let mut j = i;
        while j >= 2 && trees[j - 1].leaf().is_some() && trees[j - 2].is_punct(".") {
            j -= 2;
        }
        if j == 0 {
            continue;
        }
        let Some(base) = trees[j - 1].leaf().filter(|l| l.kind == TokKind::Ident) else {
            continue;
        };
        // `*x = …` deref-assign unwraps to the same base.
        // A `let`/`if let`/`while let`/`for` earlier in the statement
        // makes this a declaration, not a mutation.
        let stmt_start = trees[..j]
            .iter()
            .rposition(|x| x.is_punct(";"))
            .map_or(0, |p| p + 1);
        let is_decl = trees[stmt_start..j]
            .iter()
            .any(|x| x.is_ident("let") || x.is_ident("for"));
        if is_decl || ctx.locals.contains(&base.text) {
            continue;
        }
        let line = op.line;
        if line >= tail {
            continue;
        }
        let desc = format!(
            "mutation of captured `{}` (non-TVar state written by a retry-able body reruns \
             on every abort)",
            base.text
        );
        maybe_report(rel, lex, line, &ctx.what, ctx.line, &desc, stats, out);
    }
}

/// Applies the `txn: allow-effect(<reason>)` escape, reporting E1 for
/// an empty reason, else A1 when unescaped.
#[allow(clippy::too_many_arguments)]
fn maybe_report(
    rel: &Path,
    lex: &LexOut,
    line: u32,
    what: &str,
    ctx_line: u32,
    desc: &str,
    stats: &mut Stats,
    out: &mut Vec<Finding>,
) {
    let lo = line.saturating_sub(COMMENT_WINDOW);
    for l in (lo..=line).rev() {
        let Some(comment) = lex.comment_on(l) else {
            continue;
        };
        let Some(at) = comment.find(ESCAPE) else {
            continue;
        };
        let rest = &comment[at + ESCAPE.len()..];
        let reason = rest.split(')').next().unwrap_or("").trim();
        if reason.is_empty() {
            out.push(Finding {
                file: rel.to_path_buf(),
                line: l,
                rule: Rule::E1,
                message: "`txn: allow-effect()` escape with an empty reason — escapes must \
                          argue why the effect is retry-safe"
                    .into(),
            });
            break; // fall through to report the unescaped effect too
        }
        stats.escapes += 1;
        return;
    }
    out.push(Finding {
        file: rel.to_path_buf(),
        line,
        rule: Rule::A1,
        message: format!("{desc} ({what} entered at line {ctx_line} reruns on abort)"),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::parse;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<String> {
        let lexed = lex(src);
        let trees = parse(&lexed.tokens);
        let mut stats = Stats::default();
        let mut out = Vec::new();
        check_file(
            &PathBuf::from("crates/x/src/lib.rs"),
            &lexed,
            &trees,
            &mut stats,
            &mut out,
        );
        out.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn println_in_atomically_closure_flagged() {
        let v = run("fn f(stm: &Stm) { stm.atomically(|tx| { println!(\"hi\"); tx.read(&v) }); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[A1]") && v[0].contains("println"));
    }

    #[test]
    fn clean_closures_pass() {
        let v = run(
            "fn f(stm: &Stm) { stm.atomically(|tx| tx.modify(&v, |x| x + 1)); }\n\
             fn g(stm: &Stm) { let _ = stm.read_only(|tx| { let mut sum = 0; sum += 1; Ok(sum) }); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn transaction_taking_fn_is_one_hop_context() {
        let v = run("fn helper(tx: &mut Transaction, v: &TVar<u64>) -> TxResult<()> { std::thread::sleep(d); tx.write(v, 1) }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("thread::sleep"));
    }

    #[test]
    fn fn_taking_closure_over_transactions_is_not_a_context() {
        // `Stm::run`'s shape: `impl FnMut(&mut Transaction)` parameter.
        let v = run("fn run<R>(&self, f: &mut impl FnMut(&mut Transaction) -> TxResult<R>) -> R { self.cm.backoff(n); }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn captured_mutation_flagged_but_locals_pass() {
        let v =
            run("fn f() { let mut hits = 0; stm.atomically(|tx| { hits += 1; tx.read(&v) }); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("captured `hits`"));
        let v = run("fn f() { stm.atomically(|tx| { let mut n = 0; n += 1; Ok(n) }); }");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn escape_with_reason_suppresses_empty_reason_reports_e1() {
        let ok = "fn f() { stm.atomically(|tx| {\n\
                  // txn: allow-effect(idempotent debug counter, test-only build)\n\
                  println!(\"x\");\ntx.read(&v) }); }";
        assert!(run(ok).is_empty());
        let bad = "fn f() { stm.atomically(|tx| {\n// txn: allow-effect()\nprintln!(\"x\");\ntx.read(&v) }); }";
        let v = run(bad);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|f| f.contains("[E1]")));
        assert!(v.iter().any(|f| f.contains("[A1]")));
    }

    #[test]
    fn channel_send_in_method_position_flagged() {
        let v = run("fn f() { stm.atomically(|tx| { done.send(1); tx.read(&v) }); }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains(".send()"));
    }

    #[test]
    fn test_tail_contexts_exempt() {
        let v = run(
            "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn t() { stm.atomically(|tx| { println!(\"dbg\"); Ok(()) }); }\n}",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
