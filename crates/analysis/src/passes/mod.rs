//! Analysis passes. Each pass is a pure function over lexed/parsed
//! input plus per-pass context, pushing [`crate::report::Finding`]s —
//! the orchestration (file walking, manifest lookup) lives in
//! [`crate::analyze`].

pub mod features;
pub mod lexical;
pub mod purity;
pub mod schema;
