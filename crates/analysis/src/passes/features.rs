//! A2 — feature-gate integrity. Every `cfg(feature = "…")` /
//! `cfg_attr(feature = "…", …)` / `cfg!(feature = "…")` site must name
//! a feature its package's `Cargo.toml` declares — a typo (`tracing`
//! for `trace`) compiles fine and silently dead-codes the gated block
//! forever. Bare predicate identifiers are validated against the known
//! built-in cfgs plus this workspace's registered custom cfg
//! (`rubic_check`), catching `cfg(rubic_chek)` the same way.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::TokKind;
use crate::report::{Finding, Rule, Stats};
use crate::tree::Tree;

/// Built-in value-less cfg predicates, plus the workspace's registered
/// custom cfgs. Anything else as a bare ident inside `cfg(…)` is a
/// finding.
pub const KNOWN_BARE_CFGS: [&str; 11] = [
    "test",
    "doctest",
    "doc",
    "docsrs",
    "debug_assertions",
    "miri",
    "unix",
    "windows",
    "fuzzing",
    // The model-checker cfg: `RUSTFLAGS: --cfg rubic_check` swaps the
    // sync facade onto the controlled scheduler (DESIGN.md §13).
    "rubic_check",
    "loom",
];

/// Built-in `key = "value"` cfg keys. `feature` is handled separately.
pub const KNOWN_KV_CFGS: [&str; 10] = [
    "feature",
    "target_os",
    "target_arch",
    "target_family",
    "target_env",
    "target_endian",
    "target_pointer_width",
    "target_vendor",
    "target_feature",
    "panic",
];

/// Combinators whose argument lists we recurse into.
const COMBINATORS: [&str; 3] = ["all", "any", "not"];

/// Scans one file's trees for cfg sites and validates feature names
/// against `declared` (the package's `[features]` keys plus implicit
/// optional-dependency features).
pub fn check_file(
    rel: &Path,
    trees: &[Tree],
    declared: &BTreeSet<String>,
    pkg: &str,
    stats: &mut Stats,
    out: &mut Vec<Finding>,
) {
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            let is_cfg_call = i > 0
                && (trees[i - 1].is_ident("cfg") || trees[i - 1].is_ident("cfg_attr")
                    // `cfg!` lexes as ident `cfg` + punct `!`; the ident
                    // check above already matched position i-1 when the
                    // `!` sits between — handle that spelling too:
                    || (i > 1 && trees[i - 1].is_punct("!") && trees[i - 2].is_ident("cfg")));
            if g.delim == '(' && is_cfg_call {
                let is_cfg_attr = trees[i - 1].is_ident("cfg_attr");
                check_predicate(rel, &g.children, declared, pkg, is_cfg_attr, stats, out);
            }
            check_file(rel, &g.children, declared, pkg, stats, out);
        }
    }
}

/// Validates one cfg predicate token list (recursing into `all`/`any`/
/// `not`). For `cfg_attr` the scan naturally covers the attribute tail
/// too, which is what we want: `doc(cfg(feature = "…"))` inside it
/// also names a feature that must exist.
#[allow(clippy::too_many_arguments)]
fn check_predicate(
    rel: &Path,
    kids: &[Tree],
    declared: &BTreeSet<String>,
    pkg: &str,
    is_cfg_attr: bool,
    stats: &mut Stats,
    out: &mut Vec<Finding>,
) {
    // In `cfg_attr(pred, attr…)` only the first top-level arm is a cfg
    // predicate; past that comma, idents are attribute names. (Nested
    // `cfg(…)` groups in the tail are found by the outer group walk.)
    let mut in_predicate = true;
    let mut i = 0usize;
    while i < kids.len() {
        let t = &kids[i];
        if is_cfg_attr && t.is_punct(",") {
            in_predicate = false;
        }
        let next_group = kids.get(i + 1).and_then(Tree::group);
        if let Some(leaf) = t.leaf().filter(|l| l.kind == TokKind::Ident) {
            let name = leaf.text.as_str();
            if !in_predicate {
                i += 1;
                continue;
            }
            if COMBINATORS.contains(&name) {
                if let Some(g) = next_group {
                    check_predicate(rel, &g.children, declared, pkg, false, stats, out);
                    i += 2;
                    continue;
                }
            }
            // `key = "value"` predicate.
            if kids.get(i + 1).is_some_and(|n| n.is_punct("=")) {
                let value = kids
                    .get(i + 2)
                    .and_then(Tree::leaf)
                    .filter(|l| l.kind == TokKind::Str);
                if let Some(value) = value {
                    if name == "feature" {
                        stats.cfg_sites += 1;
                        if !declared.contains(&value.text) {
                            out.push(Finding {
                                file: rel.to_path_buf(),
                                line: value.line,
                                rule: Rule::A2,
                                message: format!(
                                    "cfg names feature \"{}\" which `{}`'s Cargo.toml does not \
                                     declare (declared: {}) — the gated code is silently dead",
                                    value.text,
                                    pkg,
                                    declared
                                        .iter()
                                        .map(String::as_str)
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                ),
                            });
                        }
                    } else if !KNOWN_KV_CFGS.contains(&name) {
                        out.push(Finding {
                            file: rel.to_path_buf(),
                            line: leaf.line,
                            rule: Rule::A2,
                            message: format!("unknown cfg key `{name}`"),
                        });
                    }
                    i += 3;
                    continue;
                }
            }
            // Bare predicate ident: a leaf predicate stands alone
            // (next token is `,` or the end of the list) and sits in
            // predicate position (start of the list or right after a
            // comma).
            let at_predicate_position = i == 0 || kids.get(i - 1).is_some_and(|p| p.is_punct(","));
            let terminated = kids.get(i + 1).is_none_or(|n| n.is_punct(","));
            if at_predicate_position && terminated && !KNOWN_BARE_CFGS.contains(&name) {
                out.push(Finding {
                    file: rel.to_path_buf(),
                    line: leaf.line,
                    rule: Rule::A2,
                    message: format!(
                        "unknown cfg predicate `{name}` — not a built-in cfg and not this \
                         workspace's registered custom cfg (`rubic_check`); a typo here \
                         silently dead-codes the gated item"
                    ),
                });
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::parse;
    use std::path::PathBuf;

    fn run(src: &str, declared: &[&str]) -> Vec<String> {
        let lexed = lex(src);
        let trees = parse(&lexed.tokens);
        let declared: BTreeSet<String> = declared.iter().map(ToString::to_string).collect();
        let mut stats = Stats::default();
        let mut out = Vec::new();
        check_file(
            &PathBuf::from("crates/x/src/lib.rs"),
            &trees,
            &declared,
            "x",
            &mut stats,
            &mut out,
        );
        out.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn declared_features_pass_typos_flagged() {
        assert!(run("#[cfg(feature = \"trace\")]\nfn f() {}", &["trace"]).is_empty());
        let v = run("#[cfg(feature = \"tracing\")]\nfn f() {}", &["trace"]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("[A2]") && v[0].contains("tracing"));
    }

    #[test]
    fn nested_combinators_checked() {
        let v = run(
            "#[cfg(all(feature = \"trace\", any(feature = \"chaso\", test)))]\nfn f() {}",
            &["trace", "chaos"],
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("chaso"));
    }

    #[test]
    fn cfg_attr_and_cfg_macro_checked() {
        let v = run(
            "#[cfg_attr(feature = \"serd\", derive(Serialize))]\nstruct S;\nfn f() { if cfg!(feature = \"mvc\") {} }",
            &["serde", "mvcc"],
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn custom_cfg_allowlist() {
        assert!(run("#[cfg(rubic_check)]\nfn f() {}", &[]).is_empty());
        let v = run("#[cfg(rubic_chek)]\nfn f() {}", &[]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("rubic_chek"));
    }

    #[test]
    fn not_combinator_and_bare_builtin() {
        assert!(run("#[cfg(not(test))]\nfn f() {}", &[]).is_empty());
        assert!(run("#[cfg(all(test, debug_assertions))]\nfn f() {}", &[]).is_empty());
    }
}
