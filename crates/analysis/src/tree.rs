//! Token-tree parser: groups the flat token stream into nested
//! delimiter groups (`()`, `[]`, `{}`), which is exactly the structure
//! the passes need — closure boundaries, fn bodies, `cfg(...)`
//! argument lists — without committing to a full AST.

use crate::lexer::{Tok, TokKind};

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Tok),
    /// A balanced delimiter group.
    Group(Group),
}

/// A `(…)`, `[…]`, or `{…}` group.
#[derive(Debug, Clone)]
pub struct Group {
    /// `(`, `[`, or `{`.
    pub delim: char,
    pub open_line: u32,
    pub close_line: u32,
    pub children: Vec<Tree>,
}

impl Tree {
    /// The leaf token, if this is one.
    #[must_use]
    pub fn leaf(&self) -> Option<&Tok> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is one.
    #[must_use]
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Leaf(_) => None,
            Tree::Group(g) => Some(g),
        }
    }

    /// True when this leaf is an identifier with text `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.leaf()
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    }

    /// True when this leaf is punctuation `p`.
    #[must_use]
    pub fn is_punct(&self, p: &str) -> bool {
        self.leaf()
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    }

    /// The source line this node starts on.
    #[must_use]
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }
}

/// Parses tokens into a tree. Robust against unbalanced input: a stray
/// closer becomes a leaf, an unclosed group closes at end-of-file —
/// analysis over in-progress code must degrade, never panic.
#[must_use]
pub fn parse(tokens: &[Tok]) -> Vec<Tree> {
    let mut pos = 0usize;
    parse_until(tokens, &mut pos, None)
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

fn parse_until(tokens: &[Tok], pos: &mut usize, until: Option<char>) -> Vec<Tree> {
    let mut out = Vec::new();
    while let Some(tok) = tokens.get(*pos) {
        if tok.kind == TokKind::Punct {
            let c = tok.text.chars().next().unwrap_or(' ');
            if Some(c) == until {
                return out;
            }
            if matches!(c, '(' | '[' | '{') && tok.text.len() == 1 {
                let open_line = tok.line;
                *pos += 1;
                let children = parse_until(tokens, pos, Some(closer(c)));
                let close_line = tokens
                    .get(*pos)
                    .map_or_else(|| tokens.last().map_or(open_line, |t| t.line), |t| t.line);
                *pos += 1; // consume the closer (or step past EOF)
                out.push(Tree::Group(Group {
                    delim: c,
                    open_line,
                    close_line,
                    children,
                }));
                continue;
            }
        }
        out.push(Tree::Leaf(tok.clone()));
        *pos += 1;
    }
    out
}

/// Walks every group in the forest depth-first, calling `f` on each.
pub fn walk_groups<'a>(trees: &'a [Tree], f: &mut impl FnMut(&'a Group)) {
    for t in trees {
        if let Tree::Group(g) = t {
            f(g);
            walk_groups(&g.children, f);
        }
    }
}

/// Collects every leaf in the forest depth-first into `out`.
pub fn flatten<'a>(trees: &'a [Tree], out: &mut Vec<&'a Tok>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => out.push(tok),
            Tree::Group(g) => flatten(&g.children, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn groups_nest() {
        let out = lex("fn f(a: u8) { g(a, [1, 2]); }");
        let trees = parse(&out.tokens);
        // fn, f, (…), {…}
        assert_eq!(trees.len(), 4);
        let body = trees[3].group().expect("body group");
        assert_eq!(body.delim, '{');
        let call_args = body.children[1].group().expect("call args");
        assert_eq!(call_args.delim, '(');
        assert_eq!(
            call_args.children.last().unwrap().group().unwrap().delim,
            '['
        );
    }

    #[test]
    fn unbalanced_inputs_do_not_panic() {
        for src in ["fn f( {", ") } ]", "{ ( }"] {
            let out = lex(src);
            let _ = parse(&out.tokens);
        }
    }

    #[test]
    fn group_lines_recorded() {
        let out = lex("f(\n  a,\n  b,\n)");
        let trees = parse(&out.tokens);
        let g = trees[1].group().unwrap();
        assert_eq!(g.open_line, 1);
        assert_eq!(g.close_line, 4);
    }
}
