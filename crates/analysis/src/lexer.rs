//! A from-scratch Rust lexer producing a line-numbered token stream
//! plus a per-line comment map.
//!
//! The lexer exists so analysis rules can never fire on prose: string
//! literals (including raw/byte strings), character literals, and
//! comments (including nested block comments) are each one token or a
//! comment-map entry, so `"std::sync::Mutex"` in a string and `unsafe`
//! in a doc comment are invisible to pattern matching. It is *not* a
//! full Rust front-end — it only needs to be exact about token
//! boundaries, which is what the golden-file tests under
//! `tests/fixtures/lexer/` pin.

/// What a token is. `text` on [`Tok`] carries the exact slice (for
/// string-like kinds, the *content* without quotes/prefix so passes can
//  compare names directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `atomically`, `r#fn`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`) — distinguished from char
    /// literals by the missing closing quote after the ident run.
    Lifetime,
    /// Character or byte literal (`'x'`, `'\n'`, `b'a'`).
    Char,
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Numeric literal (`42`, `0xFF`, `1.5e-3`, `1_000u64`).
    Num,
    /// Punctuation / operator, longest-munch (`::`, `->`, `+=`, `(`).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// Lexer output: the token stream and every comment, attributed to each
/// line it touches (block comments spanning lines get one entry per
/// line) so justification-window rules see exactly what a human sees.
#[derive(Debug, Default)]
pub struct LexOut {
    pub tokens: Vec<Tok>,
    /// line -> concatenated comment text appearing on that line.
    pub comments: std::collections::BTreeMap<u32, String>,
}

impl LexOut {
    /// The comment text on `line`, if any.
    #[must_use]
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(String::as_str)
    }

    /// True when any comment within `window` lines ending at `line`
    /// (inclusive) contains `needle` — the justification-comment rule
    /// shared by R2/R3/R5 and the purity escape.
    #[must_use]
    pub fn comment_nearby(&self, line: u32, needle: &str, window: u32) -> bool {
        let lo = line.saturating_sub(window);
        self.comments
            .range(lo..=line)
            .any(|(_, text)| text.contains(needle))
    }
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: [&str; 21] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src` into tokens + comments. Never fails: unterminated
/// literals are closed at end-of-file (analysis must degrade, not
/// panic, on in-progress code).
#[must_use]
pub fn lex(src: &str) -> LexOut {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: LexOut::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexOut,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn add_comment(&mut self, line: u32, text: &str) {
        let slot = self.out.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }

    fn run(mut self) -> LexOut {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, String::new()),
                '\'' => self.quote(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.add_comment(line, &text);
    }

    /// Block comments nest (`/* /* */ */` is one comment in Rust); each
    /// line the comment touches gets its text attributed so a
    /// justification inside a block comment still lands in the window.
    fn block_comment(&mut self) {
        let mut depth = 0usize;
        let mut cur_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.add_comment(cur_line, &text);
                    text.clear();
                    cur_line = self.line + 1;
                }
                text.push(c);
                self.bump();
            }
        }
        if !text.trim().is_empty() || cur_line == self.line {
            self.add_comment(cur_line, text.trim_end_matches('\n'));
        }
    }

    /// A plain (escaped) string body; the opening `"` is at `pos`.
    /// `content` may carry nothing — the prefix (`b`, `c`) was already
    /// consumed by the caller and is not part of the content.
    fn string(&mut self, line: u32, mut content: String) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    content.push('\\');
                    if let Some(e) = self.bump() {
                        content.push(e);
                    }
                }
                _ => content.push(c),
            }
        }
        self.push(TokKind::Str, content, line);
    }

    /// Raw string starting at the current `r`/`br` position *after* the
    /// prefix letters: `#…#"…"#…#`. No escapes; terminated by `"` plus
    /// the same number of hashes.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut content = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A candidate terminator: need `hashes` hashes.
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    seen += 1;
                    self.bump();
                }
                if seen == hashes {
                    break 'outer;
                }
                content.push('"');
                for _ in 0..seen {
                    content.push('#');
                }
            } else {
                content.push(c);
            }
        }
        self.push(TokKind::Str, content, line);
    }

    /// After a `'`: lifetime or char literal. The disambiguator is the
    /// closing quote: `'a'` has one right after the ident run, `'a` (a
    /// lifetime) does not. Escapes (`'\n'`) are always char literals.
    fn quote(&mut self, line: u32) {
        self.bump(); // the opening '
        let start = self.pos;
        match self.peek(0) {
            Some(c) if c == '_' || c.is_alphabetic() => {
                let mut len = 0usize;
                while self
                    .peek(len)
                    .is_some_and(|c| c == '_' || c.is_alphanumeric())
                {
                    len += 1;
                }
                if self.peek(len) == Some('\'') {
                    // 'x' — char literal.
                    for _ in 0..=len {
                        self.bump();
                    }
                    let text: String = self.chars[start..start + len].iter().collect();
                    self.push(TokKind::Char, text, line);
                } else {
                    // 'ident — lifetime.
                    for _ in 0..len {
                        self.bump();
                    }
                    let text: String = self.chars[start..start + len].iter().collect();
                    self.push(TokKind::Lifetime, format!("'{text}"), line);
                }
            }
            _ => {
                // Escape, punctuation, digit, or quote: a char literal.
                let mut content = String::new();
                while let Some(c) = self.bump() {
                    match c {
                        '\'' => break,
                        '\\' => {
                            content.push('\\');
                            if let Some(e) = self.bump() {
                                content.push(e);
                            }
                        }
                        _ => content.push(c),
                    }
                }
                self.push(TokKind::Char, content, line);
            }
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` consumes the dot; `1..5` / `1.method()` do not.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-') && text.ends_with(['e', 'E']) {
                // `1e-5` exponent sign.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    /// Identifier — or a string with a `b`/`r`/`br` prefix, or a raw
    /// identifier `r#name`.
    fn ident_or_prefixed(&mut self, line: u32) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let next = self.peek(0);
        match (text.as_str(), next) {
            ("r" | "br" | "b" | "c", Some('"')) => {
                if text.starts_with('r') || text == "br" {
                    self.raw_string(line);
                } else {
                    self.string(line, String::new());
                }
            }
            ("r" | "br", Some('#')) if self.raw_hash_leads_to_quote() => self.raw_string(line),
            ("r", Some('#')) => {
                // Raw identifier r#name. The prefix is kept in the
                // token text: `r#unsafe` is an ordinary identifier and
                // must never match a keyword-based rule pattern.
                self.bump(); // #
                let istart = self.pos;
                while self
                    .peek(0)
                    .is_some_and(|c| c == '_' || c.is_alphanumeric())
                {
                    self.bump();
                }
                let name: String = self.chars[istart..self.pos].iter().collect();
                self.push(TokKind::Ident, format!("r#{name}"), line);
            }
            ("b", Some('\'')) => {
                // Byte char b'x'.
                self.quote(line);
            }
            _ => self.push(TokKind::Ident, text, line),
        }
    }

    /// After an `r`/`br` at a `#`: raw string iff the hash run ends in
    /// a quote (otherwise it's `r#ident`).
    fn raw_hash_leads_to_quote(&self) -> bool {
        let mut ahead = 0usize;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }

    fn punct(&mut self, line: u32) {
        for p in PUNCTS {
            if self
                .chars
                .get(self.pos..self.pos + p.chars().count())
                .is_some_and(|w| w.iter().collect::<String>() == p)
            {
                for _ in 0..p.chars().count() {
                    self.bump();
                }
                self.push(TokKind::Punct, p.to_string(), line);
                return;
            }
        }
        let c = self.bump().expect("punct called with a char available");
        self.push(TokKind::Punct, c.to_string(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_are_single_tokens() {
        let toks = kinds(r#"let s = "std::sync::Mutex";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "std::sync::Mutex"));
        // The path inside the string must NOT appear as idents.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "Mutex"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" b"#;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == r#"a "quoted" b"#));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "\\n"));
    }

    #[test]
    fn nested_block_comments_do_not_leak_tokens() {
        let out = lex("/* outer /* unsafe */ still comment */ fn f() {}");
        assert!(!out
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unsafe"));
        assert!(out.comment_on(1).is_some_and(|c| c.contains("unsafe")));
    }

    #[test]
    fn comment_map_lines() {
        let out = lex("// one\nfn f() {}\n// ordering: because\nx;\n");
        assert!(out.comment_nearby(4, "ordering:", 1));
        assert!(!out.comment_nearby(2, "ordering:", 1));
    }

    #[test]
    fn maximal_munch_operators() {
        let toks = kinds("a += b; c => d; e.f(1..=2);");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&"..="));
    }

    #[test]
    fn numbers() {
        let toks = kinds("1.5 1..2 1e-5 0xFF_u32 3.main()");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["1.5", "1", "2", "1e-5", "0xFF_u32", "3"]);
    }

    #[test]
    fn raw_ident_and_byte_literals() {
        let toks = kinds(r#"let r#fn = b"bytes"; let c = b'z';"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#fn"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "bytes"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "z"));
    }
}
