//! Findings, rule identities, and the human/JSON renderers.

use std::fmt;
use std::path::PathBuf;

/// Every rule the analyzer can report, with a stable ID that escapes,
/// CI greps, and the mutation self-test key off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Transaction purity: irrevocable effect inside a retry-able body.
    A1,
    /// Feature-gate integrity: `cfg(feature = "…")` names an undeclared
    /// feature, or an unknown custom cfg ident.
    A2,
    /// Trace-schema consistency: `EventKind` drifted from its decode
    /// table, doc table, or the README event table.
    A3,
    /// Escape hygiene: a `txn: allow-effect(…)` escape with an empty
    /// reason (an escape must argue, not just silence).
    E1,
    /// Sync-facade discipline (re-hosted lexical rule).
    R1,
    /// SeqCst/Relaxed ordering justification (re-hosted lexical rule).
    R2,
    /// `unsafe` SAFETY comment (re-hosted lexical rule).
    R3,
    /// Hot-path `Instant::now` ban (re-hosted lexical rule).
    R4,
    /// Fence justification at any ordering (re-hosted lexical rule).
    R5,
}

impl Rule {
    /// The stable ID string.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::A1 => "A1",
            Rule::A2 => "A2",
            Rule::A3 => "A3",
            Rule::E1 => "E1",
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Counters for the success report (and the JSON `stats` block).
#[derive(Debug, Default, Clone)]
pub struct Stats {
    /// Rust files lexed.
    pub files: usize,
    /// Transaction contexts (closures into `atomically`/`read_only`
    /// plus `&mut Transaction`-taking fns) analyzed by A1.
    pub txn_contexts: usize,
    /// `cfg`/`cfg_attr`/`cfg!` feature names checked by A2.
    pub cfg_sites: usize,
    /// `EventKind` variants cross-checked by A3.
    pub event_kinds: usize,
    /// SeqCst/Relaxed/fence sites audited (R2 + R5).
    pub ordering_sites: usize,
    /// `unsafe` sites audited (R3).
    pub unsafe_sites: usize, // lint: allow-unsafe — identifier, not an unsafe block
    /// `txn: allow-effect` escapes honoured (each carries a reason).
    pub escapes: usize,
}

/// A full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub stats: Stats,
}

impl Report {
    /// Sorts findings by (file, line, rule) for stable output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Renders the machine-readable report. Hand-rolled JSON (the crate
    /// is zero-dependency); all strings pass through [`json_escape`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"rubic-analyze/v1\",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&f.file.display().to_string()),
                f.line,
                f.rule.id(),
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        let st = &self.stats;
        s.push_str(&format!(
            "],\n  \"stats\": {{\"files\": {}, \"txn_contexts\": {}, \"cfg_sites\": {}, \
             \"event_kinds\": {}, \"ordering_sites\": {}, \"unsafe_sites\": {}, \
             \"escapes\": {}}}\n}}\n",
            st.files,
            st.txn_contexts,
            st.cfg_sites,
            st.event_kinds,
            st.ordering_sites,
            st.unsafe_sites, // lint: allow-unsafe — identifier, not an unsafe block
            st.escapes
        ));
        s
    }
}

/// Escapes a string for a JSON value position.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped_and_parsable_shape() {
        let mut r = Report::default();
        r.findings.push(Finding {
            file: PathBuf::from("a/b.rs"),
            line: 3,
            rule: Rule::A1,
            message: "say \"no\"\nplease".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"rule\": \"A1\""));
        assert!(j.contains("rubic-analyze/v1"));
    }

    #[test]
    fn sort_is_stable_by_file_line_rule() {
        let mut r = Report::default();
        for (f, l) in [("b.rs", 1), ("a.rs", 9), ("a.rs", 2)] {
            r.findings.push(Finding {
                file: PathBuf::from(f),
                line: l,
                rule: Rule::R2,
                message: String::new(),
            });
        }
        r.sort();
        let order: Vec<(String, u32)> = r
            .findings
            .iter()
            .map(|f| (f.file.display().to_string(), f.line))
            .collect();
        assert_eq!(
            order,
            [("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
