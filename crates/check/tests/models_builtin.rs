//! Checks of the in-crate protocol models (`rubic_check::models`) plus
//! the mutation self-test: the checker must stay quiet on the correct
//! protocols and must catch deliberately weakened variants within a
//! bounded, seeded budget — deterministically enough to replay.

use rubic_check::models::{btree, epoch, mvcc, vlock};
use rubic_check::sync::atomic::Ordering;
use rubic_check::{check, Config, FailureKind};

/// Production orderings: the versioned-lock protocol passes a healthy
/// PCT budget with race + weak-pair detection on.
#[test]
fn vlock_correct_orderings_pass() {
    let report = check(
        Config::pct(0xB1C, rubic_check::env_iters(128)),
        vlock::model(vlock::VLockModel::default()),
    );
    report.assert_ok();
}

/// Mutation self-test (the verification plan's acceptance gate):
/// weakening the commit release to `Relaxed` must be flagged within a
/// bounded budget, and the reported failure must replay from both its
/// decision trace and its `(seed, iteration)` pair.
#[test]
fn vlock_weakened_release_is_caught_and_replays() {
    let mutated = vlock::VLockModel {
        release: Ordering::Relaxed,
        ..vlock::VLockModel::default()
    };
    let report = check(Config::pct(0xB1C, 128), vlock::model(mutated));
    let failure = report.expect_failure().clone();
    assert!(
        matches!(
            failure.kind,
            FailureKind::WeakOrdering | FailureKind::Race | FailureKind::Panic
        ),
        "weakened release must surface as an ordering/race/opacity failure, got {:?}",
        failure.kind
    );

    // Replay 1: exact decision trace.
    let replayed = check(Config::replay_trace(&failure.trace), vlock::model(mutated));
    let rf = replayed.expect_failure();
    assert_eq!(rf.kind, failure.kind, "trace replay reproduces the kind");
    assert_eq!(
        rf.trace, failure.trace,
        "trace replay reproduces the schedule"
    );

    // Replay 2: (seed, iteration, est_len), the chaos-style contract.
    let again = check(
        Config::pct_at_len(failure.seed, failure.iteration, failure.est_len),
        vlock::model(mutated),
    );
    let af = again.expect_failure();
    assert_eq!(af.kind, failure.kind);
    assert_eq!(af.trace, failure.trace);
}

/// The dual direction: the sample load's `Acquire` is what makes a
/// version-guarded *plain* payload read safe (`VLock::sample` guards
/// `tvar.rs` payload reads exactly this way). Weakening the sample to
/// `Relaxed` severs the edge and the race detector must flag the
/// payload read. (In `vlock::model` itself payloads are relaxed atomics
/// — faithful to `tvar.rs` — so a relaxed sample is invisible there;
/// this standalone publish model pins the payload side down.)
#[test]
fn version_guarded_payload_needs_acquire_sample() {
    use rubic_check::sync::{thread, RaceCell};
    use std::sync::Arc;

    fn publish_model(sample: Ordering) -> impl Fn() + Send + Sync + 'static {
        move || {
            let payload = Arc::new(RaceCell::new(0u64));
            let version = Arc::new(rubic_check::sync::atomic::AtomicU64::new(0));
            let (p2, v2) = (Arc::clone(&payload), Arc::clone(&version));
            let writer = thread::spawn(move || {
                p2.set(7);
                v2.store(2, Ordering::Release); // commit: version 1, unlocked
            });
            if version.load(sample) == 2 {
                assert_eq!(payload.get(), 7);
            }
            writer.join().expect("writer");
        }
    }

    check(Config::dfs(10_000), publish_model(Ordering::Acquire)).assert_ok();
    let report = check(Config::dfs(10_000), publish_model(Ordering::Relaxed));
    assert_eq!(report.expect_failure().kind, FailureKind::Race);
}

/// The multi-version snapshot protocol with the production retention
/// rule passes: every explored schedule yields consistent snapshot cuts
/// and no pinned snapshot ever observes a pruned version.
#[test]
fn mvcc_correct_retention_passes() {
    let report = check(
        Config::pct(0x37CC, rubic_check::env_iters(128)),
        mvcc::model(mvcc::MvccModel::default()),
    );
    report.assert_ok();
}

/// Pruning without the registry scan (retain only up to the writer's
/// own stamp) is the canonical multi-version retention bug: a snapshot
/// registered below `wv` still needs the displaced version. The checker
/// must catch it, and the failure must replay from its trace.
#[test]
fn mvcc_early_prune_is_caught_and_replays() {
    let mutated = mvcc::MvccModel { early_prune: true };
    let report = check(Config::pct(0x37CC, 256), mvcc::model(mutated));
    let failure = report.expect_failure().clone();
    assert!(
        matches!(failure.kind, FailureKind::Panic | FailureKind::Race),
        "early prune must surface as a poisoned snapshot read, got {:?}",
        failure.kind
    );

    let replayed = check(Config::replay_trace(&failure.trace), mvcc::model(mutated));
    let rf = replayed.expect_failure();
    assert_eq!(rf.kind, failure.kind, "trace replay reproduces the kind");
    assert_eq!(
        rf.trace, failure.trace,
        "trace replay reproduces the schedule"
    );
}

/// The B-tree's one-commit-per-structural-change discipline passes:
/// under every explored schedule a validated parent → child descent
/// finds the probe key through split and merge, and the opacity oracle
/// (validated reads form a consistent cut) holds.
#[test]
fn btree_atomic_split_merge_passes() {
    let report = check(
        Config::pct(0xB7EE, rubic_check::env_iters(128)),
        btree::model(btree::BTreeModel::default()),
    );
    report.assert_ok();
}

/// Mutation self-test: publishing a split as two commits leaves a
/// window where the moved keys are unreachable through the routing even
/// though every per-slot read validates. The checker must catch the
/// torn lookup within a bounded budget, and the failure must replay
/// from both its decision trace and its `(seed, iteration)` pair.
#[test]
fn btree_non_atomic_split_is_caught_and_replays() {
    let mutated = btree::BTreeModel {
        non_atomic_split: true,
    };
    let report = check(Config::pct(0xB7EE, 256), btree::model(mutated));
    let failure = report.expect_failure().clone();
    assert!(
        matches!(failure.kind, FailureKind::Panic | FailureKind::Race),
        "torn split must surface as a lost-key panic, got {:?}",
        failure.kind
    );

    // Replay 1: exact decision trace.
    let replayed = check(Config::replay_trace(&failure.trace), btree::model(mutated));
    let rf = replayed.expect_failure();
    assert_eq!(rf.kind, failure.kind, "trace replay reproduces the kind");
    assert_eq!(
        rf.trace, failure.trace,
        "trace replay reproduces the schedule"
    );

    // Replay 2: (seed, iteration, est_len), the chaos-style contract.
    let again = check(
        Config::pct_at_len(failure.seed, failure.iteration, failure.est_len),
        btree::model(mutated),
    );
    let af = again.expect_failure();
    assert_eq!(af.kind, failure.kind);
    assert_eq!(af.trace, failure.trace);
}

/// Correct three-epoch reclamation passes: nobody dereferences a freed
/// slot under any explored schedule, and all accesses stay ordered.
#[test]
fn epoch_correct_horizon_passes() {
    let report = check(
        Config::pct(0xE0C, rubic_check::env_iters(128)),
        epoch::model(epoch::EpochModel::default()),
    );
    report.assert_ok();
}

/// Draining one epoch early is the canonical reclamation bug: a pinned
/// reader can still hold the slot. The checker must find it.
#[test]
fn epoch_early_free_is_caught() {
    let report = check(
        Config::pct(0xE0C, 256),
        epoch::model(epoch::EpochModel { early_free: true }),
    );
    let failure = report.expect_failure();
    assert!(
        matches!(failure.kind, FailureKind::Panic | FailureKind::Race),
        "early free must surface as poisoned-read panic or race, got {:?}",
        failure.kind
    );

    // And it replays.
    let replayed = check(
        Config::replay_trace(&failure.trace),
        epoch::model(epoch::EpochModel { early_free: true }),
    );
    assert_eq!(replayed.expect_failure().kind, failure.kind);
}
