//! Engine-level tests: the checker must find planted concurrency bugs
//! and stay quiet on correct protocols, deterministically.

use std::sync::Arc;

use rubic_check::sync::atomic::{AtomicU64, Ordering};
use rubic_check::sync::{thread, Condvar, Mutex, RaceCell};
use rubic_check::{check, Config, FailureKind};

/// Message passing with a Release/Acquire pair is clean under DFS
/// (exhaustive for this model size).
#[test]
fn release_acquire_passes_exhaustively() {
    let report = check(Config::dfs(10_000), || {
        let data = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.set(7);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.get(), 7);
        }
        t.join().unwrap();
    });
    report.assert_ok();
    assert!(report.exhausted, "model is small enough to enumerate");
    assert!(report.executions > 1, "must explore several interleavings");
}

/// The same model with no flag at all: a straight data race, which DFS
/// must find.
#[test]
fn unsynchronized_write_read_is_a_race() {
    let report = check(Config::dfs(10_000), || {
        let data = Arc::new(RaceCell::new(0u64));
        let d2 = Arc::clone(&data);
        let t = thread::spawn(move || d2.set(7));
        let _ = data.get();
        t.join().unwrap();
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Race);
    assert!(
        failure.message.contains("engine.rs") || failure.message.contains("tests"),
        "race report names source locations: {}",
        failure.message
    );
}

/// Relaxed publication: the acquire load can observe the flag while the
/// payload write is unordered — both the weak-pair detector and the
/// race detector can catch it.
#[test]
fn relaxed_publication_is_flagged() {
    let report = check(Config::dfs(10_000), || {
        let data = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.set(7);
            f2.store(1, Ordering::Relaxed); // bug: should be Release
        });
        if flag.load(Ordering::Acquire) == 1 {
            let _ = data.get();
        }
        t.join().unwrap();
    });
    let failure = report.expect_failure();
    assert!(
        matches!(failure.kind, FailureKind::WeakOrdering | FailureKind::Race),
        "got {:?}",
        failure.kind
    );
}

/// Mutexed increments are clean and sum correctly.
#[test]
fn mutex_counter_passes() {
    let report = check(Config::dfs(10_000), || {
        let n = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || *n.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock(), 2);
    });
    report.assert_ok();
    assert!(report.exhausted);
}

/// Classic ABBA deadlock: DFS must find the interleaving where both
/// threads hold one lock and want the other.
#[test]
fn abba_deadlock_is_found() {
    let report = check(Config::dfs(10_000), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join().unwrap();
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("engine.rs"),
        "deadlock report names blocked sites: {}",
        failure.message
    );
}

/// A condvar wait with no one left to signal is a deadlock (untimed
/// waits are never force-woken).
#[test]
fn lost_wakeup_untimed_is_deadlock() {
    let report = check(Config::dfs(10_000), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            // Bug: no while loop and the notifier may run first without
            // setting the flag... here the notifier never notifies at
            // all, so some schedule parks forever.
            if !*ready {
                cv.wait(&mut ready);
            }
            let _ = *ready;
        });
        {
            let (m, _cv) = &*pair;
            *m.lock() = false; // touches the mutex, never notifies
        }
        t.join().unwrap();
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// Correct condvar handshake passes exhaustively, timed or not.
#[test]
fn condvar_handshake_passes() {
    let report = check(Config::dfs(10_000), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    });
    report.assert_ok();
    assert!(report.exhausted);
}

/// A failing execution replays exactly from its trace: same kind, same
/// schedule.
#[test]
fn failure_replays_from_trace() {
    fn model() -> impl Fn() + Send + Sync + 'static {
        || {
            let data = Arc::new(RaceCell::new(0u64));
            let d2 = Arc::clone(&data);
            let t = thread::spawn(move || d2.set(7));
            let _ = data.get();
            t.join().unwrap();
        }
    }
    let report = check(Config::pct(42, 64), model());
    let failure = report.expect_failure().clone();

    let replayed = check(Config::replay_trace(&failure.trace), model());
    let rf = replayed.expect_failure();
    assert_eq!(rf.kind, failure.kind);
    assert_eq!(rf.trace, failure.trace);

    // And via (seed, iteration), the chaos-style replay contract.
    let again = check(Config::pct_at(failure.seed, failure.iteration), model());
    let af = again.expect_failure();
    assert_eq!(af.kind, failure.kind);
    assert_eq!(af.trace, failure.trace);
}

/// Two PCT runs with the same seed produce identical outcomes; a
/// different seed is allowed to differ (and usually does).
#[test]
fn pct_is_seed_deterministic() {
    fn model() -> impl Fn() + Send + Sync + 'static {
        || {
            let a = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                a2.fetch_add(1, Ordering::AcqRel);
            });
            a.fetch_add(1, Ordering::AcqRel);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::Acquire), 2);
        }
    }
    let r1 = check(Config::pct(7, 16), model());
    let r2 = check(Config::pct(7, 16), model());
    r1.assert_ok();
    r2.assert_ok();
    assert_eq!(r1.executions, r2.executions);
}

/// Atomics alone (no RaceCell) with relaxed counters are fine: relaxed
/// RMWs neither race nor break release sequences.
#[test]
fn relaxed_rmw_counter_is_clean() {
    let report = check(Config::dfs(10_000), || {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Acquire), 2);
    });
    report.assert_ok();
    assert!(report.exhausted);
}

/// An assertion failure in model code is reported as a panic with the
/// schedule attached, and does not abort the harness.
#[test]
fn model_panic_is_captured() {
    let report = check(Config::pct(3, 8), || {
        let a = Arc::new(AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || a2.store(1, Ordering::Release));
        t.join().unwrap();
        assert_eq!(a.load(Ordering::Acquire), 2, "planted assertion failure");
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("planted assertion failure"));
}

/// The step budget converts runaway spins into a reported failure
/// rather than a hang.
#[test]
fn spin_loop_hits_step_budget() {
    let report = check(Config::pct(1, 4).with_max_steps(300), || {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            // Never satisfied: nobody stores 1.
            while f2.load(Ordering::Acquire) == 0 {
                thread::yield_now();
            }
        });
        t.join().unwrap();
    });
    let failure = report.expect_failure();
    assert_eq!(failure.kind, FailureKind::StepBudget);
}
