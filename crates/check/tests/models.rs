//! Model checks driven through the **real** workspace types.
//!
//! This file only compiles under `RUSTFLAGS="--cfg rubic_check"`: the
//! `rubic-sync` facade then re-exports the checker's primitives, so
//! `rubic-stm`'s versioned locks, `rubic-runtime`'s semaphore, and the
//! sharded queue all run on the controlled scheduler — the code under
//! test is the production code, not a restatement of it.
//!
//! The two protocols that *are* restated as knob-bearing models
//! (`rubic_check::models::{vlock, epoch}`) get their checks in
//! `models_builtin.rs`, which runs in every build.
#![cfg(rubic_check)]

use std::sync::Arc;
use std::time::Duration;

use rubic_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use rubic_check::sync::thread;
use rubic_check::{check, env_iters, Config};
use rubic_runtime::sharded::ShardedWorkload;
use rubic_runtime::{Semaphore, Workload};
use rubic_stm::clock;
use rubic_stm::vlock::VLock;

/// `rubic-stm`'s global version clock is process-wide; checks that
/// tick it must not interleave with each other or their clock values
/// become schedule-dependent across executions.
static CLOCK_USERS: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Opacity on the real versioned lock + global clock: a reader that
/// samples the same unlocked word before and after its payload load
/// observed a consistent (version, value) pair — the exact protocol
/// `txn.rs` builds its invisible reads on, run on the production
/// `VLock` and `clock` under the controlled scheduler.
#[test]
fn real_vlock_commit_is_opaque_to_samplers() {
    let _serial = CLOCK_USERS.lock().unwrap_or_else(|e| e.into_inner());
    let report = check(Config::pct(0x51A, env_iters(128)), || {
        let lock = Arc::new(VLock::new(0));
        // Payload mirrors `tvar.rs`: a relaxed atomic slot whose
        // consistency is established by the lock protocol, not by its
        // own ordering.
        let payload = Arc::new(AtomicU64::new(0));
        let (l2, p2) = (Arc::clone(&lock), Arc::clone(&payload));

        let writer = thread::spawn(move || {
            let w = l2.sample();
            if !w.is_locked() && l2.try_lock(w) {
                p2.store(1, Ordering::Relaxed);
                let ts = clock::tick();
                l2.release_commit(ts);
                return Some(ts);
            }
            None
        });

        // Reader: sample → load → re-sample, as in `Transaction::read`.
        let w1 = lock.sample();
        if !w1.is_locked() {
            let value = payload.load(Ordering::Relaxed);
            let w2 = lock.sample();
            if w2 == w1 {
                // Consistent observation: version 0 must still carry
                // the initial payload; any later version carries the
                // committed one.
                if w1.version() == 0 {
                    assert_eq!(value, 0, "pre-commit version with post-commit payload");
                } else {
                    assert_eq!(value, 1, "post-commit version with pre-commit payload");
                }
            }
        }
        let ts = writer.join().expect("writer");
        if let Some(ts) = ts {
            let after = lock.sample();
            assert!(!after.is_locked(), "commit must leave the lock released");
            assert_eq!(after.version(), ts, "commit must install its timestamp");
            assert!(clock::now() >= ts, "clock runs ahead of every stamp");
        }
    });
    report.assert_ok();
}

/// Two committers racing from the **same sampled word**: at most one
/// CAS may win — the other's expectation is stale the instant the
/// winner locks or re-versions the word. This is the write/write
/// conflict-detection half of the TL2 protocol.
#[test]
fn real_vlock_stale_word_never_acquires() {
    let _serial = CLOCK_USERS.lock().unwrap_or_else(|e| e.into_inner());
    let report = check(Config::pct(0x51B, env_iters(128)), || {
        let lock = Arc::new(VLock::new(0));
        let w0 = lock.sample();
        let commit = move |l: &VLock| {
            if l.try_lock(w0) {
                l.release_commit(clock::tick());
                1u32
            } else {
                0u32
            }
        };
        let l2 = Arc::clone(&lock);
        let t = thread::spawn(move || commit(&l2));
        let mine = commit(&lock);
        let theirs = t.join().expect("committer");
        assert_eq!(
            mine + theirs,
            1,
            "exactly one committer may win the sampled word"
        );
        assert!(!lock.sample().is_locked(), "no one may leak the lock");
        assert!(
            lock.sample().version() > 0,
            "the winner must have stamped its commit"
        );
    });
    report.assert_ok();
}

/// No lost wakeup on the real semaphore: an untimed waiter and a
/// signaller in every interleaving — a lost signal would park the
/// waiter forever and surface as a deadlock report.
#[test]
fn real_semaphore_wait_signal_no_lost_wakeup() {
    let report = check(Config::dfs(20_000), || {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || s2.wait());
        s.signal();
        waiter.join().expect("waiter");
        assert_eq!(s.permits(), 0, "the permit must be consumed exactly once");
    });
    report.assert_ok();
}

/// The paper's admission protocol (Algorithm 1) on the real semaphore:
/// the monitor clears the gate *then* signals; the worker re-checks the
/// gate under the semaphore's lock. Under every interleaving the worker
/// is admitted and the banked permit is consumed, never accumulated.
#[test]
fn real_semaphore_admission_consumes_banked_permit() {
    let report = check(Config::pct(0xAD1, env_iters(192)), || {
        let s = Arc::new(Semaphore::new(0));
        let gated = Arc::new(AtomicBool::new(true));
        let (s2, g2) = (Arc::clone(&s), Arc::clone(&gated));

        let worker = thread::spawn(move || {
            // The timeout is a liveness backstop in production; the
            // checker only force-times-out a waiter when nothing else
            // can run, so an admission bug shows up as a failure, not
            // as a silent timeout.
            s2.wait_while(Duration::from_secs(3600), || g2.load(Ordering::Acquire))
        });

        // Monitor: publish the new level, then wake (state first,
        // signal second — the order `pool.rs` relies on).
        gated.store(false, Ordering::Release);
        s.signal_n(1);

        let admitted = worker.join().expect("worker");
        assert!(admitted, "state-before-signal admission must never be lost");
        // A worker that observed the cleared gate before the signal
        // landed is admitted on the fast path and leaves the permit
        // banked; a parked worker consumes it. Either way the count is
        // bounded by the one signal — over-accumulation would show as 2+.
        assert!(
            s.permits() <= 1,
            "admission must never multiply permits (found {})",
            s.permits()
        );
    });
    report.assert_ok();
}

/// A signal aimed at a still-gated waiter must not admit it: the
/// predicate, not the permit count, decides. The banked permits stay
/// banked for the thread they were meant for.
#[test]
fn real_semaphore_gated_waiter_ignores_foreign_permits() {
    let report = check(Config::pct(0xAD2, env_iters(128)), || {
        let s = Arc::new(Semaphore::new(0));
        let admitted = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(AtomicBool::new(true));
        let (s2, a2, g2) = (Arc::clone(&s), Arc::clone(&admitted), Arc::clone(&gate));

        // This waiter's own gate never clears; a permit meant for
        // another worker arrives while it is parked.
        let waiter = thread::spawn(move || {
            let ok = s2.wait_while(Duration::from_millis(1), || {
                // Admission would be a protocol violation; record it
                // instead of asserting inside the closure (the closure
                // runs under the semaphore's lock).
                g2.load(Ordering::Acquire)
            });
            if ok {
                a2.store(true, Ordering::Release);
            }
        });
        s.signal_n(2);
        waiter.join().expect("waiter");
        assert!(
            !admitted.load(Ordering::Acquire),
            "a still-gated waiter stole a foreign permit"
        );
        assert_eq!(s.permits(), 2, "foreign permits must stay banked");
        drop(gate);
    });
    report.assert_ok();
}

/// Exactly-once accounting on the real sharded queue, pool-free: every
/// sent item is handled once (the handler counts), `processed` agrees,
/// and the drain latch fires with `queued == 0` under every explored
/// schedule — covering push, local pop, steal, and drain detection.
#[test]
fn real_sharded_queue_accounts_exactly_once() {
    const ITEMS: u64 = 4;
    let report = check(Config::pct(0x5AD, env_iters(96)), || {
        let handled = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&handled);
        // Two shards, batch 1: with one item per send round-robined
        // across shards, a worker must steal to finish alone.
        let (workload, sender) = ShardedWorkload::with_batch(2, 8, 1, move |_n: u64| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        let handle = workload.handle();
        // Close the queue before the workers start: the model then has
        // a guaranteed drain point and cannot idle forever.
        sender.send_batch(0..ITEMS).expect("queue open");
        drop(sender);

        let workload = Arc::new(workload);
        let w2 = Arc::clone(&workload);
        let h = handle.clone();
        let worker = thread::spawn(move || {
            let mut state = w2.init_worker(1);
            while !h.is_drained() {
                w2.run_task(&mut state);
            }
        });
        let mut state = workload.init_worker(0);
        while !handle.is_drained() {
            workload.run_task(&mut state);
        }
        worker.join().expect("worker");

        assert_eq!(
            handled.load(Ordering::Relaxed),
            ITEMS,
            "every item must be handled exactly once"
        );
        assert_eq!(handle.processed(), ITEMS, "processed counter must agree");
        assert_eq!(handle.queued(), 0, "drain fired with items still queued");
        assert!(handle.is_drained(), "drain latch must stay fired");
    });
    report.assert_ok();
}
