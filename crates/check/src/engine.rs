//! The controlled scheduler.
//!
//! Model code runs on real OS threads, but a *baton* — `ExecState::active`
//! — ensures exactly one controlled thread executes between scheduling
//! points. Every visible operation (atomic access, mutex op, condvar op,
//! spawn/join/finish) first offers a handoff: the engine consults the
//! exploration strategy, picks the next thread from the enabled set, and
//! records the choice, so any execution replays exactly from its decision
//! trace.
//!
//! On top of the schedule the engine maintains vector clocks
//! ([`crate::vclock::VClock`]): mutex release/acquire and
//! release/acquire atomics transfer clocks, `Relaxed` accesses do not.
//! [`RaceCell`](crate::sync::RaceCell) accesses are checked
//! FastTrack-style against those clocks; conflicting accesses with no
//! happens-before edge abort the execution with a race report. A
//! secondary detector flags an `Acquire` load that observes a plain
//! `Relaxed` store it has no other ordering edge to — the "too weak
//! ordering" case where the code *shape* expects synchronization the
//! store side does not provide.
//!
//! Blocked-thread monitoring falls out of the scheduler: if no thread is
//! runnable and no timed waiter remains to force-time-out, the execution
//! deadlocked and the engine reports every blocked thread with its last
//! source location. A step budget bounds livelocks the same way.
//!
//! Threads that are not running under a checker (no thread-local
//! context) bypass the engine entirely — the checked primitives in
//! [`crate::sync`] degrade to plain operations.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::strategy::Strat;
use crate::vclock::VClock;
use crate::FailureKind;

/// Source location of a primitive operation (for reports).
pub(crate) type Loc = &'static std::panic::Location<'static>;

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// Set while this thread unwinds out of an abandoned execution;
    /// primitives short-circuit to plain operations so drop glue cannot
    /// deadlock or double-panic.
    static ABANDONING: Cell<bool> = const { Cell::new(false) };
}

/// Per-OS-thread link to the engine driving it.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) engine: Arc<Engine>,
    pub(crate) tid: usize,
}

/// Runs `f` with this thread's checker context, or returns `None` when
/// the thread is not controlled (or is unwinding from an abandon).
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    if ABANDONING.with(Cell::get) {
        return None;
    }
    CTX.with(|c| c.borrow().as_ref().map(f))
}

/// Panic payload used to unwind controlled threads when an execution is
/// abandoned (failure found elsewhere). Swallowed by the thread wrapper.
pub(crate) struct AbandonToken;

fn abandon() -> ! {
    ABANDONING.with(|a| a.set(true));
    std::panic::panic_any(AbandonToken);
}

fn is_acquire(o: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::{AcqRel, Acquire, SeqCst};
    matches!(o, Acquire | AcqRel | SeqCst)
}

fn is_release(o: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::{AcqRel, Release, SeqCst};
    matches!(o, Release | AcqRel | SeqCst)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCv { cv: usize, timed: bool },
    BlockedJoin(usize),
    Finished,
}

struct TState {
    status: Status,
    clock: VClock,
    /// Result of the last condvar wait: true when force-timed-out.
    timed_out: bool,
    /// FIFO ticket for condvar wakeup order.
    wait_seq: u64,
    /// Set by `reschedule` when this thread is picked; cleared when the
    /// grant is consumed in `wait_turn`. Keeps the decision count per
    /// op independent of whether the thread's OS host had already
    /// parked when it was picked (late arrivals must not hand off an
    /// extra time).
    pending_grant: bool,
    name: String,
    last_loc: Option<Loc>,
}

#[derive(Default)]
struct MutexMeta {
    owner: Option<usize>,
    clock: VClock,
}

struct StoreInfo {
    tid: usize,
    clock: VClock,
    release: bool,
    rmw: bool,
    loc: Loc,
}

#[derive(Default)]
struct AtomicMeta {
    /// Clock an acquiring load joins: the release-sequence head's clock
    /// (extended by release RMWs, cleared by plain relaxed stores).
    sync: VClock,
    last_store: Option<StoreInfo>,
}

#[derive(Default)]
struct CellMeta {
    /// Last write epoch: (tid, component, location).
    write: Option<(usize, u64, Loc)>,
    /// Read epochs since the last write, one per reading thread.
    reads: Vec<(usize, u64, Loc)>,
}

pub(crate) struct ExecState {
    threads: Vec<TState>,
    active: usize,
    schedule: Vec<u32>,
    strat: Strat,
    steps: u64,
    failure: Option<(FailureKind, String)>,
    abandoning: bool,
    done: bool,
    next_wait_seq: u64,
    atomics: HashMap<usize, AtomicMeta>,
    cells: HashMap<usize, CellMeta>,
    mutexes: HashMap<usize, MutexMeta>,
}

/// Result of one execution.
pub(crate) struct Outcome {
    pub(crate) failure: Option<(FailureKind, String)>,
    pub(crate) schedule: Vec<u32>,
    pub(crate) steps: u64,
    pub(crate) strat: Strat,
}

pub(crate) struct Engine {
    st: Mutex<ExecState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    max_steps: u64,
    detect_weak: bool,
}

enum Finish {
    Normal,
    Abandoned,
    Panicked(Box<dyn std::any::Any + Send>),
}

impl Engine {
    /// Runs `model` once under the given strategy and returns the
    /// outcome. Blocks until every controlled thread has exited.
    pub(crate) fn run(
        model: Arc<dyn Fn() + Send + Sync>,
        mut strat: Strat,
        max_steps: u64,
        detect_weak: bool,
    ) -> Outcome {
        strat.on_spawn(0);
        // The root's own component starts ticked so its events are
        // distinguishable from the pre-spawn state other threads
        // inherit (see `spawn_controlled`).
        let mut root_clock = VClock::new();
        root_clock.tick(0);
        let engine = Arc::new(Engine {
            st: Mutex::new(ExecState {
                threads: vec![TState {
                    status: Status::Runnable,
                    clock: root_clock,
                    timed_out: false,
                    wait_seq: 0,
                    // Active from birth: its first op must not hand off.
                    pending_grant: true,
                    name: "main".to_string(),
                    last_loc: None,
                }],
                active: 0,
                schedule: Vec::new(),
                strat,
                steps: 0,
                failure: None,
                abandoning: false,
                done: false,
                next_wait_seq: 0,
                atomics: HashMap::new(),
                cells: HashMap::new(),
                mutexes: HashMap::new(),
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            max_steps,
            detect_weak,
        });

        let root = spawn_wrapper(&engine, 0, Box::new(move || model()));
        engine
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(root);

        // Wait for the execution to complete, then reap every OS thread
        // it spawned (abandoned threads unwind and exit on their own).
        {
            let mut st = engine.lock();
            while !st.done {
                st = engine.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        loop {
            let h = engine
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }

        let mut st = engine.lock();
        Outcome {
            failure: st.failure.take(),
            schedule: std::mem::take(&mut st.schedule),
            steps: st.steps,
            strat: std::mem::replace(
                &mut st.strat,
                Strat::Replay {
                    trace: Vec::new(),
                    pos: 0,
                },
            ),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a failure (first one wins) and abandons the execution:
    /// every controlled thread wakes, observes `abandoning`, and unwinds.
    fn fail_now(&self, st: &mut ExecState, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            st.failure = Some((kind, message));
        }
        st.abandoning = true;
        self.cv.notify_all();
    }

    /// Picks the next thread to run. On `Err` the execution was failed
    /// (deadlock / step budget) and the caller must unwind.
    fn reschedule(&self, st: &mut ExecState) -> Result<(), ()> {
        st.steps += 1;
        if st.steps > self.max_steps {
            let msg = format!(
                "step budget exceeded ({} scheduling points): livelock, or raise Config::max_steps",
                self.max_steps
            );
            self.fail_now(st, FailureKind::StepBudget, msg);
            return Err(());
        }
        loop {
            let enabled: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Runnable)
                .map(|(i, _)| i)
                .collect();
            if !enabled.is_empty() {
                let step = st.steps;
                let i = st.strat.choose(&enabled, step);
                st.schedule.push(i as u32);
                st.active = enabled[i];
                st.threads[st.active].pending_grant = true;
                return Ok(());
            }
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.done = true;
                self.cv.notify_all();
                return Ok(());
            }
            // Nothing runnable. A timed waiter can be forced to time
            // out (FIFO order keeps this deterministic); with none left
            // the execution is deadlocked.
            let timed = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::BlockedCv { timed: true, .. }))
                .min_by_key(|(_, t)| t.wait_seq)
                .map(|(i, _)| i);
            if let Some(tid) = timed {
                st.threads[tid].timed_out = true;
                st.threads[tid].status = Status::Runnable;
                continue;
            }
            let mut lines = vec!["deadlock: no runnable threads".to_string()];
            for (i, t) in st.threads.iter().enumerate() {
                if t.status == Status::Finished {
                    continue;
                }
                let what = match &t.status {
                    Status::BlockedMutex(a) => format!("waiting for mutex {a:#x}"),
                    Status::BlockedCv { cv, .. } => format!("waiting on condvar {cv:#x}"),
                    Status::BlockedJoin(t) => format!("joining thread {t}"),
                    _ => "unknown".to_string(),
                };
                let loc = t
                    .last_loc
                    .map_or_else(|| "<unknown>".to_string(), |l| l.to_string());
                lines.push(format!("  thread {i} ({}) {what} at {loc}", t.name));
            }
            self.fail_now(st, FailureKind::Deadlock, lines.join("\n"));
            return Err(());
        }
    }

    /// Blocks until this thread holds the baton (or the execution is
    /// being abandoned).
    fn wait_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        while !st.abandoning && (st.active != tid || st.threads[tid].status != Status::Runnable) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if !st.abandoning {
            // The grant is consumed: this thread's next scheduling
            // point hands the baton off again.
            st.threads[tid].pending_grant = false;
        }
        st
    }

    /// Scheduling point: if this thread holds the baton, offer a
    /// handoff; then block until (re)scheduled and return with the baton
    /// held and the state locked. Unwinds if the execution is abandoned.
    ///
    /// Only the baton holder may consume a scheduling decision — a
    /// non-active thread arriving here (a freshly spawned thread's
    /// first op, or a woken waiter) parks without touching the
    /// strategy, otherwise decisions would interleave in OS-arrival
    /// order and traces would not replay.
    fn enter(&self, tid: usize, loc: Loc) -> MutexGuard<'_, ExecState> {
        let mut st = self.lock();
        st.threads[tid].last_loc = Some(loc);
        if st.abandoning {
            drop(st);
            abandon();
        }
        if st.active == tid && !st.threads[tid].pending_grant {
            if self.reschedule(&mut st).is_err() {
                drop(st);
                abandon();
            }
            self.cv.notify_all();
        }
        let st = self.wait_turn(st, tid);
        if st.abandoning {
            drop(st);
            abandon();
        }
        st
    }

    /// A pure scheduling point (yield/sleep, or paired with a value
    /// operation the caller performs while holding the baton).
    pub(crate) fn op_yield(&self, tid: usize, loc: Loc) {
        drop(self.enter(tid, loc));
    }

    // ------------------------------------------------------------------
    // Atomics. The caller performs the actual value operation on a real
    // atomic immediately after `op_yield` (it holds the baton, so no
    // other controlled thread can interleave); these methods record the
    // happens-before effects of the *claimed* ordering.
    // ------------------------------------------------------------------

    pub(crate) fn note_load(
        &self,
        tid: usize,
        addr: usize,
        ord: std::sync::atomic::Ordering,
        loc: Loc,
    ) {
        let mut st = self.lock();
        let weak = {
            let stx = &mut *st;
            let meta = stx.atomics.entry(addr).or_default();
            let thr = &mut stx.threads[tid];
            if is_acquire(ord) {
                thr.clock.join(&meta.sync);
            }
            match &meta.last_store {
                Some(s)
                    if self.detect_weak
                        && is_acquire(ord)
                        && s.tid != tid
                        && !s.release
                        && !s.rmw
                        && !s.clock.le(&thr.clock) =>
                {
                    Some(format!(
                        "too-weak ordering: {} load at {loc} observes a Relaxed store by thread {} at {} \
                         with no happens-before edge — the store needs Release (or the pairing is bogus)",
                        ord_name(ord),
                        s.tid,
                        s.loc
                    ))
                }
                _ => None,
            }
        };
        if let Some(msg) = weak {
            self.fail_now(&mut st, FailureKind::WeakOrdering, msg);
            drop(st);
            abandon();
        }
    }

    pub(crate) fn note_store(
        &self,
        tid: usize,
        addr: usize,
        ord: std::sync::atomic::Ordering,
        loc: Loc,
    ) {
        let mut st = self.lock();
        let stx = &mut *st;
        let meta = stx.atomics.entry(addr).or_default();
        let thr = &mut stx.threads[tid];
        let releasing = is_release(ord);
        if releasing {
            meta.sync = thr.clock.clone();
        } else {
            // A plain relaxed store heads a new (empty) release
            // sequence: later acquire loads that read it synchronize
            // with nothing.
            meta.sync.clear();
        }
        meta.last_store = Some(StoreInfo {
            tid,
            clock: thr.clock.clone(),
            release: releasing,
            rmw: false,
            loc,
        });
        if releasing {
            thr.clock.tick(tid);
        }
    }

    pub(crate) fn note_rmw(
        &self,
        tid: usize,
        addr: usize,
        ord: std::sync::atomic::Ordering,
        loc: Loc,
    ) {
        let mut st = self.lock();
        let stx = &mut *st;
        let meta = stx.atomics.entry(addr).or_default();
        let thr = &mut stx.threads[tid];
        if is_acquire(ord) {
            thr.clock.join(&meta.sync);
        }
        let releasing = is_release(ord);
        if releasing {
            // RMWs extend the release sequence they land in.
            meta.sync.join(&thr.clock);
        }
        // A relaxed RMW continues the sequence untouched (C++11
        // [atomics.order]): acquire loads of it still synchronize with
        // the sequence head.
        meta.last_store = Some(StoreInfo {
            tid,
            clock: thr.clock.clone(),
            release: releasing,
            rmw: true,
            loc,
        });
        if releasing {
            thr.clock.tick(tid);
        }
    }

    pub(crate) fn note_cas(
        &self,
        tid: usize,
        addr: usize,
        success: std::sync::atomic::Ordering,
        failure: std::sync::atomic::Ordering,
        ok: bool,
        loc: Loc,
    ) {
        if ok {
            self.note_rmw(tid, addr, success, loc);
        } else {
            self.note_load(tid, addr, failure, loc);
        }
    }

    // ------------------------------------------------------------------
    // RaceCell: FastTrack-style plain-data race detection.
    // ------------------------------------------------------------------

    pub(crate) fn cell_read(&self, tid: usize, addr: usize, loc: Loc) {
        let mut st = self.lock();
        let race = {
            let stx = &mut *st;
            let meta = stx.cells.entry(addr).or_default();
            let thr = &stx.threads[tid];
            let race = match meta.write {
                Some((wt, wc, wloc)) if wt != tid && thr.clock.get(wt) < wc => Some(format!(
                    "data race: read at {loc} (thread {tid}) of a value written at {wloc} \
                     (thread {wt}) with no happens-before edge"
                )),
                _ => None,
            };
            if race.is_none() {
                let epoch = thr.clock.get(tid);
                match meta.reads.iter_mut().find(|(t, ..)| *t == tid) {
                    Some(e) => *e = (tid, epoch, loc),
                    None => meta.reads.push((tid, epoch, loc)),
                }
            }
            race
        };
        if let Some(msg) = race {
            self.fail_now(&mut st, FailureKind::Race, msg);
            drop(st);
            abandon();
        }
    }

    pub(crate) fn cell_write(&self, tid: usize, addr: usize, loc: Loc) {
        let mut st = self.lock();
        let race = {
            let stx = &mut *st;
            let meta = stx.cells.entry(addr).or_default();
            let thr = &stx.threads[tid];
            let mut race = match meta.write {
                Some((wt, wc, wloc)) if wt != tid && thr.clock.get(wt) < wc => Some(format!(
                    "data race: write at {loc} (thread {tid}) over a write at {wloc} \
                     (thread {wt}) with no happens-before edge"
                )),
                _ => None,
            };
            if race.is_none() {
                for &(rt, rc, rloc) in &meta.reads {
                    if rt != tid && thr.clock.get(rt) < rc {
                        race = Some(format!(
                            "data race: write at {loc} (thread {tid}) while a read at {rloc} \
                             (thread {rt}) has no happens-before edge to it"
                        ));
                        break;
                    }
                }
            }
            if race.is_none() {
                meta.write = Some((tid, thr.clock.get(tid), loc));
                meta.reads.clear();
            }
            race
        };
        if let Some(msg) = race {
            self.fail_now(&mut st, FailureKind::Race, msg);
            drop(st);
            abandon();
        }
    }

    // ------------------------------------------------------------------
    // Mutex / Condvar.
    // ------------------------------------------------------------------

    pub(crate) fn mutex_lock(&self, tid: usize, addr: usize, loc: Loc) {
        let mut st = self.enter(tid, loc);
        loop {
            let stx = &mut *st;
            let m = stx.mutexes.entry(addr).or_default();
            if m.owner.is_none() {
                m.owner = Some(tid);
                stx.threads[tid].clock.join(&m.clock);
                return;
            }
            stx.threads[tid].status = Status::BlockedMutex(addr);
            if self.reschedule(stx).is_err() {
                drop(st);
                abandon();
            }
            self.cv.notify_all();
            st = self.wait_turn(st, tid);
            if st.abandoning {
                drop(st);
                abandon();
            }
        }
    }

    pub(crate) fn mutex_try_lock(&self, tid: usize, addr: usize, loc: Loc) -> bool {
        let mut st = self.enter(tid, loc);
        let stx = &mut *st;
        let m = stx.mutexes.entry(addr).or_default();
        if m.owner.is_none() {
            m.owner = Some(tid);
            stx.threads[tid].clock.join(&m.clock);
            true
        } else {
            false
        }
    }

    /// Releases `addr` and wakes its blocked acquirers (they re-contend;
    /// the winner is a later scheduling decision).
    fn unlock_inner(&self, st: &mut ExecState, tid: usize, addr: usize) {
        let m = st.mutexes.entry(addr).or_default();
        debug_assert_eq!(m.owner, Some(tid), "unlock of a mutex not held");
        m.owner = None;
        m.clock = st.threads[tid].clock.clone();
        st.threads[tid].clock.tick(tid);
        for t in &mut st.threads {
            if t.status == Status::BlockedMutex(addr) {
                t.status = Status::Runnable;
            }
        }
    }

    pub(crate) fn mutex_unlock(&self, tid: usize, addr: usize, loc: Loc) {
        let mut st = self.enter(tid, loc);
        self.unlock_inner(&mut st, tid, addr);
    }

    /// Releases the mutex, parks on the condvar, and reacquires the
    /// mutex after wakeup. Returns `true` when the wakeup was a forced
    /// timeout rather than a notify.
    pub(crate) fn condvar_wait(
        &self,
        tid: usize,
        cv_addr: usize,
        mutex_addr: usize,
        timed: bool,
        loc: Loc,
    ) -> bool {
        let mut st = self.enter(tid, loc);
        self.unlock_inner(&mut st, tid, mutex_addr);
        {
            let stx = &mut *st;
            stx.threads[tid].timed_out = false;
            stx.threads[tid].wait_seq = stx.next_wait_seq;
            stx.next_wait_seq += 1;
            stx.threads[tid].status = Status::BlockedCv { cv: cv_addr, timed };
            if self.reschedule(stx).is_err() {
                drop(st);
                abandon();
            }
        }
        self.cv.notify_all();
        st = self.wait_turn(st, tid);
        if st.abandoning {
            drop(st);
            abandon();
        }
        // Reacquire the mutex (possibly blocking again).
        loop {
            let stx = &mut *st;
            let m = stx.mutexes.entry(mutex_addr).or_default();
            if m.owner.is_none() {
                m.owner = Some(tid);
                stx.threads[tid].clock.join(&m.clock);
                return stx.threads[tid].timed_out;
            }
            stx.threads[tid].status = Status::BlockedMutex(mutex_addr);
            if self.reschedule(stx).is_err() {
                drop(st);
                abandon();
            }
            self.cv.notify_all();
            st = self.wait_turn(st, tid);
            if st.abandoning {
                drop(st);
                abandon();
            }
        }
    }

    pub(crate) fn condvar_notify(&self, tid: usize, cv_addr: usize, all: bool, loc: Loc) {
        let mut st = self.enter(tid, loc);
        loop {
            let next = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::BlockedCv { cv, .. } if cv == cv_addr))
                .min_by_key(|(_, t)| t.wait_seq)
                .map(|(i, _)| i);
            match next {
                Some(w) => {
                    st.threads[w].timed_out = false;
                    st.threads[w].status = Status::Runnable;
                    if !all {
                        return;
                    }
                }
                None => return,
            }
        }
    }

    // ------------------------------------------------------------------
    // Threads.
    // ------------------------------------------------------------------

    /// Spawns a controlled child thread running `f`. Visible operation
    /// on the parent; establishes parent -> child happens-before.
    pub(crate) fn spawn_controlled(
        self: &Arc<Self>,
        parent: usize,
        name: Option<String>,
        f: Box<dyn FnOnce() + Send>,
        loc: Loc,
    ) -> usize {
        let child = {
            let mut st = self.enter(parent, loc);
            let child = st.threads.len();
            let mut clock = st.threads[parent].clock.clone();
            st.threads[parent].clock.tick(parent);
            // The child's own component starts ticked so its events
            // exceed what the parent's clock records — otherwise its
            // writes would be indistinguishable from pre-spawn state
            // and unordered accesses would pass the clock checks.
            clock.tick(child);
            st.strat.on_spawn(child);
            st.threads.push(TState {
                status: Status::Runnable,
                clock,
                timed_out: false,
                wait_seq: 0,
                pending_grant: false,
                name: name.unwrap_or_else(|| format!("thread-{child}")),
                last_loc: Some(loc),
            });
            child
        };
        let h = spawn_wrapper(self, child, f);
        self.handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(h);
        child
    }

    /// Blocks until `target` finishes; joins its final clock.
    pub(crate) fn join_thread(&self, tid: usize, target: usize, loc: Loc) {
        let mut st = self.enter(tid, loc);
        loop {
            if st.threads[target].status == Status::Finished {
                let c = st.threads[target].clock.clone();
                st.threads[tid].clock.join(&c);
                return;
            }
            st.threads[tid].status = Status::BlockedJoin(target);
            if self.reschedule(&mut st).is_err() {
                drop(st);
                abandon();
            }
            self.cv.notify_all();
            st = self.wait_turn(st, tid);
            if st.abandoning {
                drop(st);
                abandon();
            }
        }
    }

    /// Terminal event of every controlled thread (normal return, model
    /// panic, or abandon unwind).
    fn op_finish(&self, tid: usize, how: Finish) {
        let mut st = self.lock();
        if let Finish::Panicked(payload) = how {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            let loc = st.threads[tid]
                .last_loc
                .map_or_else(String::new, |l| format!(" (last op at {l})"));
            self.fail_now(
                &mut st,
                FailureKind::Panic,
                format!("thread {tid} panicked: {msg}{loc}"),
            );
        }
        if !st.abandoning {
            // A normal finish is a visible event: wait for the baton so
            // its position in the schedule is a recorded decision.
            st = self.wait_turn(st, tid);
            if !st.abandoning {
                st.threads[tid].status = Status::Finished;
                for t in &mut st.threads {
                    if t.status == Status::BlockedJoin(tid) {
                        t.status = Status::Runnable;
                    }
                }
                let _ = self.reschedule(&mut st);
                self.cv.notify_all();
                return;
            }
        }
        // Abandon path: just retire the thread and flag completion once
        // everyone is out.
        st.threads[tid].status = Status::Finished;
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.done = true;
        }
        self.cv.notify_all();
    }
}

fn ord_name(o: std::sync::atomic::Ordering) -> &'static str {
    use std::sync::atomic::Ordering as O;
    match o {
        O::Relaxed => "Relaxed",
        O::Acquire => "Acquire",
        O::Release => "Release",
        O::AcqRel => "AcqRel",
        O::SeqCst => "SeqCst",
        _ => "?",
    }
}

/// Launches the OS thread hosting controlled thread `tid`.
fn spawn_wrapper(
    engine: &Arc<Engine>,
    tid: usize,
    f: Box<dyn FnOnce() + Send>,
) -> std::thread::JoinHandle<()> {
    let engine = Arc::clone(engine);
    std::thread::Builder::new()
        .name(format!("rubic-check-{tid}"))
        .spawn(move || {
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    engine: Arc::clone(&engine),
                    tid,
                });
            });
            // The first visible op inside `f` waits for the baton; a
            // thread with no visible ops still serializes via op_finish.
            let how = match catch_unwind(AssertUnwindSafe(f)) {
                Ok(()) => Finish::Normal,
                Err(p) if p.is::<AbandonToken>() => Finish::Abandoned,
                Err(p) => Finish::Panicked(p),
            };
            engine.op_finish(tid, how);
        })
        .expect("spawn controlled thread")
}
