//! Model of the per-node B-tree's split/merge protocol.
//!
//! `rubic-workloads`' `TBTreeMap` gives every node its own `TVar`, so a
//! structural change (leaf split, merge) rewrites *several* versioned
//! slots — the parent's routing state and both children — and its
//! correctness rests on all of them being published by one commit: a
//! reader that descends parent → child with TL2-style validation must
//! never observe routing from before a split combined with a child from
//! after it (or vice versa), because then a key that was merely *moved*
//! would appear deleted.
//!
//! The model is three versioned slots (`version << 1 | locked`, as in
//! `crates/stm/src/vlock.rs`): a parent `P` holding the separator
//! (0 = "single child, everything lives in L") and two children `L`/`R`
//! holding key *bitsets*. A writer splits the initial leaf
//! `L = {1,2,3,4}` into `L = {1,2}, R = {3,4}, P = 3` and then merges
//! it back; a reader repeatedly looks up key 3 by reading `P`, routing
//! by separator, reading the chosen child — each read
//! sample/load/re-sample validated against its snapshot timestamp —
//! and asserts the key is found. Key 3 is present in every committed
//! state, so any miss is an atomicity violation, the exact bug class
//! the one-commit-per-structural-change discipline exists to prevent.
//!
//! The mutation knob [`BTreeModel::non_atomic_split`] performs the
//! split as two separate commits (first shrink `L`, then publish the
//! separator and `R`): between them key 3 is unreachable through the
//! routing even though every individual slot read validates, and the
//! checker must catch the reader's failed lookup within a bounded
//! budget.

use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::thread;

/// Protocol knobs; the default is the production discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct BTreeModel {
    /// Publish the split as two commits instead of one. This is the
    /// canonical structural-atomicity mutation: each commit is itself
    /// perfectly version-disciplined, yet a reader between them misses
    /// a key that was never deleted.
    pub non_atomic_split: bool,
}

/// One node slot: versioned lock word plus published payload.
struct Slot {
    /// `version << 1 | locked`, exactly the `vlock.rs` encoding.
    lock: AtomicU64,
    /// Payload: the separator for `P`, a key bitset for `L`/`R`.
    /// Relaxed accesses are ordered by the lock protocol, as in
    /// `tvar.rs` (acquire sample before, validating re-sample after).
    val: AtomicU64,
}

impl Slot {
    fn new(val: u64) -> Self {
        Slot {
            lock: AtomicU64::new(0),
            val: AtomicU64::new(val),
        }
    }
}

/// Bitset of the keys the initial leaf holds.
const FULL_LEAF: u64 = 0b1_1110; // {1, 2, 3, 4}
/// The key the reader looks up; present in every committed state.
const PROBE_KEY: u64 = 3;

const READER_ATTEMPTS: u32 = 8;

/// Locks `slots` (uncontended — the reader never locks), ticks the
/// clock, runs `publish`, and releases every slot at the new version.
fn commit(clock: &AtomicU64, slots: &[&Slot], publish: impl FnOnce()) {
    for slot in slots {
        let cur = slot.lock.load(Ordering::Acquire);
        assert_eq!(cur & 1, 0, "writer is the only locker");
        slot.lock
            // ordering: success Acquire pairs with the previous
            // commit's release store, as in `VLock::try_lock`.
            .compare_exchange(cur, cur | 1, Ordering::Acquire, Ordering::Relaxed)
            .expect("uncontended lock");
    }
    // ordering: AcqRel tick, as `GlobalClock::tick`.
    let wv = clock.fetch_add(1, Ordering::AcqRel) + 1;
    publish();
    for slot in slots {
        // ordering: Release with the new version, as
        // `VLock::release_commit`.
        slot.lock.store(wv << 1, Ordering::Release);
    }
}

/// One validated read: sample, load, re-sample. `None` means the slot
/// was locked, too new for `rv`, or changed underfoot — the real
/// protocol aborts there (`AbortReason::ReadValidation`), the model
/// retries the whole lookup.
fn tl2_read(slot: &Slot, rv: u64) -> Option<u64> {
    let v1 = slot.lock.load(Ordering::Acquire);
    if v1 & 1 == 1 || (v1 >> 1) > rv {
        return None;
    }
    // ordering: Relaxed payload read ordered by the sample/validate
    // pair (see `Slot::val`).
    let val = slot.val.load(Ordering::Relaxed);
    if slot.lock.load(Ordering::Acquire) != v1 {
        return None;
    }
    Some(val)
}

/// Builds the model closure: one writer splitting then merging a leaf,
/// one reader looking up a key that every committed state contains.
pub fn model(cfg: BTreeModel) -> impl Fn() + Send + Sync + 'static {
    move || {
        let clock = Arc::new(AtomicU64::new(0));
        // P = 0: no separator, all keys in L. The tree starts as the
        // pre-split single leaf.
        let p = Arc::new(Slot::new(0));
        let l = Arc::new(Slot::new(FULL_LEAF));
        let r = Arc::new(Slot::new(0));

        let writer = {
            let (clock, p, l, r) = (
                Arc::clone(&clock),
                Arc::clone(&p),
                Arc::clone(&l),
                Arc::clone(&r),
            );
            thread::spawn(move || {
                if cfg.non_atomic_split {
                    // MUTATION: shrink the leaf in one commit, publish
                    // the sibling + separator in a second. Keys 3 and 4
                    // are unreachable in between.
                    commit(&clock, &[&l], || {
                        l.val.store(0b0_0110, Ordering::Relaxed); // {1, 2}
                    });
                    commit(&clock, &[&p, &r], || {
                        r.val.store(0b1_1000, Ordering::Relaxed); // {3, 4}
                        p.val.store(3, Ordering::Relaxed);
                    });
                } else {
                    // Split: one commit rewrites parent routing and
                    // both children, as `TBTreeMap::split_up` does
                    // inside a single transaction.
                    commit(&clock, &[&p, &l, &r], || {
                        l.val.store(0b0_0110, Ordering::Relaxed); // {1, 2}
                        r.val.store(0b1_1000, Ordering::Relaxed); // {3, 4}
                        p.val.store(3, Ordering::Relaxed);
                    });
                }
                // Merge back: also one commit (`TBTreeMap::rebalance`).
                commit(&clock, &[&p, &l, &r], || {
                    l.val.store(FULL_LEAF, Ordering::Relaxed);
                    r.val.store(0, Ordering::Relaxed);
                    p.val.store(0, Ordering::Relaxed);
                });
            })
        };

        let reader = {
            let (clock, p, l, r) = (
                Arc::clone(&clock),
                Arc::clone(&p),
                Arc::clone(&l),
                Arc::clone(&r),
            );
            thread::spawn(move || {
                'attempt: for _ in 0..READER_ATTEMPTS {
                    // Transaction begin: snapshot the global clock.
                    let rv = clock.load(Ordering::Acquire);
                    let Some(sep) = tl2_read(&p, rv) else {
                        continue 'attempt;
                    };
                    // Route by separator: `seps.partition_point(|s| s
                    // <= key)` sends key >= sep right.
                    let child = if sep != 0 && PROBE_KEY >= sep { &r } else { &l };
                    let Some(mask) = tl2_read(child, rv) else {
                        continue 'attempt;
                    };
                    // Key 3 is in every committed state; a validated
                    // descent that misses it saw a torn structure.
                    assert!(
                        mask & (1 << PROBE_KEY) != 0,
                        "validated descent lost key {PROBE_KEY}: sep={sep} mask={mask:#b} rv={rv}"
                    );
                }
                // Attempts are bounded (aborted lookups are not retried
                // to success) so every schedule is finite.
            })
        };

        writer.join().expect("writer");
        reader.join().expect("reader");
    }
}
