//! Model of the epoch-based reclamation protocol.
//!
//! Mirrors the vendored `crossbeam-epoch` usage in the workspace: a
//! reader *pins* (advertises the global epoch it entered), dereferences
//! the currently published slot, and unpins; an updater publishes a
//! replacement slot, *retires* the old one stamped with the epoch at
//! retirement, and a collector advances the global epoch only when
//! every pinned participant has caught up, then frees the prefix of the
//! retirement list that is at least two epochs old (`retired_at + 2 <=
//! global`). The safety property — a reader never dereferences a freed
//! slot — is checked by poisoning freed slots and asserting on read,
//! and independently by the race detector (a free racing a read has no
//! happens-before edge).
//!
//! The drain threshold is configurable: [`EpochModel::early_free`]
//! drains one epoch early (`retired_at + 1`), the canonical
//! reclamation bug, which the checker must catch.

use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{thread, Mutex, RaceCell};

/// Protocol knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochModel {
    /// Drain retirements after one epoch instead of two. Unsafe: a
    /// still-pinned reader can hold the slot.
    pub early_free: bool,
}

const POISON: u64 = u64::MAX;
const SLOTS: usize = 4;
const READER_PINS: usize = 2;
const UPDATES: usize = 2;

struct Domain {
    /// Global epoch counter.
    global: AtomicU64,
    /// Per-participant advertisement: 0 = unpinned, else `epoch + 1`.
    locals: [AtomicU64; 2],
    /// Currently published slot index.
    published: AtomicUsize,
    /// Slot payloads; freeing writes [`POISON`].
    arena: Vec<RaceCell<u64>>,
    /// Retired `(slot, epoch)` pairs in retirement order.
    retired: Mutex<Vec<(usize, u64)>>,
}

impl Domain {
    fn new() -> Self {
        let arena: Vec<RaceCell<u64>> = (0..SLOTS).map(|i| RaceCell::new(i as u64)).collect();
        Domain {
            global: AtomicU64::new(0),
            locals: [AtomicU64::new(0), AtomicU64::new(0)],
            published: AtomicUsize::new(0),
            arena,
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Pin participant `me`: advertise the epoch, then re-check the
    /// global until the advertisement is current (bounded, as the epoch
    /// can only advance once past a stale advertisement).
    fn pin(&self, me: usize) {
        // ordering: SeqCst on the advertisement store and the global
        // re-read — the pin/advance pair is the Dekker-style core of
        // epoch reclamation (advertise then check vs. check then
        // advance) and needs a total order, exactly as crossbeam's
        // `Local::pin` fence does.
        let mut e = self.global.load(Ordering::SeqCst);
        loop {
            self.locals[me].store(e + 1, Ordering::SeqCst);
            let now = self.global.load(Ordering::SeqCst);
            if now == e {
                return;
            }
            e = now;
        }
    }

    fn unpin(&self, me: usize) {
        // ordering: Release publishes this pin's reads to the
        // collector's advancement check.
        self.locals[me].store(0, Ordering::Release);
    }

    /// Advance the global epoch if every pinned participant has caught
    /// up, then free the drainable prefix of the retirement list.
    fn collect(&self, early_free: bool) {
        // ordering: SeqCst pairs with `pin` (see above).
        let e = self.global.load(Ordering::SeqCst);
        let mut can_advance = true;
        for l in &self.locals {
            // ordering: SeqCst — must observe the newest advertisement
            // or the advance could skip a pinned reader.
            let v = l.load(Ordering::SeqCst);
            if v != 0 && v - 1 != e {
                can_advance = false;
            }
        }
        let g = if can_advance {
            // ordering: AcqRel — advancing is a read-modify-write in
            // the same total order as the pins.
            match self
                .global
                .compare_exchange(e, e + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => e + 1,
                Err(cur) => cur,
            }
        } else {
            e
        };
        let horizon = if early_free { 1 } else { 2 };
        let mut retired = self.retired.lock();
        // Prefix drain: retirement epochs are nondecreasing, so stop at
        // the first entry inside the horizon (same shape as the
        // vendored collector's bag queue).
        let keep = retired
            .iter()
            .position(|&(_, re)| re + horizon > g)
            .unwrap_or(retired.len());
        for &(slot, _) in retired.iter().take(keep) {
            self.arena[slot].set(POISON);
        }
        retired.drain(..keep);
    }
}

/// Builds the model closure: one pinning reader, one updater that
/// publishes, retires, and collects.
pub fn model(cfg: EpochModel) -> impl Fn() + Send + Sync + 'static {
    move || {
        let d = Arc::new(Domain::new());

        let reader = {
            let d = Arc::clone(&d);
            thread::spawn(move || {
                for _ in 0..READER_PINS {
                    d.pin(0);
                    // ordering: Acquire pairs with the updater's
                    // release swap publishing the slot's payload.
                    let idx = d.published.load(Ordering::Acquire);
                    let v = d.arena[idx].get();
                    assert_ne!(v, POISON, "reader dereferenced a freed slot {idx}");
                    d.unpin(0);
                }
            })
        };

        let updater = {
            let d = Arc::clone(&d);
            thread::spawn(move || {
                for n in 0..UPDATES {
                    let fresh = n + 1; // slot 0 starts published
                    d.arena[fresh].set(100 + fresh as u64);
                    // ordering: AcqRel — Release publishes the payload
                    // write above; Acquire orders the retirement of
                    // the displaced slot after the swap.
                    let old = d.published.swap(fresh, Ordering::AcqRel);
                    // ordering: Acquire — the retirement stamp must not
                    // predate the swap it covers.
                    let re = d.global.load(Ordering::Acquire);
                    d.retired.lock().push((old, re));
                    d.collect(cfg.early_free);
                }
                // Two more collection rounds so retirements from the
                // loop can age out within the execution.
                d.collect(cfg.early_free);
                d.collect(cfg.early_free);
            })
        };

        reader.join().expect("reader");
        updater.join().expect("updater");
    }
}
