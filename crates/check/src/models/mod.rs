//! Checkable ports of the workspace's riskiest protocols.
//!
//! These are *models*: faithful re-statements of a protocol against
//! [`crate::sync`] primitives, small enough for the checker to explore.
//! Two of the four protocols named in the verification plan live here
//! because they need knobs (orderings, drain thresholds) the production
//! code rightly does not expose:
//!
//! * [`vlock`] — the TL2-style versioned-lock + global-clock commit
//!   protocol from `rubic-stm` (`vlock.rs` / `clock.rs` / `tvar.rs`),
//!   with every memory ordering configurable so the mutation self-test
//!   can weaken one and assert the checker catches it.
//! * [`epoch`] — the pin / retire / prefix-drain protocol of the
//!   vendored `crossbeam-epoch`-style reclamation, instance-based so
//!   executions are independent, with the drain threshold configurable
//!   to demonstrate premature-free detection.
//! * [`mvcc`] — the multi-version snapshot protocol layered on the
//!   vlock model (`rubic-stm --features mvcc`): version chains, the
//!   snapshot-timestamp registry's SC-fence handshake, and prefix-drain
//!   pruning, with the retention rule configurable so the mutation
//!   self-test can prune early and assert the checker catches it.
//! * [`btree`] — the per-node B-tree's split/merge discipline from
//!   `rubic-workloads` (`btree/mod.rs`): a structural change rewrites
//!   parent routing and both children in *one* commit, and a TL2-style
//!   validated descent must never lose a key that was only moved. The
//!   mutation splits across two commits and the checker must catch the
//!   torn lookup.
//!
//! The other two protocols (`rubic-runtime`'s semaphore admission and
//! sharded-queue accounting) are exercised directly on the production
//! types — they need no knobs — from `crates/check/tests/models.rs`
//! under `--cfg rubic_check`.

pub mod btree;
pub mod epoch;
pub mod mvcc;
pub mod vlock;
