//! Model of the multi-version snapshot protocol (`--features mvcc` in
//! `rubic-stm`): per-variable version chains, the snapshot-timestamp
//! registry with its SC-fence Dekker handshake, and the prefix-drain
//! pruning rule.
//!
//! Mirrors `crates/stm/src/{tvar,snap}.rs`: a writing commit ticks the
//! global clock, publishes new values stamped `wv`, chains the
//! displaced versions (`stamp ..= wv - 1` visibility window), and then
//! prunes chain entries whose successor stamp is at or below the
//! minimum registered snapshot timestamp (clamped to `wv`). A read-only
//! snapshot pins `rv` through the registry — store the slot, SC fence,
//! confirm the clock has not moved — and reads the newest version with
//! `stamp <= rv < succ`, with zero validation.
//!
//! Two properties are checked on every explored schedule:
//!
//! * **Multi-version opacity** — the snapshot's reads across both
//!   variables form a consistent cut (`x == y`), whether each read
//!   resolved through the current value or the chain.
//! * **Safe reclamation** — a pinned snapshot never observes a pruned
//!   version. Pruned entries are poisoned in place (the model's stand-in
//!   for reuse after epoch retirement), so a visibility/retention bug
//!   surfaces as a poisoned read.
//!
//! The retention rule is configurable: [`MvccModel::early_prune`] makes
//! the writer ignore the registry and prune everything below its own
//! write stamp — the canonical retention bug (prune without the Dekker
//! handshake), which the checker must catch as a poisoned snapshot
//! read.

use std::sync::Arc;

use crate::sync::atomic::{fence, AtomicU64, Ordering};
use crate::sync::{thread, Mutex};

/// Protocol knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MvccModel {
    /// Prune with `min_active = wv`, skipping the registry scan. Unsafe:
    /// a registered snapshot below `wv` can still need the entry.
    pub early_prune: bool,
}

/// Poison value stored into pruned chain entries.
const POISON: u64 = u64::MAX;
/// Registry sentinel: no snapshot registered.
const FREE: u64 = u64::MAX;
/// Writer transactions per execution.
const WRITER_TXNS: u64 = 2;
/// Bounded snapshot read attempts (locked variables retry, as the
/// production slow path waits; bounding keeps schedules finite).
const READER_ATTEMPTS: u32 = 4;
/// Bounded registration confirm retries, as `snap::REGISTER_RETRIES`.
const PIN_RETRIES: u32 = 2;

/// One chained displaced version: visible for `stamp <= rv < succ`.
struct OldVersion {
    stamp: u64,
    succ: u64,
    /// `POISON` once pruned — reading it models a use-after-free.
    val: u64,
}

/// One transactional variable: versioned lock word, current value, and
/// the displaced-version chain under its history mutex.
struct Var {
    /// `version << 1 | locked`, the `vlock.rs` encoding.
    lock: AtomicU64,
    /// Current published value. Relaxed accesses are correct for the
    /// same reason as in `tvar.rs`: the lock protocol orders them.
    val: AtomicU64,
    chain: Mutex<Vec<OldVersion>>,
}

impl Var {
    fn new() -> Self {
        Var {
            lock: AtomicU64::new(0),
            val: AtomicU64::new(0),
            chain: Mutex::new(Vec::new()),
        }
    }
}

/// Builds the model closure: one committing writer maintaining the
/// invariant `x == y`, one registered snapshot reader.
pub fn model(cfg: MvccModel) -> impl Fn() + Send + Sync + 'static {
    move || {
        let clock = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(AtomicU64::new(FREE)); // one-slot registry
        let x = Arc::new(Var::new());
        let y = Arc::new(Var::new());

        let writer = {
            let (clock, slot) = (Arc::clone(&clock), Arc::clone(&slot));
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                for n in 1..=WRITER_TXNS {
                    // Encounter-time locking, as `Transaction::write`.
                    for var in [&x, &y] {
                        let cur = var.lock.load(Ordering::Acquire);
                        assert_eq!(cur & 1, 0, "writer is the only locker");
                        var.lock
                            // ordering: success Acquire pairs with the
                            // previous release, as `VLock::try_lock`.
                            .compare_exchange(cur, cur | 1, Ordering::Acquire, Ordering::Relaxed)
                            .expect("uncontended lock");
                    }
                    // ordering: AcqRel tick, as `GlobalClock::tick`;
                    // this is the writer half of the Dekker handshake.
                    let wv = clock.fetch_add(1, Ordering::AcqRel) + 1;
                    // Retention bound, as `snap::min_active`: SC fence
                    // between the tick and the registry scan — or the
                    // mutated rule that skips the scan entirely.
                    let min_active = if cfg.early_prune {
                        wv
                    } else {
                        // ordering: SeqCst fence then SeqCst scan, as
                        // `snap::min_active`.
                        fence(Ordering::SeqCst);
                        slot.load(Ordering::SeqCst).min(wv)
                    };
                    for var in [&x, &y] {
                        // Publish under the history mutex, as
                        // `TVarCore::publish_versioned`: swap the value,
                        // chain the displaced version, prune.
                        let mut chain = var.chain.lock();
                        let stamp = var.lock.load(Ordering::Relaxed) >> 1;
                        // ordering: Relaxed value accesses are ordered
                        // by the lock protocol (see `Var::val`).
                        let old = var.val.swap(n, Ordering::Relaxed);
                        chain.push(OldVersion {
                            stamp,
                            succ: wv,
                            val: old,
                        });
                        // Prefix-drain: poison (— reuse after epoch
                        // retirement —) everything no registered
                        // snapshot can need.
                        for v in chain.iter_mut() {
                            if v.succ <= min_active {
                                v.val = POISON;
                            }
                        }
                        drop(chain);
                        // ordering: Release with the new version, as
                        // `VLock::release_commit`.
                        var.lock.store(wv << 1, Ordering::Release);
                    }
                }
            })
        };

        let reader = {
            let (clock, slot) = (Arc::clone(&clock), Arc::clone(&slot));
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                // Pin a snapshot, as `snap::register`: publish a clock
                // sample, SC fence, confirm the clock has not moved.
                // ordering: Acquire clock read, as `clock::now`.
                let mut rv = clock.load(Ordering::Acquire);
                // ordering: SeqCst slot store + fence + confirm — the
                // reader half of the Dekker handshake.
                slot.store(rv, Ordering::SeqCst);
                let mut pinned = false;
                for _ in 0..=PIN_RETRIES {
                    fence(Ordering::SeqCst);
                    let now = clock.load(Ordering::Acquire);
                    if now == rv {
                        pinned = true;
                        break;
                    }
                    rv = now;
                    slot.store(rv, Ordering::SeqCst);
                }
                if pinned {
                    'attempt: for _ in 0..READER_ATTEMPTS {
                        let mut vals = [0u64; 2];
                        for (i, var) in [&x, &y].into_iter().enumerate() {
                            let w = var.lock.load(Ordering::Acquire);
                            if w & 1 == 0 && (w >> 1) <= rv {
                                // Current version visible: load, then
                                // re-sample for stability, as the fast
                                // path in `TVarCore::read_at_with`.
                                let v = var.val.load(Ordering::Relaxed);
                                if var.lock.load(Ordering::Acquire) != w {
                                    continue 'attempt;
                                }
                                vals[i] = v;
                                continue;
                            }
                            // Locked or too new: resolve through the
                            // chain (visibility: stamp <= rv < succ).
                            let chain = var.chain.lock();
                            match chain.iter().find(|v| v.stamp <= rv && rv < v.succ) {
                                Some(v) => {
                                    // Safe reclamation: a registered
                                    // snapshot must never see a pruned
                                    // version.
                                    assert_ne!(
                                        v.val, POISON,
                                        "snapshot at rv={rv} read a pruned version"
                                    );
                                    vals[i] = v.val;
                                }
                                // Locked mid-publication or pruned away:
                                // the production path waits or re-pins;
                                // the bounded model just retries.
                                None => continue 'attempt,
                            }
                        }
                        // Multi-version opacity: one snapshot, one cut.
                        assert_eq!(
                            vals[0], vals[1],
                            "snapshot at rv={rv} is inconsistent: x={} y={}",
                            vals[0], vals[1]
                        );
                        break 'attempt;
                    }
                }
                // Unregister, as `SlotClaim::drop`.
                slot.store(FREE, Ordering::Release);
            })
        };

        writer.join().expect("writer");
        reader.join().expect("reader");
    }
}
