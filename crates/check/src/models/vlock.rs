//! Model of the TL2-style versioned-lock commit protocol.
//!
//! Mirrors `rubic-stm`: each transactional slot carries a versioned
//! lock word (`version << 1 | locked`, as in `crates/stm/src/vlock.rs`)
//! and a value published under it; commits tick a global clock
//! (`crates/stm/src/clock.rs`) between acquiring write locks and
//! releasing them with the new version. The model checks the snapshot
//! validity half of opacity: a reader that samples, reads, and
//! re-validates both slots must observe `x == y` (the writer maintains
//! that invariant transactionally).
//!
//! All orderings are configurable so the mutation self-test can weaken
//! exactly one (the commit release) and assert the checker reports a
//! too-weak-ordering pairing within a bounded budget.

use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::thread;

/// Ordering knobs for the protocol, defaulting to what the production
/// code uses.
#[derive(Debug, Clone, Copy)]
pub struct VLockModel {
    /// Lock-word sample load (`VLock::sample`): `Acquire` in production.
    pub sample: Ordering,
    /// Commit release store (`VLock::release_commit`): `Release` in
    /// production. Weakening this to `Relaxed` is the canonical
    /// mutation — the reader's acquire sample then pairs with a store
    /// that publishes nothing.
    pub release: Ordering,
    /// Global-clock read at transaction begin: `Acquire` in production.
    pub clock_read: Ordering,
}

impl Default for VLockModel {
    fn default() -> Self {
        VLockModel {
            sample: Ordering::Acquire,
            release: Ordering::Release,
            clock_read: Ordering::Acquire,
        }
    }
}

/// One transactional slot: versioned lock word plus published value.
struct Slot {
    /// `version << 1 | locked`, exactly the `vlock.rs` encoding.
    lock: AtomicU64,
    /// Published value. Relaxed accesses are correct here for the same
    /// reason they are in `tvar.rs`: the versioned-lock protocol
    /// (acquire sample before, validating re-sample after) orders them,
    /// and reads that lose the validation race are discarded.
    val: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            lock: AtomicU64::new(0),
            val: AtomicU64::new(0),
        }
    }
}

const WRITER_TXNS: u64 = 2;
const READER_ATTEMPTS: u32 = 6;

/// Builds the model closure: one committing writer, one validating
/// reader, two slots with the invariant `x == y`.
pub fn model(cfg: VLockModel) -> impl Fn() + Send + Sync + 'static {
    move || {
        let clock = Arc::new(AtomicU64::new(0));
        let x = Arc::new(Slot::new());
        let y = Arc::new(Slot::new());

        let writer = {
            let (clock, x, y) = (Arc::clone(&clock), Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                for n in 1..=WRITER_TXNS {
                    // Acquire both write locks (uncontended here — the
                    // reader never locks — so a bounded CAS suffices).
                    for slot in [&x, &y] {
                        let cur = slot.lock.load(cfg.sample);
                        assert_eq!(cur & 1, 0, "writer is the only locker");
                        slot.lock
                            // ordering: success Acquire pairs with the
                            // previous commit's release store, as in
                            // `VLock::try_lock`; failure value unused.
                            .compare_exchange(cur, cur | 1, Ordering::Acquire, Ordering::Relaxed)
                            .expect("uncontended lock");
                    }
                    // ordering: AcqRel tick, as `GlobalClock::tick`.
                    let wv = clock.fetch_add(1, Ordering::AcqRel) + 1;
                    // ordering: Relaxed value writes are ordered by the
                    // lock protocol (see `Slot::val`).
                    x.val.store(n, Ordering::Relaxed);
                    y.val.store(n, Ordering::Relaxed);
                    // Release with the new version, as
                    // `VLock::release_commit`.
                    x.lock.store(wv << 1, cfg.release);
                    y.lock.store(wv << 1, cfg.release);
                }
            })
        };

        let reader = {
            let (clock, x, y) = (Arc::clone(&clock), Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                'attempt: for _ in 0..READER_ATTEMPTS {
                    // Transaction begin: snapshot the global clock.
                    let rv = clock.load(cfg.clock_read);
                    let mut vals = [0u64; 2];
                    let mut vers = [0u64; 2];
                    for (i, slot) in [&x, &y].into_iter().enumerate() {
                        let v1 = slot.lock.load(cfg.sample);
                        if v1 & 1 == 1 || (v1 >> 1) > rv {
                            continue 'attempt; // locked or too new: retry
                        }
                        // ordering: Relaxed read ordered by the
                        // sample/validate pair (see `Slot::val`).
                        vals[i] = slot.val.load(Ordering::Relaxed);
                        vers[i] = v1;
                    }
                    // Post-read validation, as `Txn::validate`.
                    for (i, slot) in [&x, &y].into_iter().enumerate() {
                        if slot.lock.load(cfg.sample) != vers[i] {
                            continue 'attempt;
                        }
                    }
                    // Snapshot validity (opacity): a validated read set
                    // is a consistent cut.
                    assert_eq!(
                        vals[0], vals[1],
                        "validated snapshot is inconsistent: x={} y={} rv={rv}",
                        vals[0], vals[1]
                    );
                }
                // Attempts are bounded (never retried to success) so
                // every schedule is finite — a reader that loses all
                // its validation races simply observed nothing, which
                // other schedules cover.
            })
        };

        writer.join().expect("writer");
        reader.join().expect("reader");
    }
}
