//! Plain-data cells with race detection.

use std::cell::UnsafeCell;

use crate::engine::with_ctx;

/// A shared plain-data cell whose accesses are checked for data races.
///
/// `RaceCell` is the model-building analogue of unsynchronized memory:
/// inside a checker run every `get`/`set` is a scheduling point and is
/// validated FastTrack-style against the vector clocks — two
/// conflicting accesses with no happens-before edge fail the execution
/// with a race report naming both sites.
///
/// Outside a run, accesses are plain unsynchronized reads/writes. Only
/// use `RaceCell` inside model closures (or single-threaded setup
/// code); that is the discipline that makes the `Sync` impl sound.
#[derive(Debug)]
pub struct RaceCell<T> {
    data: UnsafeCell<T>,
}

// SAFETY: cross-thread access is only valid under the checker, which
// serializes all accesses (one runnable thread at a time) and reports
// conflicting unsynchronized pairs instead of letting them proceed
// unordered. See the type-level docs for the usage contract.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    /// Creates a new cell.
    #[must_use]
    pub const fn new(v: T) -> Self {
        RaceCell {
            data: UnsafeCell::new(v),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Reads the value (checked as a plain read).
    #[track_caller]
    pub fn get(&self) -> T {
        let loc = std::panic::Location::caller();
        if let Some(ctx) = with_ctx(Clone::clone) {
            ctx.engine.op_yield(ctx.tid, loc);
            ctx.engine.cell_read(ctx.tid, self.addr(), loc);
        }
        // SAFETY: under the checker the engine serializes accesses and
        // has validated this read against the last write's clock;
        // outside the checker the contract restricts the cell to
        // single-threaded use.
        unsafe { *self.data.get() }
    }

    /// Writes the value (checked as a plain write).
    #[track_caller]
    pub fn set(&self, v: T) {
        let loc = std::panic::Location::caller();
        if let Some(ctx) = with_ctx(Clone::clone) {
            ctx.engine.op_yield(ctx.tid, loc);
            ctx.engine.cell_write(ctx.tid, self.addr(), loc);
        }
        // SAFETY: as in `get` — serialized by the engine or
        // single-threaded by contract.
        unsafe {
            *self.data.get() = v;
        }
    }
}

impl<T: Copy + Default> Default for RaceCell<T> {
    fn default() -> Self {
        RaceCell::new(T::default())
    }
}
