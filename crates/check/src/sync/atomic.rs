//! Checked atomics.
//!
//! Each type wraps the real `std` atomic: outside a checker run every
//! method is a plain passthrough with the caller's ordering. Inside a
//! run, every access is a scheduling point; the value operation executes
//! with `SeqCst` on the real atomic (the scheduler owns interleaving —
//! value-level weak-memory reordering is *not* modeled), while the
//! happens-before effect applied to the vector clocks follows the
//! ordering the call site **claims**. A too-weak claimed ordering
//! therefore shows up as a missing happens-before edge — caught by the
//! `RaceCell` race detector or the acquire/relaxed pairing check.

pub use std::sync::atomic::Ordering;

use crate::engine::with_ctx;

/// Atomic fence. Outside a checker run this is the real
/// `std::sync::atomic::fence`. Inside a run it is a pure scheduling
/// point: the checker executes every atomic access with `SeqCst` at the
/// value level (the scheduler owns all interleaving), so an SC fence
/// adds no extra value behaviour to model — protocols that rely on one
/// (e.g. the STM's snapshot-registry Dekker handshake) are explored
/// under exactly the SC semantics the fence is claiming.
#[track_caller]
pub fn fence(ord: Ordering) {
    let loc = std::panic::Location::caller();
    match with_ctx(Clone::clone) {
        Some(ctx) => ctx.engine.op_yield(ctx.tid, loc),
        None => std::sync::atomic::fence(ord),
    }
}

macro_rules! checked_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty, [$($int_ops:tt)*]) => {
        $(#[$doc])*
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new checked atomic (usable in statics).
            #[must_use]
            pub const fn new(v: $prim) -> Self {
                $name { inner: std::sync::atomic::$std::new(v) }
            }

            fn addr(&self) -> usize {
                std::ptr::from_ref(self) as usize
            }

            /// Loads the value.
            #[track_caller]
            pub fn load(&self, ord: Ordering) -> $prim {
                let loc = std::panic::Location::caller();
                match with_ctx(Clone::clone) {
                    Some(ctx) => {
                        ctx.engine.op_yield(ctx.tid, loc);
                        let v = self.inner.load(Ordering::SeqCst);
                        ctx.engine.note_load(ctx.tid, self.addr(), ord, loc);
                        v
                    }
                    None => self.inner.load(ord),
                }
            }

            /// Stores a value.
            #[track_caller]
            pub fn store(&self, v: $prim, ord: Ordering) {
                let loc = std::panic::Location::caller();
                match with_ctx(Clone::clone) {
                    Some(ctx) => {
                        ctx.engine.op_yield(ctx.tid, loc);
                        self.inner.store(v, Ordering::SeqCst);
                        ctx.engine.note_store(ctx.tid, self.addr(), ord, loc);
                    }
                    None => self.inner.store(v, ord),
                }
            }

            /// Swaps the value, returning the previous one.
            #[track_caller]
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                let loc = std::panic::Location::caller();
                match with_ctx(Clone::clone) {
                    Some(ctx) => {
                        ctx.engine.op_yield(ctx.tid, loc);
                        let prev = self.inner.swap(v, Ordering::SeqCst);
                        ctx.engine.note_rmw(ctx.tid, self.addr(), ord, loc);
                        prev
                    }
                    None => self.inner.swap(v, ord),
                }
            }

            /// Compare-and-exchange.
            ///
            /// # Errors
            /// Returns the actual value when it did not match `current`.
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let loc = std::panic::Location::caller();
                match with_ctx(Clone::clone) {
                    Some(ctx) => {
                        ctx.engine.op_yield(ctx.tid, loc);
                        let r = self
                            .inner
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst);
                        ctx.engine
                            .note_cas(ctx.tid, self.addr(), success, failure, r.is_ok(), loc);
                        r
                    }
                    None => self.inner.compare_exchange(current, new, success, failure),
                }
            }

            /// Weak compare-and-exchange (modeled without spurious
            /// failures: the controlled scheduler owns all
            /// nondeterminism).
            ///
            /// # Errors
            /// Returns the actual value when it did not match `current`.
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            checked_atomic!(@int $prim, $($int_ops)*);
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Raw read: diagnostics must not perturb the schedule.
                f.debug_tuple(stringify!($name))
                    .field(&self.inner.load(Ordering::Relaxed))
                    .finish()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name::new(Default::default())
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                $name::new(v)
            }
        }
    };

    (@int $prim:ty, int) => {
        /// Adds to the value, returning the previous one.
        #[track_caller]
        pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
            let loc = std::panic::Location::caller();
            match with_ctx(Clone::clone) {
                Some(ctx) => {
                    ctx.engine.op_yield(ctx.tid, loc);
                    let prev = self.inner.fetch_add(v, Ordering::SeqCst);
                    ctx.engine.note_rmw(ctx.tid, self.addr(), ord, loc);
                    prev
                }
                None => self.inner.fetch_add(v, ord),
            }
        }

        /// Subtracts from the value, returning the previous one.
        #[track_caller]
        pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
            let loc = std::panic::Location::caller();
            match with_ctx(Clone::clone) {
                Some(ctx) => {
                    ctx.engine.op_yield(ctx.tid, loc);
                    let prev = self.inner.fetch_sub(v, Ordering::SeqCst);
                    ctx.engine.note_rmw(ctx.tid, self.addr(), ord, loc);
                    prev
                }
                None => self.inner.fetch_sub(v, ord),
            }
        }

        /// Maximum of the value and `v`, returning the previous value.
        #[track_caller]
        pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
            let loc = std::panic::Location::caller();
            match with_ctx(Clone::clone) {
                Some(ctx) => {
                    ctx.engine.op_yield(ctx.tid, loc);
                    let prev = self.inner.fetch_max(v, Ordering::SeqCst);
                    ctx.engine.note_rmw(ctx.tid, self.addr(), ord, loc);
                    prev
                }
                None => self.inner.fetch_max(v, ord),
            }
        }
    };
    (@int $prim:ty,) => {};
}

checked_atomic!(
    /// Checked `AtomicBool`.
    AtomicBool, AtomicBool, bool, []
);
checked_atomic!(
    /// Checked `AtomicU32`.
    AtomicU32, AtomicU32, u32, [int]
);
checked_atomic!(
    /// Checked `AtomicU64`.
    AtomicU64, AtomicU64, u64, [int]
);
checked_atomic!(
    /// Checked `AtomicUsize`.
    AtomicUsize, AtomicUsize, usize, [int]
);
checked_atomic!(
    /// Checked `AtomicI64`.
    AtomicI64, AtomicI64, i64, [int]
);
