//! Checked synchronization primitives.
//!
//! Drop-in counterparts of the primitives the workspace uses (same
//! shapes the `rubic-sync` facade exposes): plain passthrough when no
//! checker is running on the current thread, engine-controlled inside a
//! [`crate::check`] run.

pub mod atomic;
mod cell;
mod mutex;
pub mod thread;

pub use cell::RaceCell;
pub use mutex::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
