//! Checked `Mutex` and `Condvar` with a `parking_lot`-flavoured API
//! (no poisoning; `lock()` returns the guard directly), matching the
//! passthrough types the `rubic-sync` facade exposes in normal builds.
//!
//! Outside a checker run the embedded `std` primitives do the real
//! work. Inside a run the engine arbitrates ownership, blocking, and
//! wakeup order, and transfers vector clocks on release/acquire.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

use crate::engine::{with_ctx, Ctx};

/// A mutual-exclusion lock (checked under the model checker).
pub struct Mutex<T: ?Sized> {
    raw: std::sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is mediated either by `raw` (passthrough
// mode) or by the engine's single-owner arbitration (model mode), so
// the usual Mutex bounds apply. // ordering: n/a
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only hands out data access through a
// guard that witnesses exclusive ownership.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in statics).
    #[must_use]
    pub const fn new(t: T) -> Self {
        Mutex {
            raw: std::sync::Mutex::new(()),
            data: UnsafeCell::new(t),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        std::ptr::from_ref(&self.raw) as usize
    }

    /// Acquires the lock, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let loc = std::panic::Location::caller();
        match with_ctx(Clone::clone) {
            Some(ctx) => {
                ctx.engine.mutex_lock(ctx.tid, self.addr(), loc);
                MutexGuard {
                    m: self,
                    raw: None,
                    ctx: Some(ctx),
                    _not_send: PhantomData,
                }
            }
            None => MutexGuard {
                raw: Some(self.raw.lock().unwrap_or_else(PoisonError::into_inner)),
                m: self,
                ctx: None,
                _not_send: PhantomData,
            },
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let loc = std::panic::Location::caller();
        match with_ctx(Clone::clone) {
            Some(ctx) => ctx
                .engine
                .mutex_try_lock(ctx.tid, self.addr(), loc)
                .then(|| MutexGuard {
                    m: self,
                    raw: None,
                    ctx: Some(ctx),
                    _not_send: PhantomData,
                }),
            None => self.raw.try_lock().ok().map(|g| MutexGuard {
                m: self,
                raw: Some(g),
                ctx: None,
                _not_send: PhantomData,
            }),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Diagnostics must not block or perturb the schedule.
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]. Releasing it unlocks the mutex.
pub struct MutexGuard<'a, T: ?Sized> {
    m: &'a Mutex<T>,
    /// `Some` in passthrough mode; `None` when the engine owns
    /// arbitration.
    raw: Option<std::sync::MutexGuard<'a, ()>>,
    ctx: Option<Ctx>,
    _not_send: PhantomData<*mut ()>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive ownership (std lock or
        // engine arbitration), so dereferencing the cell is unique.
        unsafe { &*self.m.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard is the unique owner.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        if self.raw.is_none() {
            // Model mode. `with_ctx` returns None while unwinding from
            // an abandoned execution, in which case the engine is done
            // with this thread and bookkeeping is moot.
            let loc = std::panic::Location::caller();
            if let Some(ctx) = &self.ctx {
                let _ = with_ctx(|_| ctx.engine.mutex_unlock(ctx.tid, self.m.addr(), loc));
            }
        }
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable (checked under the model checker).
///
/// Timed waits never expire on wall-clock time inside a run: the engine
/// force-times-out the longest waiter only when no other thread can
/// run, so lost-wakeup bugs surface as step-budget/livelock failures
/// while untimed waits surface as deadlocks.
#[derive(Default)]
pub struct Condvar {
    raw: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar {
            raw: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(&self.raw) as usize
    }

    /// Blocks until notified, releasing the guard's mutex while parked.
    #[track_caller]
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        let loc = std::panic::Location::caller();
        match guard.ctx.clone() {
            Some(ctx) => {
                let _ = ctx
                    .engine
                    .condvar_wait(ctx.tid, self.addr(), guard.m.addr(), false, loc);
            }
            None => {
                let raw = guard.raw.take().expect("passthrough guard");
                let raw = self.raw.wait(raw).unwrap_or_else(PoisonError::into_inner);
                guard.raw = Some(raw);
            }
        }
    }

    /// Blocks until notified or `timeout` elapses.
    #[track_caller]
    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let loc = std::panic::Location::caller();
        match guard.ctx.clone() {
            Some(ctx) => WaitTimeoutResult(ctx.engine.condvar_wait(
                ctx.tid,
                self.addr(),
                guard.m.addr(),
                true,
                loc,
            )),
            None => {
                let raw = guard.raw.take().expect("passthrough guard");
                let (raw, r) = self
                    .raw
                    .wait_timeout(raw, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
                guard.raw = Some(raw);
                WaitTimeoutResult(r.timed_out())
            }
        }
    }

    /// Wakes one waiter (FIFO inside a run).
    #[track_caller]
    pub fn notify_one(&self) {
        let loc = std::panic::Location::caller();
        match with_ctx(Clone::clone) {
            Some(ctx) => ctx.engine.condvar_notify(ctx.tid, self.addr(), false, loc),
            None => self.raw.notify_one(),
        }
    }

    /// Wakes every waiter.
    #[track_caller]
    pub fn notify_all(&self) {
        let loc = std::panic::Location::caller();
        match with_ctx(Clone::clone) {
            Some(ctx) => ctx.engine.condvar_notify(ctx.tid, self.addr(), true, loc),
            None => self.raw.notify_all(),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
