//! Checked thread spawning and joining.
//!
//! Mirrors the subset of `std::thread` the workspace uses. Outside a
//! checker run everything delegates to `std::thread`; inside a run,
//! spawned threads register with the engine (spawn and join are
//! scheduling points and happens-before edges) and `sleep` /
//! `yield_now` become pure scheduling points (no wall-clock delay).

use std::sync::{Arc, Mutex as StdMutex, PoisonError};
use std::time::Duration;

use crate::engine::{with_ctx, Engine};

/// Result of joining a thread (same shape as `std::thread::Result`).
pub type Result<T> = std::thread::Result<T>;

// Hardware topology is schedule-irrelevant: pass through in both modes.
pub use std::thread::available_parallelism;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        engine: Arc<Engine>,
        tid: usize,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

/// Owned handle to a spawned thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    /// Returns the panic payload if the thread panicked (under the
    /// checker a model panic abandons the whole execution instead).
    #[track_caller]
    pub fn join(self) -> Result<T> {
        let loc = std::panic::Location::caller();
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { engine, tid, slot } => {
                if let Some(me) = with_ctx(|c| c.tid) {
                    engine.join_thread(me, tid, loc);
                }
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .ok_or_else(|| -> Box<dyn std::any::Any + Send> {
                        Box::new("checked thread produced no value (panicked or abandoned)")
                    })
            }
        }
    }
}

/// Configuration for a new thread (name only; stack size is accepted
/// and ignored under the checker).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder.
    #[must_use]
    pub fn new() -> Self {
        Builder::default()
    }

    /// Names the thread.
    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns the thread.
    ///
    /// # Errors
    /// Propagates OS spawn failure (passthrough mode only).
    #[track_caller]
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let loc = std::panic::Location::caller();
        match with_ctx(Clone::clone) {
            Some(ctx) => {
                let slot = Arc::new(StdMutex::new(None));
                let slot2 = Arc::clone(&slot);
                let tid = ctx.engine.spawn_controlled(
                    ctx.tid,
                    self.name,
                    Box::new(move || {
                        let v = f();
                        *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                    }),
                    loc,
                );
                Ok(JoinHandle(Inner::Model {
                    engine: ctx.engine,
                    tid,
                    slot,
                }))
            }
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
            }
        }
    }
}

/// Spawns a thread (checked inside a run).
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Sleeps (a pure scheduling point inside a run — no wall-clock delay).
#[track_caller]
pub fn sleep(dur: Duration) {
    let loc = std::panic::Location::caller();
    match with_ctx(Clone::clone) {
        Some(ctx) => ctx.engine.op_yield(ctx.tid, loc),
        None => std::thread::sleep(dur),
    }
}

/// Yields (a scheduling point inside a run).
#[track_caller]
pub fn yield_now() {
    let loc = std::panic::Location::caller();
    match with_ctx(Clone::clone) {
        Some(ctx) => ctx.engine.op_yield(ctx.tid, loc),
        None => std::thread::yield_now(),
    }
}
