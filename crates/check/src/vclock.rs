//! Vector clocks for happens-before tracking.
//!
//! Each controlled thread carries a [`VClock`]; synchronization objects
//! (mutexes, release stores) carry snapshot clocks that acquiring
//! threads join. The race detector (FastTrack-style, see
//! `engine::CellMeta`) compares access *epochs* — `(tid, clock-value)`
//! pairs — against the current thread's clock: an access epoch `(t, c)`
//! happens-before the current thread iff `clock[t] >= c`.

/// A vector clock: one logical-time component per controlled thread.
///
/// Components default to zero; the vector grows on demand so a clock
/// created before a thread spawns still compares correctly against it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// The empty clock (all components zero).
    #[must_use]
    pub const fn new() -> Self {
        VClock { ticks: Vec::new() }
    }

    /// Component for thread `tid` (zero if never ticked).
    #[must_use]
    pub fn get(&self, tid: usize) -> u64 {
        self.ticks.get(tid).copied().unwrap_or(0)
    }

    /// Advances this thread's own component by one.
    pub fn tick(&mut self, tid: usize) {
        if self.ticks.len() <= tid {
            self.ticks.resize(tid + 1, 0);
        }
        self.ticks[tid] += 1;
    }

    /// Pointwise maximum: afterwards `self >= other` componentwise.
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (mine, theirs) in self.ticks.iter_mut().zip(other.ticks.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True iff every component of `self` is `<=` the matching component
    /// of `other` — i.e. everything this clock has seen happened-before
    /// `other`'s owner.
    #[must_use]
    pub fn le(&self, other: &VClock) -> bool {
        self.ticks
            .iter()
            .enumerate()
            .all(|(tid, &c)| c <= other.get(tid))
    }

    /// Resets to the empty clock (used when a relaxed store breaks a
    /// location's release sequence).
    pub fn clear(&mut self) {
        self.ticks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(0), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
    }

    #[test]
    fn le_orders_causally() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = a.clone();
        b.tick(1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        // Concurrent clocks: neither <= the other.
        let mut c = VClock::new();
        c.tick(2);
        assert!(!b.le(&c) && !c.le(&b));
    }
}
