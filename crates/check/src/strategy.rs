//! Schedule exploration strategies.
//!
//! Every scheduling decision is "pick one thread out of the currently
//! enabled set". The engine records each decision as an index into that
//! set, so any execution — random or exhaustive — replays exactly from
//! its decision trace (and, for PCT, from its `(seed, iteration)` pair,
//! since the strategy draws all randomness from a seeded generator).

/// SplitMix64: tiny, seedable, statistically solid for schedule
/// perturbation. (Same generator family the vendored `rand` shim uses;
/// reimplemented here so `rubic-check` stays dependency-free.)
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` (n > 0).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Per-execution strategy state. Constructed fresh for every execution
/// by the [`crate::Checker`]; DFS state is threaded back out afterwards.
#[derive(Debug)]
pub(crate) enum Strat {
    /// Probabilistic Concurrency Testing: random static priorities per
    /// thread plus `depth` priority-lowering points at random steps.
    /// Always runs the highest-priority enabled thread.
    Pct {
        rng: SplitMix64,
        priorities: Vec<u64>,
        /// Steps at which the currently-running choice gets demoted.
        change_points: Vec<u64>,
        /// Strictly decreasing: each demotion takes the next value, so a
        /// demoted thread ranks below every previous demotion.
        next_low: u64,
    },
    /// Bounded exhaustive DFS over decision traces. `stack` holds
    /// `(chosen index, enabled count)` per decision; a prefix replays,
    /// the first fresh decision takes index 0, and the checker
    /// increments the deepest incrementable entry between executions.
    Dfs {
        stack: Vec<(u32, u32)>,
        pos: usize,
        /// Set if a replayed prefix saw a different enabled-set size
        /// than recorded — the model is nondeterministic beyond
        /// scheduling, which DFS cannot handle.
        diverged: bool,
    },
    /// Exact replay of a recorded decision trace.
    Replay { trace: Vec<u32>, pos: usize },
}

impl Strat {
    pub(crate) fn pct(seed: u64, iteration: u64, depth: u32, est_len: u64) -> Self {
        // Golden-ratio mix keeps per-iteration streams decorrelated.
        let mut rng = SplitMix64::new(seed ^ iteration.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let change_points = (0..depth.saturating_sub(1))
            .map(|_| 1 + rng.below(est_len.max(1)))
            .collect();
        Strat::Pct {
            rng,
            priorities: Vec::new(),
            change_points,
            next_low: 0,
        }
    }

    /// Called when thread `tid` registers.
    pub(crate) fn on_spawn(&mut self, tid: usize) {
        if let Strat::Pct {
            rng, priorities, ..
        } = self
        {
            if priorities.len() <= tid {
                priorities.resize(tid + 1, 0);
            }
            // High bit set keeps initial priorities above every possible
            // demotion value.
            priorities[tid] = rng.next() | (1 << 63);
        }
    }

    /// Picks the next thread: returns an index into `enabled`.
    pub(crate) fn choose(&mut self, enabled: &[usize], step: u64) -> usize {
        debug_assert!(!enabled.is_empty());
        match self {
            Strat::Pct {
                priorities,
                change_points,
                next_low,
                ..
            } => {
                let best = |prios: &[u64]| {
                    enabled
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &tid)| prios.get(tid).copied().unwrap_or(0))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                };
                if change_points.contains(&step) {
                    // Demote the thread that would have run.
                    let i = best(priorities);
                    let tid = enabled[i];
                    if priorities.len() <= tid {
                        priorities.resize(tid + 1, 0);
                    }
                    *next_low = next_low.wrapping_sub(1);
                    priorities[tid] = *next_low & !(1 << 63);
                }
                best(priorities)
            }
            Strat::Dfs {
                stack,
                pos,
                diverged,
            } => {
                let n = enabled.len() as u32;
                let choice = if *pos < stack.len() {
                    if stack[*pos].1 != n {
                        *diverged = true;
                    }
                    stack[*pos].0.min(n - 1)
                } else {
                    stack.push((0, n));
                    0
                };
                *pos += 1;
                choice as usize
            }
            Strat::Replay { trace, pos } => {
                let choice = trace
                    .get(*pos)
                    .copied()
                    .unwrap_or(0)
                    .min(enabled.len() as u32 - 1);
                *pos += 1;
                choice as usize
            }
        }
    }
}

/// Advances a DFS decision stack to the next unexplored trace.
/// Returns `false` when the space is exhausted.
pub(crate) fn dfs_backtrack(stack: &mut Vec<(u32, u32)>) -> bool {
    while let Some(&(chosen, n)) = stack.last() {
        if chosen + 1 < n {
            stack.last_mut().expect("non-empty").0 += 1;
            return true;
        }
        stack.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn pct_same_seed_same_choices() {
        let mk = || {
            let mut s = Strat::pct(7, 3, 3, 100);
            s.on_spawn(0);
            s.on_spawn(1);
            s.on_spawn(2);
            (0..50)
                .map(|step| s.choose(&[0, 1, 2], step))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn dfs_enumerates_all_traces() {
        // Two decisions of width 2 -> 4 traces.
        let mut stack: Vec<(u32, u32)> = Vec::new();
        let mut seen = Vec::new();
        loop {
            let mut s = Strat::Dfs {
                stack: std::mem::take(&mut stack),
                pos: 0,
                diverged: false,
            };
            let t = (s.choose(&[0, 1], 0), s.choose(&[0, 1], 1));
            let Strat::Dfs { stack: st, .. } = s else {
                unreachable!()
            };
            stack = st;
            seen.push(t);
            if !dfs_backtrack(&mut stack) {
                break;
            }
        }
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }
}
