//! `rubic-check`: a deterministic concurrency model checker.
//!
//! A loom/shuttle-style controlled scheduler built from scratch for
//! this workspace (the repo is offline — nothing is vendored for this):
//! model code written against [`sync`]'s primitives runs on real OS
//! threads, but the engine serializes them — exactly one thread runs
//! between scheduling points — and explores interleavings:
//!
//! * **PCT** ([`Config::pct`]): seeded randomized priority exploration
//!   (Burckhardt et al.'s Probabilistic Concurrency Testing) — strong
//!   bug-finding power per execution on models too big to enumerate.
//! * **Bounded exhaustive DFS** ([`Config::dfs`]): enumerates every
//!   schedule of a small model via decision-trace backtracking.
//! * **Replay** ([`Config::replay_trace`], [`Config::pct_at`]): every
//!   failure is reproducible from its `(seed, iteration)` pair or its
//!   printed decision trace — the same contract as the `chaos`
//!   feature's seed replay in `rubic-stm`.
//!
//! On top of the schedule the engine runs a **vector-clock race
//! detector** (FastTrack-style) over [`sync::RaceCell`] accesses, flags
//! **too-weak orderings** (an `Acquire` load pairing with a `Relaxed`
//! store it has no happens-before edge to), reports **deadlocks** (all
//! threads blocked, no timed waiter left to force-time-out) with each
//! thread's last source location, and bounds **livelocks** with a step
//! budget.
//!
//! What is *not* modeled: weak-memory value reordering (the value layer
//! is sequentially consistent; ordering claims feed the happens-before
//! layer only), spurious condvar wakeups, and `RwLock` (the facade
//! passes it through). Models must be deterministic apart from
//! scheduling — no wall-clock branching or ambient randomness.
//!
//! ```
//! use rubic_check::{check, Config};
//! use rubic_check::sync::atomic::{AtomicU64, Ordering};
//! use rubic_check::sync::{thread, RaceCell};
//! use std::sync::Arc;
//!
//! // Correct message-passing: Release store, Acquire load.
//! let report = check(Config::pct(1, 20), || {
//!     let data = Arc::new(RaceCell::new(0u64));
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
//!     let t = thread::spawn(move || {
//!         d2.set(42);
//!         f2.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.get(), 42);
//!     }
//!     t.join().unwrap();
//! });
//! report.assert_ok();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod engine;
pub mod models;
mod strategy;
pub mod sync;
mod vclock;

pub use vclock::VClock;

use std::sync::Arc;

use strategy::{dfs_backtrack, Strat};

/// What went wrong in a failing execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Conflicting unsynchronized accesses to a [`sync::RaceCell`].
    Race,
    /// An `Acquire` load observed a `Relaxed` store with no
    /// happens-before edge — the store side is too weak.
    WeakOrdering,
    /// All threads blocked with no timed waiter left.
    Deadlock,
    /// The step budget was exhausted (livelock or runaway loop).
    StepBudget,
    /// Model code panicked (failed assertion).
    Panic,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::Race => "data race",
            FailureKind::WeakOrdering => "too-weak ordering",
            FailureKind::Deadlock => "deadlock",
            FailureKind::StepBudget => "step budget exceeded",
            FailureKind::Panic => "model panic",
        };
        f.write_str(s)
    }
}

/// A failing execution, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable description with source locations.
    pub message: String,
    /// Seed the run was started with.
    pub seed: u64,
    /// Iteration (PCT) or execution number (DFS) that failed.
    pub iteration: u64,
    /// The schedule-length estimate in effect for the failing PCT
    /// iteration (it seeds the priority-change-point positions, so
    /// replaying a mid-run iteration needs it — feed all three to
    /// [`Config::pct_at_len`]). Zero for DFS and trace replays.
    pub est_len: u64,
    /// Decision trace: dot-separated indices into each step's enabled
    /// set. Feed to [`Config::replay_trace`] for exact replay.
    pub trace: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}: {}", self.kind, self.message)?;
        writeln!(
            f,
            "  replay: seed={} iteration={} est_len={} (Config::pct_at_len({}, {}, {}))",
            self.seed, self.iteration, self.est_len, self.seed, self.iteration, self.est_len
        )?;
        write!(f, "  trace: {}", self.trace)
    }
}

/// Outcome of a [`check`] run.
#[derive(Debug)]
pub struct Report {
    /// Executions explored.
    pub executions: u64,
    /// The first failure found, if any (exploration stops at the first).
    pub failure: Option<Failure>,
    /// True when a DFS run enumerated the whole schedule space within
    /// its execution budget.
    pub exhausted: bool,
}

impl Report {
    /// Panics (with the full replay recipe) if a failure was found.
    #[track_caller]
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model check failed after {} execution(s)\n{f}",
                self.executions
            );
        }
    }

    /// Returns the failure, panicking if the model unexpectedly passed.
    /// Used by the checker's own mutation self-tests.
    #[track_caller]
    #[must_use]
    pub fn expect_failure(&self) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "expected the checker to find a failure, but {} execution(s) passed",
                self.executions
            )
        })
    }
}

/// Exploration mode.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Randomized priority exploration for `iterations` executions.
    Pct {
        /// Number of executions.
        iterations: u64,
    },
    /// Exhaustive DFS, capped at `max_executions` schedules.
    Dfs {
        /// Upper bound on enumerated schedules.
        max_executions: u64,
    },
    /// Replay one execution from a recorded decision trace.
    Replay {
        /// Decision indices (one per scheduling point).
        trace: Vec<u32>,
    },
}

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Base seed for schedule randomness (PCT).
    pub seed: u64,
    /// Exploration mode.
    pub mode: Mode,
    /// Scheduling points allowed per execution before the run is
    /// declared a livelock.
    pub max_steps: u64,
    /// PCT priority-change points per execution (`d` in the PCT paper).
    pub depth: u32,
    /// Enable the acquire-load-of-relaxed-store pairing detector.
    pub detect_weak_pairs: bool,
    /// First PCT iteration to run (used by [`Config::pct_at`]).
    pub first_iteration: u64,
    /// Schedule-length estimate for the first PCT iteration. The
    /// estimate adapts to the previous execution's step count as a run
    /// progresses, so replaying iteration `i > 0` in isolation must
    /// restore the estimate that was in effect ([`Config::pct_at_len`]).
    pub first_est_len: u64,
}

/// Schedule-length estimate used for a fresh run's first iteration.
const DEFAULT_EST_LEN: u64 = 200;

impl Config {
    /// Seeded PCT exploration over `iterations` executions.
    #[must_use]
    pub fn pct(seed: u64, iterations: u64) -> Self {
        Config {
            seed,
            mode: Mode::Pct { iterations },
            max_steps: 20_000,
            depth: 3,
            detect_weak_pairs: true,
            first_iteration: 0,
            first_est_len: DEFAULT_EST_LEN,
        }
    }

    /// Replays exactly one PCT iteration — the deterministic replay of
    /// a failure reported with `seed` and `iteration`, assuming the
    /// default schedule-length estimate (exact for iteration 0; for a
    /// mid-run iteration use [`Config::pct_at_len`] with the failure's
    /// recorded `est_len`).
    #[must_use]
    pub fn pct_at(seed: u64, iteration: u64) -> Self {
        Config::pct_at_len(seed, iteration, DEFAULT_EST_LEN)
    }

    /// Replays exactly one PCT iteration with an explicit
    /// schedule-length estimate — the full `(seed, iteration, est_len)`
    /// coordinate a [`Failure`] reports, valid for any iteration.
    #[must_use]
    pub fn pct_at_len(seed: u64, iteration: u64, est_len: u64) -> Self {
        let mut c = Config::pct(seed, 1);
        c.first_iteration = iteration;
        c.first_est_len = est_len.max(1);
        c
    }

    /// Bounded exhaustive DFS.
    #[must_use]
    pub fn dfs(max_executions: u64) -> Self {
        Config {
            seed: 0,
            mode: Mode::Dfs { max_executions },
            max_steps: 20_000,
            depth: 3,
            detect_weak_pairs: true,
            first_iteration: 0,
            first_est_len: DEFAULT_EST_LEN,
        }
    }

    /// Replays a single execution from a `Failure::trace` string
    /// (dot-separated decision indices).
    ///
    /// # Panics
    /// Panics if the trace string contains non-numeric components.
    #[must_use]
    pub fn replay_trace(trace: &str) -> Self {
        let parsed = trace
            .split('.')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<u32>().expect("trace component"))
            .collect();
        Config {
            seed: 0,
            mode: Mode::Replay { trace: parsed },
            max_steps: 20_000,
            depth: 3,
            detect_weak_pairs: true,
            first_iteration: 0,
            first_est_len: DEFAULT_EST_LEN,
        }
    }

    /// Overrides the step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Disables the weak-pairing detector (for models that legitimately
    /// read relaxed-published values).
    #[must_use]
    pub fn without_weak_pair_detection(mut self) -> Self {
        self.detect_weak_pairs = false;
        self
    }
}

/// Iteration budget helper for CI: `RUBIC_CHECK_ITERS` overrides
/// `default` (the smoke job sets a small value to stay in seconds).
#[must_use]
pub fn env_iters(default: u64) -> u64 {
    std::env::var("RUBIC_CHECK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn trace_string(schedule: &[u32]) -> String {
    let mut s = String::with_capacity(schedule.len() * 2);
    for (i, c) in schedule.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        s.push_str(&c.to_string());
    }
    s
}

/// Explores interleavings of `model` under `config`.
///
/// The model closure is run once per execution; it must be
/// deterministic apart from scheduling and must use the primitives in
/// [`sync`] (directly, or through the `rubic-sync` facade compiled with
/// `--cfg rubic_check`).
///
/// # Panics
/// Panics if a DFS replay diverges (the model is nondeterministic
/// beyond scheduling).
pub fn check(config: Config, model: impl Fn() + Send + Sync + 'static) -> Report {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut executions = 0u64;
    let mut est_len = config.first_est_len.max(1);
    match config.mode {
        Mode::Pct { iterations } => {
            for i in 0..iterations {
                let iteration = config.first_iteration + i;
                let used_len = est_len;
                let strat = Strat::pct(config.seed, iteration, config.depth, est_len);
                let out = engine::Engine::run(
                    Arc::clone(&model),
                    strat,
                    config.max_steps,
                    config.detect_weak_pairs,
                );
                executions += 1;
                est_len = out.steps.max(1);
                if let Some((kind, message)) = out.failure {
                    return Report {
                        executions,
                        failure: Some(Failure {
                            kind,
                            message,
                            seed: config.seed,
                            iteration,
                            est_len: used_len,
                            trace: trace_string(&out.schedule),
                        }),
                        exhausted: false,
                    };
                }
            }
            Report {
                executions,
                failure: None,
                exhausted: false,
            }
        }
        Mode::Dfs { max_executions } => {
            let mut stack: Vec<(u32, u32)> = Vec::new();
            loop {
                let strat = Strat::Dfs {
                    stack: std::mem::take(&mut stack),
                    pos: 0,
                    diverged: false,
                };
                let out = engine::Engine::run(
                    Arc::clone(&model),
                    strat,
                    config.max_steps,
                    config.detect_weak_pairs,
                );
                executions += 1;
                let Strat::Dfs {
                    stack: st,
                    diverged,
                    ..
                } = out.strat
                else {
                    unreachable!("strategy kind is stable across a run")
                };
                stack = st;
                assert!(
                    !diverged,
                    "DFS replay diverged: the model is nondeterministic beyond scheduling \
                     (wall-clock branch, ambient randomness, or cross-test interference)"
                );
                if let Some((kind, message)) = out.failure {
                    return Report {
                        executions,
                        failure: Some(Failure {
                            kind,
                            message,
                            seed: config.seed,
                            iteration: executions - 1,
                            est_len: 0,
                            trace: trace_string(&out.schedule),
                        }),
                        exhausted: false,
                    };
                }
                if !dfs_backtrack(&mut stack) {
                    return Report {
                        executions,
                        failure: None,
                        exhausted: true,
                    };
                }
                if executions >= max_executions {
                    return Report {
                        executions,
                        failure: None,
                        exhausted: false,
                    };
                }
            }
        }
        Mode::Replay { ref trace } => {
            let strat = Strat::Replay {
                trace: trace.clone(),
                pos: 0,
            };
            let out = engine::Engine::run(
                Arc::clone(&model),
                strat,
                config.max_steps,
                config.detect_weak_pairs,
            );
            Report {
                executions: 1,
                failure: out.failure.map(|(kind, message)| Failure {
                    kind,
                    message,
                    seed: config.seed,
                    iteration: 0,
                    est_len: 0,
                    trace: trace_string(&out.schedule),
                }),
                exhausted: false,
            }
        }
    }
}
