//! Sharded, work-stealing task queues for the malleable pool.
//!
//! [`ChannelWorkload`](crate::queue::ChannelWorkload) reproduces the
//! paper's §3 queue model with one shared channel: correct, but every
//! task pays a lock acquisition on a queue all workers contend on.
//! [`ShardedWorkload`] keeps the same external contract (producers push
//! items, gated workers drain them through a handler, the driver waits
//! for the drain) while distributing the synchronization:
//!
//! * The queue is split into **shards** — one bounded deque per worker
//!   (`tid % shards` owns shard `tid % shards`). Producers distribute
//!   round-robin; workers pop from their own shard in **batches** of up
//!   to [`DEFAULT_BATCH`] items per lock acquisition, amortizing the
//!   queue's atomics over the batch.
//! * A worker whose shard runs dry **steals**: it takes half a victim
//!   shard's items (up to one batch). Victims whose owning worker is
//!   *gated* (`tid >= level`, parked by the controller) are drained
//!   first and completely — a level decrease can therefore never strand
//!   tasks behind a parked worker. The gating state comes from the
//!   pool through [`Workload::attach`].
//! * A parked or exiting worker returns its locally buffered items to
//!   its shard ([`Workload::on_park`]), keeping them steal-visible.
//! * Drain detection is event-driven: the worker (or producer) that
//!   observes "no producers and nothing queued" fires a condvar that
//!   [`ShardedHandle::wait_drained`] parks on.
//!
//! Items accepted by the queue are processed exactly once: every item
//! moves producer → shard → one worker's local buffer → handler, with
//! each hop under a shard lock or within a single worker's state.

use std::collections::VecDeque;
use std::time::Duration;

use crossbeam_channel::SendError;
use crossbeam_utils::CachePadded;
use rubic_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use rubic_sync::{Arc, Condvar, Mutex, OnceLock};

use crate::pool::{PoolView, Workload};
use crate::queue::DrainSignal;

/// Default maximum number of items a worker moves per lock acquisition
/// (own-shard pops, steals and producer batch flushes alike).
pub const DEFAULT_BATCH: usize = 32;

/// One bounded deque plus a lock-free length mirror. The mirror is
/// updated while holding the lock and lets dry workers skip empty
/// shards without touching their lock at all.
struct Shard<T> {
    q: Mutex<VecDeque<T>>,
    len: AtomicUsize,
    not_full: Condvar,
}

impl<T> Default for Shard<T> {
    fn default() -> Self {
        Shard {
            q: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            not_full: Condvar::new(),
        }
    }
}

/// Counters and signals that do not depend on the item type, shared
/// with the (non-generic) [`ShardedHandle`].
#[derive(Debug, Default)]
struct Gauges {
    /// Items accepted but not yet handed to the handler. Incremented
    /// *before* an item becomes visible in a shard, decremented when a
    /// worker takes it out of its local buffer for processing — so
    /// `producers == 0 && queued == 0` proves the queue is drained.
    queued: CachePadded<AtomicU64>,
    processed: CachePadded<AtomicU64>,
    /// Open producer handles ([`ShardSender`] clones).
    producers: AtomicUsize,
    /// Set when the workload is dropped (the pool stopped); unblocks
    /// producers waiting on full shards.
    closed: AtomicBool,
    steals: AtomicU64,
    gated_steals: AtomicU64,
    /// Steals whose thief and victim-shard owner share a socket (all
    /// steals, on a flat placement).
    local_steals: AtomicU64,
    /// Steals that crossed sockets.
    remote_steals: AtomicU64,
    /// Workers currently sleeping in the idle wait.
    sleepers: AtomicUsize,
    idle_m: Mutex<()>,
    idle_cv: Condvar,
    drain: DrainSignal,
}

impl Gauges {
    /// Wakes idle-sleeping workers (called after making work visible).
    fn wake_idle(&self) {
        // ordering: SeqCst pairs with the SeqCst `sleepers` increment in
        // `idle_wait` — producer and sleeper each write their flag then
        // read the other's (Dekker pattern), so both sides need the
        // single total order; Acquire/Release alone would allow a missed
        // wake. Verified by the sharded model under `--cfg rubic_check`.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Acquire/release the idle mutex so a worker between its
            // emptiness re-check and its park cannot miss the notify.
            drop(self.idle_m.lock());
            self.idle_cv.notify_all();
        }
    }

    /// Fires the drain signal if every producer hung up and nothing is
    /// queued or buffered. Returns true once drained.
    fn check_drained(&self) -> bool {
        if self.drain.is_fired() {
            return true;
        }
        // ordering: drain detection is a lock-free conjunction over two
        // counters updated by different threads; SeqCst on both loads and
        // on every producer/queued update puts them in one total order so
        // "producers == 0 && queued == 0" can never observe a stale mix
        // (e.g. a hand-off where queued dips to 0 while a producer is
        // mid-push). Verified by the sharded model under `rubic_check`.
        if self.producers.load(Ordering::SeqCst) == 0 && self.queued.load(Ordering::SeqCst) == 0 {
            self.drain.fire();
            self.idle_cv.notify_all();
            return true;
        }
        false
    }
}

struct Core<T> {
    shards: Vec<CachePadded<Shard<T>>>,
    /// Producer-side capacity bound per shard.
    shard_cap: usize,
    /// Max items moved per lock acquisition.
    batch: usize,
    /// Producer round-robin cursor.
    cursor: CachePadded<AtomicUsize>,
    /// Gating view installed by the pool via [`Workload::attach`].
    view: OnceLock<PoolView>,
    g: Arc<Gauges>,
}

impl<T> Core<T> {
    /// `true` if shard `s`'s owning workers are all gated at `level`
    /// (shard owners are `s, s + shards, ...`, so the smallest — and
    /// therefore last-gated — owner is `s` itself).
    fn shard_gated(&self, s: usize) -> bool {
        match self.view.get() {
            Some(view) => s >= view.level() as usize,
            None => false,
        }
    }

    /// `true` if shard `s` is local to the thief: the thief's socket
    /// matches the shard's primary owner's socket (owner `s`, matching
    /// [`shard_gated`](Core::shard_gated)'s convention). Without an
    /// attached view — or under the default flat placement — everything
    /// is local, reproducing the pre-topology steal order exactly.
    fn shard_local(&self, thief_tid: usize, s: usize) -> bool {
        match self.view.get() {
            Some(view) => view.same_socket(thief_tid, s),
            None => true,
        }
    }

    /// Pushes `item` onto shard `s`, blocking while the shard is at
    /// capacity. Fails once the queue is closed.
    fn push_blocking(&self, s: usize, item: T) -> Result<(), SendError<T>> {
        let shard = &self.shards[s];
        let mut q = shard.q.lock();
        while q.len() >= self.shard_cap {
            if self.g.closed.load(Ordering::Acquire) {
                return Err(SendError(item));
            }
            shard.not_full.wait(&mut q);
        }
        if self.g.closed.load(Ordering::Acquire) {
            return Err(SendError(item));
        }
        q.push_back(item);
        // ordering: the mirror is an advisory skip-hint read outside the
        // lock; the deque itself is lock-protected, so Relaxed suffices.
        shard.len.store(q.len(), Ordering::Relaxed);
        drop(q);
        self.g.wake_idle();
        Ok(())
    }

    /// Returns up to `max` items from shard `s` into `local`; `steal`
    /// marks the transfer as cross-worker for the diagnostics. Returns
    /// the number of items moved.
    fn take_from(&self, s: usize, local: &mut VecDeque<T>, max: usize) -> usize {
        let shard = &self.shards[s];
        let mut q = shard.q.lock();
        let take = q.len().min(max);
        if take > 0 {
            local.extend(q.drain(..take));
            shard.len.store(q.len(), Ordering::Relaxed); // ordering: advisory mirror
                                                         // Free capacity: unblock producers waiting on this shard.
            shard.not_full.notify_all();
        }
        take
    }

    /// Returns locally buffered items to the *front* of shard `own`
    /// (they were taken from the front, so this preserves order for
    /// the next taker). Never blocks: give-back must succeed even when
    /// the shard is nominally full, or a parking worker could deadlock.
    fn give_back(&self, own: usize, local: &mut VecDeque<T>) {
        if local.is_empty() {
            return;
        }
        let shard = &self.shards[own];
        let mut q = shard.q.lock();
        while let Some(item) = local.pop_back() {
            q.push_front(item);
        }
        shard.len.store(q.len(), Ordering::Relaxed); // ordering: advisory mirror
        drop(q);
        self.g.wake_idle();
    }
}

/// Producer handle for a sharded queue. Cloneable; the queue counts as
/// closed-for-input once every clone is dropped.
pub struct ShardSender<T> {
    core: Arc<Core<T>>,
}

impl<T: Send + 'static> ShardSender<T> {
    /// Enqueues one item on the next shard in round-robin order,
    /// blocking while that shard is at capacity.
    ///
    /// # Errors
    /// Returns the item when the pool side of the queue is gone.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        if self.core.g.closed.load(Ordering::Acquire) {
            return Err(SendError(item));
        }
        // ordering: SeqCst — part of the drain-detection total order
        // (see `Gauges::check_drained`).
        self.core.g.queued.fetch_add(1, Ordering::SeqCst);
        // ordering: the cursor only spreads load; any distribution is
        // correct, so Relaxed.
        let s = self.core.cursor.fetch_add(1, Ordering::Relaxed) % self.core.shards.len();
        match self.core.push_blocking(s, item) {
            Ok(()) => Ok(()),
            Err(e) => {
                // ordering: SeqCst — drain-detection total order.
                self.core.g.queued.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// Enqueues a batch, amortizing the queue's synchronization: items
    /// are flushed chunk-wise (one lock acquisition per chunk of up to
    /// the queue's batch size), with consecutive chunks landing on
    /// consecutive shards.
    ///
    /// # Errors
    /// On a closed queue, returns the first unsent item; the remainder
    /// of the batch is dropped.
    pub fn send_batch(&self, items: impl IntoIterator<Item = T>) -> Result<(), SendError<T>> {
        let n_shards = self.core.shards.len();
        let mut chunk: Vec<T> = Vec::with_capacity(self.core.batch);
        for item in items {
            chunk.push(item);
            if chunk.len() == self.core.batch {
                self.flush_chunk(&mut chunk, n_shards)?;
            }
        }
        if !chunk.is_empty() {
            self.flush_chunk(&mut chunk, n_shards)?;
        }
        Ok(())
    }

    fn flush_chunk(&self, chunk: &mut Vec<T>, n_shards: usize) -> Result<(), SendError<T>> {
        if self.core.g.closed.load(Ordering::Acquire) {
            return Err(SendError(chunk.remove(0)));
        }
        // ordering: SeqCst — drain-detection total order; Relaxed cursor
        // as in `send` (distribution only).
        self.core
            .g
            .queued
            .fetch_add(chunk.len() as u64, Ordering::SeqCst);
        let s = self.core.cursor.fetch_add(1, Ordering::Relaxed) % n_shards;
        let shard = &self.core.shards[s];
        let mut q = shard.q.lock();
        // Block on capacity exactly like the single-item path, but only
        // once per chunk: wait until the whole chunk fits.
        while q.len() + chunk.len() > self.core.shard_cap.max(chunk.len()) {
            if self.core.g.closed.load(Ordering::Acquire) {
                drop(q);
                // ordering: SeqCst — drain-detection total order.
                self.core
                    .g
                    .queued
                    .fetch_sub(chunk.len() as u64, Ordering::SeqCst);
                return Err(SendError(chunk.remove(0)));
            }
            shard.not_full.wait(&mut q);
        }
        q.extend(chunk.drain(..));
        shard.len.store(q.len(), Ordering::Relaxed); // ordering: advisory mirror
        drop(q);
        self.core.g.wake_idle();
        Ok(())
    }
}

impl<T> Clone for ShardSender<T> {
    fn clone(&self) -> Self {
        // ordering: SeqCst — the producer count is the other half of the
        // drain-detection conjunction (see `Gauges::check_drained`).
        self.core.g.producers.fetch_add(1, Ordering::SeqCst);
        ShardSender {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T> Drop for ShardSender<T> {
    fn drop(&mut self) {
        // ordering: SeqCst — drain-detection total order; the last
        // producer's decrement must be globally ordered before its own
        // `check_drained` loads.
        if self.core.g.producers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last producer gone: the queue may already be empty, and
            // idle workers must re-examine the drain condition now
            // rather than on their next timeout.
            self.core.g.check_drained();
            self.core.g.wake_idle();
        }
    }
}

/// A cloneable, type-erased handle for observing a sharded queue from
/// the driver (mirrors [`QueueHandle`](crate::queue::QueueHandle)).
#[derive(Debug, Clone)]
pub struct ShardedHandle {
    g: Arc<Gauges>,
}

impl ShardedHandle {
    /// Items handed to the handler so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.g.processed.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Items accepted but not yet processed (approximate backlog).
    #[must_use]
    pub fn queued(&self) -> u64 {
        self.g.queued.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Cross-shard steal operations performed by dry workers.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.g.steals.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Steals whose victim shard belonged to a gated (parked) worker.
    #[must_use]
    pub fn gated_steals(&self) -> u64 {
        self.g.gated_steals.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Steals whose thief and victim shared a socket (every steal, on
    /// the default flat placement).
    #[must_use]
    pub fn local_steals(&self) -> u64 {
        self.g.local_steals.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// Steals that crossed sockets — sustained growth here under a
    /// compact placement means work keeps landing far from where it is
    /// consumed.
    #[must_use]
    pub fn remote_steals(&self) -> u64 {
        self.g.remote_steals.load(Ordering::Relaxed) // ordering: monitoring read
    }

    /// True once every producer hung up and every accepted item was
    /// handed to the handler.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.g.drain.is_fired()
    }

    /// Blocks until the queue drains (event-driven; no poll loop).
    pub fn wait_drained(&self) {
        self.g.drain.wait();
    }

    /// Condvar wakeups observed by `wait_drained` callers (diagnostic;
    /// see [`QueueHandle::drain_wait_wakes`](crate::queue::QueueHandle::drain_wait_wakes)).
    #[must_use]
    pub fn drain_wait_wakes(&self) -> u64 {
        self.g.drain.wakes()
    }
}

/// Per-worker queue state: the local batch buffer plus the steal
/// cursor. Returned items flow back to the owning shard on drop (panic
/// recovery: the pool rebuilds worker state after a caught panic, and
/// the replaced state must not take buffered tasks with it).
pub struct ShardWorker<T> {
    core: Arc<Core<T>>,
    tid: usize,
    rr: usize,
    local: VecDeque<T>,
}

impl<T> Drop for ShardWorker<T> {
    fn drop(&mut self) {
        let own = self.tid % self.core.shards.len();
        self.core.give_back(own, &mut self.local);
    }
}

/// A pool workload that drains a sharded, work-stealing queue through a
/// handler function.
///
/// Construction mirrors [`ChannelWorkload`](crate::queue::ChannelWorkload):
///
/// ```
/// use std::time::Duration;
/// use rubic_controllers::Fixed;
/// use rubic_runtime::{MalleablePool, PoolConfig, ShardedWorkload};
///
/// let (workload, sender) = ShardedWorkload::new(4, 1024, |n: u64| {
///     std::hint::black_box(n * 2);
/// });
/// let handle = workload.handle();
/// let pool = MalleablePool::start(
///     PoolConfig::new(4)
///         .initial_level(4)
///         .monitor_period(Duration::from_millis(2)),
///     workload,
///     Box::new(Fixed::new(4, 4)),
/// );
/// sender.send_batch(0..500u64).unwrap();
/// drop(sender); // close the queue
/// handle.wait_drained();
/// let _report = pool.stop();
/// assert_eq!(handle.processed(), 500);
/// ```
pub struct ShardedWorkload<T, F> {
    core: Arc<Core<T>>,
    handler: F,
}

impl<T, F> ShardedWorkload<T, F>
where
    T: Send + 'static,
    F: Fn(T) + Send + Sync + 'static,
{
    /// Creates a queue of `shards` shards bounded at `capacity` items
    /// total, whose entries are processed by `handler`, with the
    /// default batch size. Pass the pool size as `shards` so every
    /// worker owns one shard.
    #[must_use]
    pub fn new(shards: usize, capacity: usize, handler: F) -> (Self, ShardSender<T>) {
        Self::with_batch(shards, capacity, DEFAULT_BATCH, handler)
    }

    /// [`new`](ShardedWorkload::new) with an explicit per-lock batch
    /// size (clamped to at least 1).
    #[must_use]
    pub fn with_batch(
        shards: usize,
        capacity: usize,
        batch: usize,
        handler: F,
    ) -> (Self, ShardSender<T>) {
        let shards = shards.max(1);
        let g = Arc::new(Gauges {
            producers: AtomicUsize::new(1),
            ..Gauges::default()
        });
        let core = Arc::new(Core {
            shards: (0..shards)
                .map(|_| CachePadded::new(Shard::default()))
                .collect(),
            shard_cap: (capacity / shards).max(1),
            batch: batch.max(1),
            cursor: CachePadded::new(AtomicUsize::new(0)),
            view: OnceLock::new(),
            g,
        });
        (
            ShardedWorkload {
                core: Arc::clone(&core),
                handler,
            },
            ShardSender { core },
        )
    }

    /// A progress handle usable after the workload moves into the pool.
    #[must_use]
    pub fn handle(&self) -> ShardedHandle {
        ShardedHandle {
            g: Arc::clone(&self.core.g),
        }
    }

    /// Refills `state.local` from the worker's own shard, then by
    /// stealing — gated victims first, then active ones round-robin.
    /// Returns true if any items were obtained.
    fn refill(&self, state: &mut ShardWorker<T>) -> bool {
        let core = &self.core;
        let n = core.shards.len();
        let own = state.tid % n;

        // 1. Own shard, full batch (the cheap, contention-free path).
        // ordering: the mirror is advisory (Relaxed) — a stale read only
        // costs a skipped or wasted lock acquisition, never an item.
        if core.shards[own].len.load(Ordering::Relaxed) > 0
            && core.take_from(own, &mut state.local, core.batch) > 0
        {
            return true;
        }

        // 2. Steal. Four passes over the other shards, all starting at
        // the rotating cursor. Gating stays the primary key (a gated
        // victim's owner cannot come back for its items until the level
        // rises, so those shards must drain first — that is a
        // correctness-adjacent priority, not a preference); locality is
        // the secondary key within each gating class: exhaust
        // same-socket victims before paying the interconnect to cross.
        // Gated victims are drained fully (up to a batch); active
        // victims yield half their items, leaving the owner the rest.
        // On a flat placement every shard is local, so the remote
        // passes match nothing and the pre-topology order is preserved.
        state.rr = state.rr.wrapping_add(1);
        for (gated_pass, local_pass) in [(true, true), (true, false), (false, true), (false, false)]
        {
            for off in 0..n {
                let s = (state.rr + off) % n;
                if s == own
                    || core.shard_gated(s) != gated_pass
                    || core.shard_local(state.tid, s) != local_pass
                {
                    continue;
                }
                let visible = core.shards[s].len.load(Ordering::Relaxed); // ordering: advisory mirror
                if visible == 0 {
                    continue;
                }
                let want = if gated_pass {
                    core.batch
                } else {
                    core.batch.min(visible.div_ceil(2))
                };
                let got = core.take_from(s, &mut state.local, want);
                if got > 0 {
                    core.g.steals.fetch_add(1, Ordering::Relaxed); // ordering: stat counter
                    if gated_pass {
                        // ordering: stat counter
                        core.g.gated_steals.fetch_add(1, Ordering::Relaxed);
                    }
                    if local_pass {
                        // ordering: stat counter
                        core.g.local_steals.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // ordering: stat counter
                        core.g.remote_steals.fetch_add(1, Ordering::Relaxed);
                    }
                    crate::trc::task_steal(state.tid, s, got, visible, gated_pass, !local_pass);
                    return true;
                }
            }
        }
        false
    }

    /// Parks briefly waiting for new work (bounded so the pool's gate
    /// and shutdown checks stay responsive).
    fn idle_wait(&self) {
        let g = &self.core.g;
        // ordering: SeqCst pairs with `wake_idle`'s SeqCst load — the
        // sleeper publishes itself, then re-reads shard state; the
        // producer publishes work, then reads `sleepers`. One total
        // order rules out both sides missing each other.
        g.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = g.idle_m.lock();
        // Re-check under the idle lock: a producer that pushed before we
        // registered as a sleeper notifies nobody, so we must not park
        // if work (or the drain) became visible meanwhile.
        let work_visible = self
            .core
            .shards
            .iter()
            .any(|s| s.len.load(Ordering::Relaxed) > 0); // ordering: advisory mirror
        if !work_visible && !g.drain.is_fired() {
            let _ = g.idle_cv.wait_for(&mut guard, Duration::from_millis(1));
        }
        drop(guard);
        g.sleepers.fetch_sub(1, Ordering::SeqCst); // ordering: pairs with the increment above
    }
}

impl<T, F> Drop for ShardedWorkload<T, F> {
    fn drop(&mut self) {
        // The pool dropped the workload: unblock any producer waiting
        // for shard capacity so it can observe the closure.
        self.core.g.closed.store(true, Ordering::Release);
        for shard in &self.core.shards {
            // Acquire the lock so a producer between its closed-check
            // and its wait cannot miss the notification.
            drop(shard.q.lock());
            shard.not_full.notify_all();
        }
        self.core.g.wake_idle();
    }
}

impl<T, F> Workload for ShardedWorkload<T, F>
where
    T: Send + 'static,
    F: Fn(T) + Send + Sync + 'static,
{
    type WorkerState = ShardWorker<T>;

    fn init_worker(&self, tid: usize) -> ShardWorker<T> {
        ShardWorker {
            core: Arc::clone(&self.core),
            tid,
            rr: tid,
            local: VecDeque::with_capacity(self.core.batch),
        }
    }

    fn attach(&self, view: PoolView) {
        let _ = self.core.view.set(view);
    }

    fn steal_locality(&self) -> Option<(u64, u64)> {
        Some((
            self.core.g.local_steals.load(Ordering::Relaxed), // ordering: monitoring read
            self.core.g.remote_steals.load(Ordering::Relaxed), // ordering: monitoring read
        ))
    }

    fn on_park(&self, state: &mut ShardWorker<T>) {
        let own = state.tid % self.core.shards.len();
        self.core.give_back(own, &mut state.local);
    }

    fn run_task(&self, state: &mut ShardWorker<T>) {
        if state.local.is_empty() && !self.refill(state) {
            // Nothing anywhere: either the queue is done (fire/observe
            // the drain and yield until the driver stops the pool) or
            // it is momentarily empty (sleep briefly).
            if self.core.g.check_drained() {
                rubic_sync::thread::yield_now();
            } else {
                self.idle_wait();
            }
            return;
        }
        if let Some(item) = state.local.pop_front() {
            // Account the item as "out of the queue" before running the
            // handler: if the handler panics, the pool catches it and
            // discards it as a failed task — it must not leave `queued`
            // permanently non-zero and wedge `wait_drained`.
            // ordering: SeqCst — drain-detection total order.
            self.core.g.queued.fetch_sub(1, Ordering::SeqCst);
            (self.handler)(item);
            self.core.g.processed.fetch_add(1, Ordering::Relaxed); // ordering: stat counter
            self.core.g.check_drained();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolConfig;
    use rubic_controllers::{Ebs, Fixed};
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn drains_exactly_once_each() {
        let seen: Arc<StdMutex<Vec<u64>>> = Arc::new(StdMutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let (workload, tx) = ShardedWorkload::new(3, 64, move |n: u64| {
            seen2.lock().unwrap().push(n);
        });
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(3)
                .initial_level(3)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(3, 3)),
        );
        for n in 0..1_000u64 {
            tx.send(n).unwrap();
        }
        drop(tx);
        handle.wait_drained();
        let _ = pool.stop();
        let got = seen.lock().unwrap();
        assert_eq!(got.len(), 1_000);
        let unique: HashSet<u64> = got.iter().copied().collect();
        assert_eq!(unique.len(), 1_000, "duplicate or lost items");
        assert_eq!(handle.processed(), 1_000);
    }

    #[test]
    fn batch_send_and_adaptive_controller() {
        let (workload, tx) = ShardedWorkload::new(4, 256, |n: u64| {
            std::hint::black_box((0..n % 64).sum::<u64>());
        });
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(4).monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Ebs::new(4)),
        );
        tx.send_batch(0..2_000u64).unwrap();
        drop(tx);
        handle.wait_drained();
        let _ = pool.stop();
        assert_eq!(handle.processed(), 2_000);
    }

    #[test]
    fn gated_shards_are_drained_by_steals() {
        // 4 shards but only worker 0 active: items land round-robin on
        // every shard, and worker 0 must steal shards 1..4 dry. The
        // gated-victim counter proves the priority path ran.
        let (workload, tx) = ShardedWorkload::new(4, 1024, |_n: u64| {});
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(4)
                .initial_level(1)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(1, 4)),
        );
        tx.send_batch(0..800u64).unwrap();
        drop(tx);
        handle.wait_drained();
        let report = pool.stop();
        assert_eq!(handle.processed(), 800);
        assert!(
            handle.gated_steals() > 0,
            "worker 0 should have stolen from gated shards ({} steals)",
            handle.steals()
        );
        assert_eq!(report.per_worker[2], 0, "gated worker ran tasks");
        assert_eq!(report.per_worker[3], 0, "gated worker ran tasks");
    }

    #[test]
    fn locality_counters_split_steals_by_socket() {
        // Compact placement, 4 workers on 2 sockets: tids {0,1} on
        // socket 0, {2,3} on socket 1. Only worker 0 active, so it must
        // steal shard 1 (intra-socket) and shards 2-3 (cross-socket)
        // dry — both locality counters should move, and the pool report
        // should carry the same totals.
        let (workload, tx) = ShardedWorkload::new(4, 1024, |_n: u64| {});
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(4)
                .initial_level(1)
                .monitor_period(Duration::from_millis(2))
                .placement(crate::WorkerPlacement::compact(4, 2)),
            workload,
            Box::new(Fixed::new(1, 4)),
        );
        tx.send_batch(0..800u64).unwrap();
        drop(tx);
        handle.wait_drained();
        let report = pool.stop();
        assert_eq!(handle.processed(), 800);
        assert!(
            handle.local_steals() > 0,
            "shard 1 shares worker 0's socket and held ~200 items"
        );
        assert!(
            handle.remote_steals() > 0,
            "shards 2-3 sit across the socket boundary and held ~400 items"
        );
        assert_eq!(
            handle.local_steals() + handle.remote_steals(),
            handle.steals(),
            "every steal is either local or remote"
        );
        assert_eq!(report.steals_local, handle.local_steals());
        assert_eq!(report.steals_remote, handle.remote_steals());
    }

    #[test]
    fn flat_placement_counts_every_steal_as_local() {
        // The default (flat) placement is the pre-topology behaviour:
        // one socket, so the remote counter never moves.
        let (workload, tx) = ShardedWorkload::new(4, 1024, |_n: u64| {});
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(4)
                .initial_level(1)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(1, 4)),
        );
        tx.send_batch(0..400u64).unwrap();
        drop(tx);
        handle.wait_drained();
        let report = pool.stop();
        assert!(handle.steals() > 0, "worker 0 had three shards to drain");
        assert_eq!(handle.remote_steals(), 0);
        assert_eq!(handle.local_steals(), handle.steals());
        assert_eq!(report.steals_remote, 0);
    }

    #[test]
    fn multiple_producers() {
        let (workload, tx) = ShardedWorkload::new(2, 32, |_s: String| {});
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(2, 2)),
        );
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(format!("{p}:{i}")).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for h in producers {
            h.join().unwrap();
        }
        handle.wait_drained();
        let _ = pool.stop();
        assert_eq!(handle.processed(), 300);
    }

    #[test]
    fn empty_queue_drains_immediately() {
        let (workload, tx) = ShardedWorkload::new(2, 8, |_n: u32| {});
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(1)
                .initial_level(1)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(1, 1)),
        );
        drop(tx);
        handle.wait_drained();
        let _ = pool.stop();
        assert_eq!(handle.processed(), 0);
    }

    #[test]
    fn send_fails_after_pool_side_drops() {
        let (workload, tx) = ShardedWorkload::new(2, 8, |_n: u32| {});
        drop(workload);
        assert!(tx.send(5).is_err());
        assert!(tx.send_batch(0..10).is_err());
    }

    #[test]
    fn bounded_producer_blocks_until_drained() {
        // Capacity 2 per shard (4 total over 2 shards): a 100-item send
        // must interleave with consumption, not complete eagerly.
        let (workload, tx) = ShardedWorkload::new(2, 4, |_n: u64| {
            std::thread::sleep(Duration::from_micros(200));
        });
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(2, 2)),
        );
        for n in 0..100u64 {
            tx.send(n).unwrap();
        }
        drop(tx);
        handle.wait_drained();
        let _ = pool.stop();
        assert_eq!(handle.processed(), 100);
    }

    #[test]
    fn handler_panic_does_not_wedge_drain() {
        let (workload, tx) = ShardedWorkload::new(2, 64, |n: u64| {
            assert!(n != 13, "injected failure");
        });
        let handle = workload.handle();
        let pool = crate::MalleablePool::start(
            PoolConfig::new(2)
                .initial_level(2)
                .monitor_period(Duration::from_millis(2)),
            workload,
            Box::new(Fixed::new(2, 2)),
        );
        tx.send_batch(0..100u64).unwrap();
        drop(tx);
        // The poisoned item aborts one task but must not stall the
        // drain: queued was decremented before the handler ran.
        handle.wait_drained();
        let report = pool.stop();
        assert_eq!(report.worker_panics, 1);
        assert_eq!(handle.processed(), 99);
    }
}
