//! Worker-to-socket placement for the malleable pool.
//!
//! The pool activates workers in `tid` order (a worker is active while
//! `tid < level`), so the *assignment* of tids to sockets fully
//! determines the activation geometry: a compact assignment fills
//! socket 0 before any thread lands on socket 1 (fill-before-spill as
//! the controller raises the level), a scattered assignment spreads
//! each level increase round-robin across sockets.
//!
//! [`WorkerPlacement`] is that assignment. The pool publishes it
//! through [`PoolView`](crate::PoolView) so queue-backed workloads can
//! steal locality-aware: a dry worker exhausts victims on its own
//! socket before crossing the interconnect (see
//! [`ShardedWorkload`](crate::ShardedWorkload)).

use rubic_controllers::MappingPolicy;

/// A fixed worker-index → socket assignment for a pool of `size`
/// workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPlacement {
    socket_of: Vec<u32>,
    sockets: u32,
}

impl WorkerPlacement {
    /// Every worker on socket 0 — the placement-blind default, and the
    /// exact pre-topology behaviour (all steals count as local).
    #[must_use]
    pub fn flat(size: u32) -> Self {
        WorkerPlacement {
            socket_of: vec![0; size as usize],
            sockets: 1,
        }
    }

    /// Consecutive tids share a socket: `ceil(size / sockets)` workers
    /// per socket, socket 0 first. With tid-order activation this fills
    /// each socket before spilling to the next.
    #[must_use]
    pub fn compact(size: u32, sockets: u32) -> Self {
        let sockets = sockets.clamp(1, size.max(1));
        let per = size.div_ceil(sockets);
        WorkerPlacement {
            socket_of: (0..size).map(|tid| tid / per).collect(),
            sockets,
        }
    }

    /// Round-robin tids across sockets: every level increase lands on
    /// the next socket over.
    #[must_use]
    pub fn scatter(size: u32, sockets: u32) -> Self {
        let sockets = sockets.clamp(1, size.max(1));
        WorkerPlacement {
            socket_of: (0..size).map(|tid| tid % sockets).collect(),
            sockets,
        }
    }

    /// The placement a [`MappingPolicy`] implies for a pool of `size`
    /// workers on `sockets` sockets. `Blind` (and `AdaptiveAbort`,
    /// whose per-round decisions the fixed pool assignment cannot
    /// follow) maps to [`flat`](WorkerPlacement::flat): no affinity
    /// information, every steal counts as local.
    #[must_use]
    pub fn from_mapping(mapping: MappingPolicy, size: u32, sockets: u32) -> Self {
        match mapping {
            MappingPolicy::Compact => WorkerPlacement::compact(size, sockets),
            MappingPolicy::Scatter => WorkerPlacement::scatter(size, sockets),
            MappingPolicy::Blind | MappingPolicy::AdaptiveAbort => WorkerPlacement::flat(size),
        }
    }

    /// The socket worker `tid` is assigned to (out-of-range tids fold
    /// onto socket 0, matching `flat`'s behaviour).
    #[must_use]
    pub fn socket_of(&self, tid: usize) -> u32 {
        self.socket_of.get(tid).copied().unwrap_or(0)
    }

    /// Number of sockets in the assignment.
    #[must_use]
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// Number of workers covered.
    #[must_use]
    pub fn size(&self) -> usize {
        self.socket_of.len()
    }

    /// True when `a` and `b` share a socket.
    #[must_use]
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_socket() {
        let p = WorkerPlacement::flat(8);
        assert_eq!(p.sockets(), 1);
        assert_eq!(p.size(), 8);
        assert!((0..8).all(|t| p.socket_of(t) == 0));
        assert!(p.same_socket(0, 7));
    }

    #[test]
    fn compact_fills_before_spilling() {
        let p = WorkerPlacement::compact(8, 4);
        let sockets: Vec<u32> = (0..8).map(|t| p.socket_of(t)).collect();
        assert_eq!(sockets, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // tid-order activation: levels 1-2 stay on socket 0, level 3
        // spills to socket 1.
        assert!(p.same_socket(0, 1));
        assert!(!p.same_socket(1, 2));
    }

    #[test]
    fn scatter_round_robins() {
        let p = WorkerPlacement::scatter(8, 4);
        let sockets: Vec<u32> = (0..8).map(|t| p.socket_of(t)).collect();
        assert_eq!(sockets, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn uneven_division_covers_every_worker() {
        let p = WorkerPlacement::compact(10, 4);
        assert_eq!(p.size(), 10);
        assert!((0..10).all(|t| p.socket_of(t) < 4));
        // More sockets than workers: clamped.
        let q = WorkerPlacement::compact(2, 8);
        assert_eq!(q.sockets(), 2);
    }

    #[test]
    fn out_of_range_tid_is_socket_zero() {
        let p = WorkerPlacement::scatter(4, 2);
        assert_eq!(p.socket_of(100), 0);
    }

    #[test]
    fn from_mapping_shapes() {
        assert_eq!(
            WorkerPlacement::from_mapping(MappingPolicy::Compact, 8, 4),
            WorkerPlacement::compact(8, 4)
        );
        assert_eq!(
            WorkerPlacement::from_mapping(MappingPolicy::Scatter, 8, 4),
            WorkerPlacement::scatter(8, 4)
        );
        assert_eq!(
            WorkerPlacement::from_mapping(MappingPolicy::Blind, 8, 4),
            WorkerPlacement::flat(8)
        );
    }
}
