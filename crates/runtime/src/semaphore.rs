//! A counting semaphore.
//!
//! The paper's worker-gating protocol (Algorithm 1) parks surplus
//! workers on per-thread semaphores and has the monitor signal the ones
//! it re-enables. A counting semaphore (rather than a bare condvar)
//! makes the signal *sticky*: if the monitor signals before the worker
//! reaches its `wait`, the permit is banked and the worker sails
//! through — no lost-wakeup window. Workers still re-check the gate
//! condition after waking, so a stale banked permit can never let a
//! gated worker run a task.

use std::time::{Duration, Instant};

use rubic_sync::{Condvar, Mutex};

/// A counting semaphore built on `parking_lot`'s mutex + condvar.
#[derive(Debug, Default)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits (the paper
    /// initialises worker semaphores to 0).
    #[must_use]
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Blocks until a permit is available and consumes it.
    pub fn wait(&self) {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            self.available.wait(&mut permits);
        }
        *permits -= 1;
    }

    /// Waits up to `timeout` for a permit. Returns `true` if a permit
    /// was consumed, `false` on timeout.
    ///
    /// The pool's workers use the timed variant as a belt-and-braces
    /// guard: even if a signal were lost, a gated worker re-examines the
    /// gate within one timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            if self.available.wait_for(&mut permits, timeout).timed_out() && *permits == 0 {
                return false;
            }
        }
        *permits -= 1;
        true
    }

    /// Tries to consume a permit without blocking.
    pub fn try_wait(&self) -> bool {
        let mut permits = self.permits.lock();
        if *permits > 0 {
            *permits -= 1;
            true
        } else {
            false
        }
    }

    /// Releases one permit, waking one waiter if any.
    pub fn signal(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }

    /// Releases `n` permits under a **single** lock acquisition and one
    /// `notify_all`, releasing up to `n` parked waiters at once.
    ///
    /// The pool's monitor uses this on a level increase: admitting `n`
    /// workers is one lock + one notify instead of `n` sequential
    /// [`signal`](Semaphore::signal) calls (each of which is a lock
    /// acquisition plus a wakeup syscall). `signal_n(0)` is a no-op.
    pub fn signal_n(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut permits = self.permits.lock();
        *permits += n;
        drop(permits);
        self.available.notify_all();
    }

    /// Parks while `gated()` holds, up to `timeout`. Returns `true` when
    /// the wait ended because `gated()` turned false, `false` on timeout.
    ///
    /// The predicate is evaluated under the semaphore's lock, so a
    /// signaller that updates the gating state *before* calling
    /// [`signal`](Semaphore::signal)/[`signal_n`](Semaphore::signal_n)
    /// can never lose the wakeup: either the waiter re-reads the new
    /// state before parking, or it is parked and the notify reaches it.
    ///
    /// Unlike [`wait_timeout`](Semaphore::wait_timeout) the return
    /// condition is the predicate, not the permit count: a waiter whose
    /// predicate still holds goes back to sleep without consuming a
    /// permit, so a wake meant for one waiter cannot be stolen by
    /// another that is not yet eligible. On a successful return one
    /// banked permit (if any) is consumed, which keeps the counter from
    /// accumulating across repeated admissions.
    pub fn wait_while(&self, timeout: Duration, gated: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        let mut permits = self.permits.lock();
        loop {
            if !gated() {
                *permits = permits.saturating_sub(1);
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let _ = self.available.wait_for(&mut permits, deadline - now);
        }
    }

    /// Current permit count (diagnostic; racy by nature).
    #[must_use]
    pub fn permits(&self) -> usize {
        *self.permits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn signal_then_wait_does_not_block() {
        let s = Semaphore::new(0);
        s.signal();
        s.wait(); // must return immediately
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn initial_permits() {
        let s = Semaphore::new(2);
        assert!(s.try_wait());
        assert!(s.try_wait());
        assert!(!s.try_wait());
    }

    #[test]
    fn wait_blocks_until_signal() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.wait();
            42
        });
        // Give the waiter time to park, then release it.
        std::thread::sleep(Duration::from_millis(20));
        s.signal();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn wait_timeout_expires() {
        let s = Semaphore::new(0);
        let start = std::time::Instant::now();
        assert!(!s.wait_timeout(Duration::from_millis(10)));
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn wait_timeout_consumes_when_available() {
        let s = Semaphore::new(1);
        assert!(s.wait_timeout(Duration::from_millis(1)));
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn permits_accumulate() {
        let s = Semaphore::new(0);
        s.signal();
        s.signal();
        s.signal();
        assert_eq!(s.permits(), 3);
        s.wait();
        assert_eq!(s.permits(), 2);
    }

    #[test]
    fn signal_n_releases_n_parked_waiters() {
        let s = Arc::new(Semaphore::new(0));
        let n = 6;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.wait())
            })
            .collect();
        // Give all waiters time to park, then release the whole batch
        // with a single call.
        std::thread::sleep(Duration::from_millis(20));
        s.signal_n(n);
        for h in handles {
            h.join().unwrap();
        }
        // Every waiter consumed exactly one permit: none left over.
        assert_eq!(s.permits(), 0, "permits over-accumulated");
    }

    #[test]
    fn signal_n_zero_is_noop_and_counts_add_up() {
        let s = Semaphore::new(0);
        s.signal_n(0);
        assert_eq!(s.permits(), 0);
        s.signal_n(3);
        s.signal_n(2);
        assert_eq!(s.permits(), 5);
        for _ in 0..5 {
            s.wait();
        }
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn wait_while_returns_when_predicate_clears() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let s = Arc::new(Semaphore::new(0));
        let gated = Arc::new(AtomicBool::new(true));
        let (s2, g2) = (Arc::clone(&s), Arc::clone(&gated));
        let h = std::thread::spawn(move || {
            s2.wait_while(Duration::from_secs(5), || g2.load(Ordering::Acquire))
        });
        std::thread::sleep(Duration::from_millis(20));
        // Flip the state *before* signalling — the waiter re-checks the
        // predicate under the semaphore lock, so the wake cannot be lost.
        gated.store(false, Ordering::Release);
        s.signal_n(1);
        assert!(h.join().unwrap(), "waiter should observe the cleared gate");
        assert_eq!(s.permits(), 0, "admission must consume the permit");
    }

    #[test]
    fn wait_while_ignores_permits_while_still_gated() {
        // A signal aimed at someone else must not release a waiter whose
        // own predicate still holds.
        let s = Semaphore::new(0);
        s.signal_n(2);
        let start = Instant::now();
        assert!(!s.wait_while(Duration::from_millis(15), || true));
        assert!(start.elapsed() >= Duration::from_millis(14));
        // The still-gated waiter consumed nothing.
        assert_eq!(s.permits(), 2);
    }

    #[test]
    fn wait_while_immediate_when_not_gated() {
        let s = Semaphore::new(0);
        // No permit banked: an ungated waiter sails through regardless.
        assert!(s.wait_while(Duration::from_millis(1), || false));
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn many_waiters_all_released() {
        let s = Arc::new(Semaphore::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.wait())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        for _ in 0..8 {
            s.signal();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.permits(), 0);
    }
}
