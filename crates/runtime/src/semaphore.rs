//! A counting semaphore.
//!
//! The paper's worker-gating protocol (Algorithm 1) parks surplus
//! workers on per-thread semaphores and has the monitor signal the ones
//! it re-enables. A counting semaphore (rather than a bare condvar)
//! makes the signal *sticky*: if the monitor signals before the worker
//! reaches its `wait`, the permit is banked and the worker sails
//! through — no lost-wakeup window. Workers still re-check the gate
//! condition after waking, so a stale banked permit can never let a
//! gated worker run a task.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A counting semaphore built on `parking_lot`'s mutex + condvar.
#[derive(Debug, Default)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits (the paper
    /// initialises worker semaphores to 0).
    #[must_use]
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Blocks until a permit is available and consumes it.
    pub fn wait(&self) {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            self.available.wait(&mut permits);
        }
        *permits -= 1;
    }

    /// Waits up to `timeout` for a permit. Returns `true` if a permit
    /// was consumed, `false` on timeout.
    ///
    /// The pool's workers use the timed variant as a belt-and-braces
    /// guard: even if a signal were lost, a gated worker re-examines the
    /// gate within one timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut permits = self.permits.lock();
        while *permits == 0 {
            if self.available.wait_for(&mut permits, timeout).timed_out() && *permits == 0 {
                return false;
            }
        }
        *permits -= 1;
        true
    }

    /// Tries to consume a permit without blocking.
    pub fn try_wait(&self) -> bool {
        let mut permits = self.permits.lock();
        if *permits > 0 {
            *permits -= 1;
            true
        } else {
            false
        }
    }

    /// Releases one permit, waking one waiter if any.
    pub fn signal(&self) {
        let mut permits = self.permits.lock();
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }

    /// Current permit count (diagnostic; racy by nature).
    #[must_use]
    pub fn permits(&self) -> usize {
        *self.permits.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn signal_then_wait_does_not_block() {
        let s = Semaphore::new(0);
        s.signal();
        s.wait(); // must return immediately
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn initial_permits() {
        let s = Semaphore::new(2);
        assert!(s.try_wait());
        assert!(s.try_wait());
        assert!(!s.try_wait());
    }

    #[test]
    fn wait_blocks_until_signal() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.wait();
            42
        });
        // Give the waiter time to park, then release it.
        std::thread::sleep(Duration::from_millis(20));
        s.signal();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn wait_timeout_expires() {
        let s = Semaphore::new(0);
        let start = std::time::Instant::now();
        assert!(!s.wait_timeout(Duration::from_millis(10)));
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn wait_timeout_consumes_when_available() {
        let s = Semaphore::new(1);
        assert!(s.wait_timeout(Duration::from_millis(1)));
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn permits_accumulate() {
        let s = Semaphore::new(0);
        s.signal();
        s.signal();
        s.signal();
        assert_eq!(s.permits(), 3);
        s.wait();
        assert_eq!(s.permits(), 2);
    }

    #[test]
    fn many_waiters_all_released() {
        let s = Arc::new(Semaphore::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.wait())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        for _ in 0..8 {
            s.signal();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.permits(), 0);
    }
}
